//! The eQASM wire protocol: a hand-rolled, length-prefixed, versioned
//! binary encoding of jobs and batch results, used by
//! [`crate::RemoteBackend`] to ship shot ranges to remote workers.
//!
//! The build environment has no registry access (no serde), so every
//! type that crosses a host boundary is encoded explicitly here:
//! [`crate::Job`] (name, [`Instantiation`], instruction stream,
//! [`SimConfig`], shots, base seed) and [`crate::BatchOut`]
//! (histogram, [`RunStats`], `P(|1⟩)` sums, per-shot durations,
//! failure info).
//!
//! ## Encoding rules
//!
//! * All integers are little-endian fixed width; `f64`s are encoded as
//!   their IEEE-754 bit pattern via [`f64::to_bits`], so NaN payloads,
//!   signed zeros and infinities round-trip **bit-exactly** — the
//!   cross-host determinism guarantee depends on this (a remote worker
//!   must fold the very same `f64`s a local one would).
//! * Strings are a `u32` byte length plus UTF-8 bytes; sequences are a
//!   `u32` count plus elements.
//! * Sum types are a `u8` tag plus the variant payload; unknown tags
//!   are typed decode errors, never panics.
//! * [`OpConfig`] is encoded as a *builder replay*: the opcode width
//!   plus each operation definition (name, duration, pulse/gate,
//!   condition) in opcode order. The decoder replays
//!   [`OpConfig::builder`], which reallocates identical opcodes and
//!   codewords because the builder assigns both sequentially — the
//!   builder is the only way to construct an `OpConfig`, so any config
//!   a job can carry round-trips exactly.
//!
//! ## Framing and versioning
//!
//! Every message on a connection is a *frame*: a `u32` length, a `u8`
//! message tag, then the payload. Connections open with a handshake —
//! the client sends [`Hello`] carrying the **highest** version it
//! speaks, the server answers [`HelloAck`] carrying the **negotiated**
//! version (`min(client, server)`, never below
//! [`MIN_PROTOCOL_VERSION`]) — so version skew is detected, and
//! resolved, before any job bytes are interpreted. A v2 coordinator
//! talking to a v1-era worker (which predates negotiation and rejects
//! any unfamiliar version with a typed error) falls back to offering
//! v1 outright, so old workers keep serving. All decode failures
//! surface as [`WireError`], never as panics: a malformed or truncated
//! frame from the network must not take down a coordinator or a
//! worker.
//!
//! ## v2: the job registry
//!
//! v1 ships the full encoded job inside every `RunRange` request —
//! workers memcmp-cache the bytes so repeat ranges skip the decode,
//! but a million-shot sweep of a large program still pays the job
//! bytes per range. v2 splits the two concerns: [`LoadJob`] ships the
//! bytes once under a caller-chosen `job_id`, [`RunRangeById`] then
//! names the job by id (24-byte payload, independent of program
//! size). The worker keeps a **capacity-bounded LRU** of loaded jobs
//! per connection; a range naming an evicted (or never-loaded) id gets
//! the typed [`ErrorKind::JobNotLoaded`] miss, which the client
//! answers by transparently re-sending [`LoadJob`] and retrying —
//! eviction costs one extra round trip, never a wrong answer. The
//! full state machine is specified in `PROTOCOL.md`.

use std::fmt;
use std::io::{Read, Write};
use std::time::Duration;

use eqasm_core::{
    ArchParams, Bundle, BundleOp, CmpFlag, ExecFlag, Instantiation, Instruction, MicroInstruction,
    OpArity, OpConfig, OpTarget, PulseKind, QOpcode, Qubit, QubitPair, SReg, TReg, Topology,
    TwoQubitGate,
};
use eqasm_microarch::{
    BackendSelect, LatencyModel, MeasurementSource, RunStats, SimConfig, TimingPolicy,
};
use eqasm_quantum::{NoiseModel, ReadoutModel};

use crate::aggregate::{BitString, Histogram, JobResult, LatencyStats};
use crate::backend::BatchOut;
use crate::job::Job;
use crate::serve::{PartialResult, Submission, TenantId, Work};
use crate::workload::{WorkloadKind, WorkloadSpec};

/// The four magic bytes opening every handshake: "eQASM Wire
/// Protocol". A connection that does not start with them is not
/// speaking this protocol at all (as opposed to speaking an
/// incompatible *version* of it).
pub const MAGIC: [u8; 4] = *b"EQWP";

/// The highest protocol version this build speaks. Bumped on any
/// change to the frame layout or the encoding of any type below.
/// Since v2 the handshake *negotiates*: the client offers its highest
/// version, the server acks `min(offer, own)`, and both ends then
/// speak the acked version — so newer builds interoperate with older
/// peers in either direction.
///
/// v3 is a *capability* bump, not a layout change: it licenses the
/// sender to set [`COMPRESSED_JOB_ID_FLAG`] on a `LoadJob`'s id word.
/// The flag is self-describing only to decoders that know it — a
/// v2-era worker would fail every flagged load with a typed error —
/// so compression must be gated on the *negotiated* version, which is
/// exactly what the version bump provides.
///
/// v4 is likewise a capability bump with no frame-layout change: it
/// licenses the 16-byte `SUBSCRIBE` payload ([`encode_subscribe`] with
/// a resume point), letting a client that lost its subscription
/// reconnect and receive only snapshots *past* the prefix it already
/// folded. A v4 server still accepts the bare 8-byte v3 payload, and a
/// v4 client talking to a ≤ v3 server sends the 8-byte form and
/// filters client-side.
///
/// v5 is a capability bump again: it adds [`WorkloadKind`] tag 5
/// (`CliffordChain`, the large-n stabilizer workload). The tag is
/// unknown to ≤ v4 decoders — they would fail the submission with a
/// typed `UnknownTag` error — so clients gate `CliffordChain`
/// submissions on the *negotiated* version and refuse locally with a
/// clear error instead of tripping the peer's decoder.
pub const PROTOCOL_VERSION: u16 = 5;

/// The oldest protocol version this build still speaks. Handshakes
/// that cannot settle on a version in
/// `MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION` fail with a typed
/// [`ErrorKind::Version`] error.
pub const MIN_PROTOCOL_VERSION: u16 = 1;

/// The version a server should ack for a client offering `offer`,
/// capped at `cap` (a server may be configured to speak at most some
/// version, e.g. for staged rollouts). `None` when no common version
/// exists.
pub fn negotiate(offer: u16, cap: u16) -> Option<u16> {
    let agreed = offer.min(cap).min(PROTOCOL_VERSION);
    (agreed >= MIN_PROTOCOL_VERSION).then_some(agreed)
}

/// Upper bound on a single frame's length. A `RunRange` frame carries
/// one job (program + instantiation, typically kilobytes); a `Batch`
/// frame carries one batch's durations (8 bytes/shot). 1 GiB is far
/// beyond any legitimate frame and stops a corrupt length prefix from
/// triggering a giant allocation.
pub const MAX_FRAME_LEN: u32 = 1 << 30;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Why an encode, decode or frame read failed.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (includes clean EOF
    /// mid-frame).
    Io(std::io::Error),
    /// The handshake did not open with [`MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// Both ends speak the protocol, but different versions of it.
    VersionMismatch {
        /// The version this build speaks.
        ours: u16,
        /// The version the peer announced.
        theirs: u16,
    },
    /// A payload ended before the field being decoded.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes remaining.
        have: usize,
    },
    /// A sum-type tag byte has no known variant.
    UnknownTag {
        /// The enum being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// The bytes decoded but describe an invalid value (bad topology,
    /// duplicate operation name, non-UTF-8 string…).
    Invalid(String),
    /// A frame length prefix exceeds the connection's frame cap
    /// (the global [`MAX_FRAME_LEN`], or a tighter per-connection
    /// budget).
    FrameTooLarge {
        /// The announced length.
        len: u32,
        /// The cap in force on this connection.
        cap: u32,
    },
    /// The peer's pre-shared-key authentication failed — wrong key,
    /// stale (replayed) proof, or a required key that was never
    /// configured on this side.
    AuthFailed {
        /// What went wrong, from whichever side detected it.
        message: String,
    },
    /// The remote peer reported a typed protocol error.
    Remote(ErrorMsg),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "transport i/o failed: {e}"),
            WireError::BadMagic { found } => {
                write!(f, "bad protocol magic {found:02x?} (expected {MAGIC:02x?})")
            }
            WireError::VersionMismatch { ours, theirs } => {
                write!(
                    f,
                    "protocol version mismatch: we speak v{ours}, peer speaks v{theirs}"
                )
            }
            WireError::Truncated { what, needed, have } => {
                write!(
                    f,
                    "truncated frame decoding {what}: needed {needed} bytes, have {have}"
                )
            }
            WireError::UnknownTag { what, tag } => {
                write!(f, "unknown {what} tag {tag:#04x}")
            }
            WireError::Invalid(msg) => write!(f, "invalid wire value: {msg}"),
            WireError::FrameTooLarge { len, cap } => {
                write!(f, "frame length {len} exceeds the {cap}-byte cap")
            }
            WireError::AuthFailed { message } => {
                write!(f, "authentication failed: {message}")
            }
            WireError::Remote(e) => write!(f, "peer reported: {e}"),
        }
    }
}

impl std::error::Error for WireError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// True when retrying the same bytes against a *different* backend
/// could succeed — transport failures, not semantic rejections.
impl WireError {
    /// Whether this failure is a transport fault (worth re-dispatching
    /// the range to another backend) rather than a protocol or payload
    /// defect (which would fail identically anywhere).
    pub fn is_transport(&self) -> bool {
        matches!(self, WireError::Io(_))
    }
}

// ---------------------------------------------------------------------
// Primitive writer / reader
// ---------------------------------------------------------------------

/// An append-only byte buffer with fixed-width primitive writers.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_f64(&mut self, v: f64) {
        // Bit pattern, not value: NaNs and signed zeros must survive.
        self.put_u64(v.to_bits());
    }

    pub(crate) fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    pub(crate) fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    pub(crate) fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

/// A cursor over a received payload with typed-error primitive
/// readers.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    pub(crate) fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.buf.len() < n {
            return Err(WireError::Truncated {
                what,
                needed: n,
                have: self.buf.len(),
            });
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    pub(crate) fn get_u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    pub(crate) fn get_u16(&mut self, what: &'static str) -> Result<u16, WireError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn get_u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn get_u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn get_i32(&mut self, what: &'static str) -> Result<i32, WireError> {
        let b = self.take(4, what)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn get_f64(&mut self, what: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    pub(crate) fn get_bool(&mut self, what: &'static str) -> Result<bool, WireError> {
        match self.get_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::UnknownTag { what, tag }),
        }
    }

    pub(crate) fn get_str(&mut self, what: &'static str) -> Result<String, WireError> {
        let len = self.get_u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::Invalid(format!("{what}: non-UTF-8 string: {e}")))
    }

    pub(crate) fn get_bytes(&mut self, what: &'static str) -> Result<Vec<u8>, WireError> {
        let len = self.get_u32(what)? as usize;
        Ok(self.take(len, what)?.to_vec())
    }

    /// A count prefix, sanity-capped against the remaining payload so
    /// a corrupt length cannot pre-allocate unbounded memory.
    pub(crate) fn get_count(
        &mut self,
        what: &'static str,
        min_elem_bytes: usize,
    ) -> Result<usize, WireError> {
        let n = self.get_u32(what)? as usize;
        let floor = n.saturating_mul(min_elem_bytes.max(1));
        if floor > self.remaining() {
            return Err(WireError::Truncated {
                what,
                needed: floor,
                have: self.remaining(),
            });
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// Payload compression (varint + RLE)
// ---------------------------------------------------------------------

/// Bit set in a [`LoadJob`]'s on-the-wire `job_id` when its
/// `job_bytes` field is [`compress`]ed. The id space proper is the low
/// 63 bits — ids are small client-side counters (or queue indices), so
/// the top bit is free to carry the flag without changing the frame
/// layout: a compressed load is still `u64 id + u32 len + bytes`.
/// Only v3 decoders interpret the flag, which is why senders must gate
/// it on the *negotiated* version (see [`PROTOCOL_VERSION`]) — a pre-v3
/// decoder fails a flagged load with a typed length error instead of
/// silently mis-parsing. The journal's `Admit` records reuse the same
/// convention.
pub const COMPRESSED_JOB_ID_FLAG: u64 = 1 << 63;

/// Byte runs at least this long become RLE run blocks; anything
/// shorter stays literal (a run block costs 2+ bytes, so 4 is the
/// break-even point with margin).
const MIN_RLE_RUN: usize = 4;

/// Appends `v` as a LEB128 varint (7 bits per byte, high bit =
/// continuation).
pub(crate) fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push((v as u8) | 0x80);
        v >>= 7;
    }
    out.push(v as u8);
}

/// Reads a LEB128 varint, consuming from the front of `buf`.
pub(crate) fn get_varint(buf: &mut &[u8], what: &'static str) -> Result<u64, WireError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let Some((&b, rest)) = buf.split_first() else {
            return Err(WireError::Truncated {
                what,
                needed: 1,
                have: 0,
            });
        };
        *buf = rest;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(WireError::Invalid(format!(
        "{what}: varint exceeds 64 bits"
    )))
}

/// Compresses `data` with a byte-level varint + run-length scheme:
/// a varint original length, then blocks, each a varint header whose
/// low bit selects the kind — `0`: a literal run of `header >> 1` raw
/// bytes; `1`: `header >> 1` repetitions of the single following byte.
///
/// Fixed-width wire encodings ([`encode_job`] in particular) are full
/// of zero runs — high bytes of small `u64`s, idle latency fields —
/// which is exactly what this catches. The codec is not meant to rival
/// a real compressor; it is dependency-free, allocation-bounded and
/// fast enough to sit on the `LoadJob` path and in the journal's
/// `Admit` records.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    put_varint(&mut out, data.len() as u64);
    let run_len = |from: usize| {
        let b = data[from];
        let mut n = 1;
        while from + n < data.len() && data[from + n] == b {
            n += 1;
        }
        n
    };
    let mut i = 0;
    while i < data.len() {
        let run = run_len(i);
        if run >= MIN_RLE_RUN {
            put_varint(&mut out, ((run as u64) << 1) | 1);
            out.push(data[i]);
            i += run;
        } else {
            // Literal block: absorb short runs until the next long run
            // (or the end), so alternating data costs one header, not
            // one per byte.
            let start = i;
            i += run;
            while i < data.len() {
                let next = run_len(i);
                if next >= MIN_RLE_RUN {
                    break;
                }
                i += next;
            }
            put_varint(&mut out, ((i - start) as u64) << 1);
            out.extend_from_slice(&data[start..i]);
        }
    }
    out
}

/// Decompresses a [`compress`]ed payload. Every malformation —
/// truncated varints or runs, a declared length over the
/// [`MAX_FRAME_LEN`] cap, blocks overshooting or undershooting the
/// declared length, zero-length blocks — is a typed [`WireError`],
/// never a panic or an unbounded allocation.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, WireError> {
    let mut buf = data;
    let total = get_varint(&mut buf, "compressed.len")? as usize;
    if total > MAX_FRAME_LEN as usize {
        return Err(WireError::FrameTooLarge {
            len: total.min(u32::MAX as usize) as u32,
            cap: MAX_FRAME_LEN,
        });
    }
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        let header = get_varint(&mut buf, "compressed.block")?;
        let len = (header >> 1) as usize;
        if len == 0 {
            return Err(WireError::Invalid(
                "compressed payload: zero-length block".to_owned(),
            ));
        }
        if len > total - out.len() {
            return Err(WireError::Invalid(format!(
                "compressed payload: block of {len} bytes overflows the declared {total}-byte \
                 length"
            )));
        }
        if header & 1 == 1 {
            let Some((&b, rest)) = buf.split_first() else {
                return Err(WireError::Truncated {
                    what: "compressed.run_byte",
                    needed: 1,
                    have: 0,
                });
            };
            buf = rest;
            out.resize(out.len() + len, b);
        } else {
            if buf.len() < len {
                return Err(WireError::Truncated {
                    what: "compressed.literal",
                    needed: len,
                    have: buf.len(),
                });
            }
            out.extend_from_slice(&buf[..len]);
            buf = &buf[len..];
        }
    }
    if !buf.is_empty() {
        return Err(WireError::Invalid(format!(
            "{} trailing bytes after compressed payload",
            buf.len()
        )));
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Instructions
// ---------------------------------------------------------------------

mod itag {
    pub const NOP: u8 = 0;
    pub const STOP: u8 = 1;
    pub const CMP: u8 = 2;
    pub const BR: u8 = 3;
    pub const FBR: u8 = 4;
    pub const LDI: u8 = 5;
    pub const LDUI: u8 = 6;
    pub const LD: u8 = 7;
    pub const ST: u8 = 8;
    pub const FMR: u8 = 9;
    pub const AND: u8 = 10;
    pub const OR: u8 = 11;
    pub const XOR: u8 = 12;
    pub const NOT: u8 = 13;
    pub const ADD: u8 = 14;
    pub const SUB: u8 = 15;
    pub const QWAIT: u8 = 16;
    pub const QWAITR: u8 = 17;
    pub const SMIS: u8 = 18;
    pub const SMIT: u8 = 19;
    pub const BUNDLE: u8 = 20;
}

fn put_cmp_flag(w: &mut Writer, flag: CmpFlag) {
    w.put_u8(flag.encode());
}

fn get_cmp_flag(r: &mut Reader<'_>) -> Result<CmpFlag, WireError> {
    let bits = r.get_u8("CmpFlag")?;
    CmpFlag::decode(bits).ok_or(WireError::UnknownTag {
        what: "CmpFlag",
        tag: bits,
    })
}

fn put_instruction(w: &mut Writer, instr: &Instruction) {
    use itag::*;
    match instr {
        Instruction::Nop => w.put_u8(NOP),
        Instruction::Stop => w.put_u8(STOP),
        Instruction::Cmp { rs, rt } => {
            w.put_u8(CMP);
            w.put_u8(rs.raw());
            w.put_u8(rt.raw());
        }
        Instruction::Br { flag, offset } => {
            w.put_u8(BR);
            put_cmp_flag(w, *flag);
            w.put_i32(*offset);
        }
        Instruction::Fbr { flag, rd } => {
            w.put_u8(FBR);
            put_cmp_flag(w, *flag);
            w.put_u8(rd.raw());
        }
        Instruction::Ldi { rd, imm } => {
            w.put_u8(LDI);
            w.put_u8(rd.raw());
            w.put_i32(*imm);
        }
        Instruction::Ldui { rd, imm, rs } => {
            w.put_u8(LDUI);
            w.put_u8(rd.raw());
            w.put_u16(*imm);
            w.put_u8(rs.raw());
        }
        Instruction::Ld { rd, rt, imm } => {
            w.put_u8(LD);
            w.put_u8(rd.raw());
            w.put_u8(rt.raw());
            w.put_i32(*imm);
        }
        Instruction::St { rs, rt, imm } => {
            w.put_u8(ST);
            w.put_u8(rs.raw());
            w.put_u8(rt.raw());
            w.put_i32(*imm);
        }
        Instruction::Fmr { rd, qubit } => {
            w.put_u8(FMR);
            w.put_u8(rd.raw());
            w.put_u8(qubit.raw());
        }
        Instruction::And { rd, rs, rt } => put_alu(w, AND, *rd, *rs, *rt),
        Instruction::Or { rd, rs, rt } => put_alu(w, OR, *rd, *rs, *rt),
        Instruction::Xor { rd, rs, rt } => put_alu(w, XOR, *rd, *rs, *rt),
        Instruction::Not { rd, rt } => {
            w.put_u8(NOT);
            w.put_u8(rd.raw());
            w.put_u8(rt.raw());
        }
        Instruction::Add { rd, rs, rt } => put_alu(w, ADD, *rd, *rs, *rt),
        Instruction::Sub { rd, rs, rt } => put_alu(w, SUB, *rd, *rs, *rt),
        Instruction::QWait { cycles } => {
            w.put_u8(QWAIT);
            w.put_u32(*cycles);
        }
        Instruction::QWaitR { rs } => {
            w.put_u8(QWAITR);
            w.put_u8(rs.raw());
        }
        Instruction::Smis { sd, mask } => {
            w.put_u8(SMIS);
            w.put_u8(sd.raw());
            w.put_u32(*mask);
        }
        Instruction::Smit { td, mask } => {
            w.put_u8(SMIT);
            w.put_u8(td.raw());
            w.put_u32(*mask);
        }
        Instruction::Bundle(b) => {
            w.put_u8(BUNDLE);
            w.put_u8(b.pre_interval);
            w.put_u32(b.ops.len() as u32);
            for op in &b.ops {
                w.put_u16(op.opcode.raw());
                match op.target {
                    OpTarget::None => w.put_u8(0),
                    OpTarget::S(s) => {
                        w.put_u8(1);
                        w.put_u8(s.raw());
                    }
                    OpTarget::T(t) => {
                        w.put_u8(2);
                        w.put_u8(t.raw());
                    }
                }
            }
        }
    }
}

fn put_alu(w: &mut Writer, tag: u8, rd: eqasm_core::Gpr, rs: eqasm_core::Gpr, rt: eqasm_core::Gpr) {
    w.put_u8(tag);
    w.put_u8(rd.raw());
    w.put_u8(rs.raw());
    w.put_u8(rt.raw());
}

fn get_gpr(r: &mut Reader<'_>) -> Result<eqasm_core::Gpr, WireError> {
    Ok(eqasm_core::Gpr::new(r.get_u8("Gpr")?))
}

fn get_instruction(r: &mut Reader<'_>) -> Result<Instruction, WireError> {
    use itag::*;
    let tag = r.get_u8("Instruction")?;
    Ok(match tag {
        NOP => Instruction::Nop,
        STOP => Instruction::Stop,
        CMP => Instruction::Cmp {
            rs: get_gpr(r)?,
            rt: get_gpr(r)?,
        },
        BR => Instruction::Br {
            flag: get_cmp_flag(r)?,
            offset: r.get_i32("Br.offset")?,
        },
        FBR => Instruction::Fbr {
            flag: get_cmp_flag(r)?,
            rd: get_gpr(r)?,
        },
        LDI => Instruction::Ldi {
            rd: get_gpr(r)?,
            imm: r.get_i32("Ldi.imm")?,
        },
        LDUI => Instruction::Ldui {
            rd: get_gpr(r)?,
            imm: r.get_u16("Ldui.imm")?,
            rs: get_gpr(r)?,
        },
        LD => Instruction::Ld {
            rd: get_gpr(r)?,
            rt: get_gpr(r)?,
            imm: r.get_i32("Ld.imm")?,
        },
        ST => Instruction::St {
            rs: get_gpr(r)?,
            rt: get_gpr(r)?,
            imm: r.get_i32("St.imm")?,
        },
        FMR => Instruction::Fmr {
            rd: get_gpr(r)?,
            qubit: Qubit::new(r.get_u8("Fmr.qubit")?),
        },
        AND => Instruction::And {
            rd: get_gpr(r)?,
            rs: get_gpr(r)?,
            rt: get_gpr(r)?,
        },
        OR => Instruction::Or {
            rd: get_gpr(r)?,
            rs: get_gpr(r)?,
            rt: get_gpr(r)?,
        },
        XOR => Instruction::Xor {
            rd: get_gpr(r)?,
            rs: get_gpr(r)?,
            rt: get_gpr(r)?,
        },
        NOT => Instruction::Not {
            rd: get_gpr(r)?,
            rt: get_gpr(r)?,
        },
        ADD => Instruction::Add {
            rd: get_gpr(r)?,
            rs: get_gpr(r)?,
            rt: get_gpr(r)?,
        },
        SUB => Instruction::Sub {
            rd: get_gpr(r)?,
            rs: get_gpr(r)?,
            rt: get_gpr(r)?,
        },
        QWAIT => Instruction::QWait {
            cycles: r.get_u32("QWait.cycles")?,
        },
        QWAITR => Instruction::QWaitR { rs: get_gpr(r)? },
        SMIS => Instruction::Smis {
            sd: SReg::new(r.get_u8("Smis.sd")?),
            mask: r.get_u32("Smis.mask")?,
        },
        SMIT => Instruction::Smit {
            td: TReg::new(r.get_u8("Smit.td")?),
            mask: r.get_u32("Smit.mask")?,
        },
        BUNDLE => {
            let pre_interval = r.get_u8("Bundle.pre_interval")?;
            let n = r.get_count("Bundle.ops", 3)?;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                let opcode = QOpcode::new(r.get_u16("BundleOp.opcode")?);
                let target = match r.get_u8("OpTarget")? {
                    0 => OpTarget::None,
                    1 => OpTarget::S(SReg::new(r.get_u8("OpTarget.S")?)),
                    2 => OpTarget::T(TReg::new(r.get_u8("OpTarget.T")?)),
                    tag => {
                        return Err(WireError::UnknownTag {
                            what: "OpTarget",
                            tag,
                        })
                    }
                };
                ops.push(BundleOp { opcode, target });
            }
            Instruction::Bundle(Bundle { pre_interval, ops })
        }
        tag => {
            return Err(WireError::UnknownTag {
                what: "Instruction",
                tag,
            })
        }
    })
}

// ---------------------------------------------------------------------
// Instantiation: topology + arch params + op config
// ---------------------------------------------------------------------

fn put_topology(w: &mut Writer, t: &Topology) {
    w.put_str(t.name());
    w.put_u32(t.num_qubits() as u32);
    w.put_u32(t.num_pairs() as u32);
    for (_, pair) in t.pairs() {
        w.put_u8(pair.source().raw());
        w.put_u8(pair.target().raw());
    }
    w.put_u32(t.feedlines().len() as u32);
    for line in t.feedlines() {
        w.put_u32(line.len() as u32);
        for q in line {
            w.put_u8(q.raw());
        }
    }
}

fn get_topology(r: &mut Reader<'_>) -> Result<Topology, WireError> {
    let name = r.get_str("Topology.name")?;
    let num_qubits = r.get_u32("Topology.num_qubits")? as usize;
    let n_pairs = r.get_count("Topology.pairs", 2)?;
    let mut pairs = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let s = r.get_u8("QubitPair.source")?;
        let t = r.get_u8("QubitPair.target")?;
        pairs.push(QubitPair::from_raw(s, t));
    }
    let n_lines = r.get_count("Topology.feedlines", 4)?;
    let mut feedlines = Vec::with_capacity(n_lines);
    for _ in 0..n_lines {
        let n = r.get_count("Feedline.qubits", 1)?;
        let mut line = Vec::with_capacity(n);
        for _ in 0..n {
            line.push(Qubit::new(r.get_u8("Feedline.qubit")?));
        }
        feedlines.push(line);
    }
    Topology::new(name, num_qubits, pairs, feedlines)
        .map_err(|e| WireError::Invalid(format!("topology: {e}")))
}

fn put_arch_params(w: &mut Writer, p: &ArchParams) {
    w.put_u32(p.vliw_width as u32);
    w.put_u32(p.pi_bits);
    w.put_u32(p.opcode_bits);
    w.put_u32(p.num_gprs as u32);
    w.put_u32(p.num_sregs as u32);
    w.put_u32(p.num_tregs as u32);
    w.put_u32(p.qwait_bits);
    w.put_u32(p.ldi_bits);
    w.put_u32(p.ldui_bits);
    w.put_u32(p.branch_offset_bits);
    w.put_u32(p.mem_offset_bits);
    w.put_u64(p.data_memory_words as u64);
}

fn get_arch_params(r: &mut Reader<'_>) -> Result<ArchParams, WireError> {
    Ok(ArchParams {
        vliw_width: r.get_u32("ArchParams.vliw_width")? as usize,
        pi_bits: r.get_u32("ArchParams.pi_bits")?,
        opcode_bits: r.get_u32("ArchParams.opcode_bits")?,
        num_gprs: r.get_u32("ArchParams.num_gprs")? as usize,
        num_sregs: r.get_u32("ArchParams.num_sregs")? as usize,
        num_tregs: r.get_u32("ArchParams.num_tregs")? as usize,
        qwait_bits: r.get_u32("ArchParams.qwait_bits")?,
        ldi_bits: r.get_u32("ArchParams.ldi_bits")?,
        ldui_bits: r.get_u32("ArchParams.ldui_bits")?,
        branch_offset_bits: r.get_u32("ArchParams.branch_offset_bits")?,
        mem_offset_bits: r.get_u32("ArchParams.mem_offset_bits")?,
        data_memory_words: r.get_u64("ArchParams.data_memory_words")? as usize,
    })
}

fn put_pulse_kind(w: &mut Writer, p: &PulseKind) -> Result<(), WireError> {
    match p {
        PulseKind::None => w.put_u8(0),
        PulseKind::Rx(theta) => {
            w.put_u8(1);
            w.put_f64(*theta);
        }
        PulseKind::Ry(theta) => {
            w.put_u8(2);
            w.put_f64(*theta);
        }
        PulseKind::Rz(theta) => {
            w.put_u8(3);
            w.put_f64(*theta);
        }
        PulseKind::Hadamard => w.put_u8(4),
        PulseKind::Measure => w.put_u8(5),
        // The src/tgt halves never appear as a *single-qubit* pulse —
        // they exist only inside two-qubit definitions, which encode
        // their gate instead.
        PulseKind::TwoQubitSrc(_) | PulseKind::TwoQubitTgt(_) => {
            return Err(WireError::Invalid(
                "two-qubit pulse half in a single-qubit definition".to_owned(),
            ))
        }
    }
    Ok(())
}

fn get_pulse_kind(r: &mut Reader<'_>) -> Result<PulseKind, WireError> {
    Ok(match r.get_u8("PulseKind")? {
        0 => PulseKind::None,
        1 => PulseKind::Rx(r.get_f64("PulseKind.Rx")?),
        2 => PulseKind::Ry(r.get_f64("PulseKind.Ry")?),
        3 => PulseKind::Rz(r.get_f64("PulseKind.Rz")?),
        4 => PulseKind::Hadamard,
        5 => PulseKind::Measure,
        tag => {
            return Err(WireError::UnknownTag {
                what: "PulseKind",
                tag,
            })
        }
    })
}

fn put_two_qubit_gate(w: &mut Writer, g: &TwoQubitGate) {
    match g {
        TwoQubitGate::Cz => w.put_u8(0),
        TwoQubitGate::Cnot => w.put_u8(1),
        TwoQubitGate::CPhase(theta) => {
            w.put_u8(2);
            w.put_f64(*theta);
        }
        TwoQubitGate::Swap => w.put_u8(3),
    }
}

fn get_two_qubit_gate(r: &mut Reader<'_>) -> Result<TwoQubitGate, WireError> {
    Ok(match r.get_u8("TwoQubitGate")? {
        0 => TwoQubitGate::Cz,
        1 => TwoQubitGate::Cnot,
        2 => TwoQubitGate::CPhase(r.get_f64("TwoQubitGate.CPhase")?),
        3 => TwoQubitGate::Swap,
        tag => {
            return Err(WireError::UnknownTag {
                what: "TwoQubitGate",
                tag,
            })
        }
    })
}

/// Encodes an [`OpConfig`] as a builder replay. Fails (rather than
/// silently mis-encoding) if a definition's pulse library entry is
/// missing — impossible for builder-built configs, which are the only
/// kind that exists.
fn put_op_config(w: &mut Writer, cfg: &OpConfig) -> Result<(), WireError> {
    w.put_u32(cfg.opcode_bits());
    w.put_u32(cfg.len() as u32);
    for def in cfg.iter() {
        w.put_str(def.name());
        w.put_u32(def.duration_cycles());
        match (def.arity(), def.micro()) {
            (OpArity::SingleQubit, MicroInstruction::Single(op)) => {
                w.put_u8(0);
                let pulse = cfg.pulse(op.codeword()).ok_or_else(|| {
                    WireError::Invalid(format!(
                        "operation `{}` has no pulse for {}",
                        def.name(),
                        op.codeword()
                    ))
                })?;
                put_pulse_kind(w, pulse)?;
                w.put_u8(op.condition().encode());
            }
            (OpArity::TwoQubit, MicroInstruction::Pair { src, .. }) => {
                w.put_u8(1);
                let gate = match cfg.pulse(src.codeword()) {
                    Some(PulseKind::TwoQubitSrc(gate)) => *gate,
                    other => {
                        return Err(WireError::Invalid(format!(
                            "operation `{}` has no source-pulse gate (found {other:?})",
                            def.name()
                        )))
                    }
                };
                put_two_qubit_gate(w, &gate);
            }
            (arity, micro) => {
                return Err(WireError::Invalid(format!(
                    "operation `{}` mixes arity {arity:?} with micro {micro:?}",
                    def.name()
                )))
            }
        }
    }
    Ok(())
}

fn get_op_config(r: &mut Reader<'_>) -> Result<OpConfig, WireError> {
    let opcode_bits = r.get_u32("OpConfig.opcode_bits")?;
    let n = r.get_count("OpConfig.defs", 6)?;
    let mut builder = OpConfig::builder(opcode_bits);
    for _ in 0..n {
        let name = r.get_str("OpDef.name")?;
        let duration = r.get_u32("OpDef.duration_cycles")?;
        match r.get_u8("OpDef.kind")? {
            0 => {
                let pulse = get_pulse_kind(r)?;
                let cond_bits = r.get_u8("OpDef.condition")?;
                let condition = ExecFlag::decode(cond_bits).ok_or(WireError::UnknownTag {
                    what: "ExecFlag",
                    tag: cond_bits,
                })?;
                builder
                    .single_conditional(&name, duration, pulse, condition)
                    .map_err(|e| WireError::Invalid(format!("operation `{name}`: {e}")))?;
            }
            1 => {
                let gate = get_two_qubit_gate(r)?;
                builder
                    .two(&name, duration, gate)
                    .map_err(|e| WireError::Invalid(format!("operation `{name}`: {e}")))?;
            }
            tag => {
                return Err(WireError::UnknownTag {
                    what: "OpDef.kind",
                    tag,
                })
            }
        }
    }
    Ok(builder.build())
}

fn put_instantiation(w: &mut Writer, inst: &Instantiation) -> Result<(), WireError> {
    put_topology(w, inst.topology());
    put_arch_params(w, inst.params());
    put_op_config(w, inst.ops())
}

fn get_instantiation(r: &mut Reader<'_>) -> Result<Instantiation, WireError> {
    let topology = get_topology(r)?;
    let params = get_arch_params(r)?;
    let ops = get_op_config(r)?;
    Ok(Instantiation::new(topology, params, ops))
}

// ---------------------------------------------------------------------
// SimConfig
// ---------------------------------------------------------------------

fn put_sim_config(w: &mut Writer, c: &SimConfig) {
    w.put_f64(c.cycle_time_ns);
    w.put_u64(c.classical_per_quantum);
    w.put_u64(c.latency.result_sync_cc);
    w.put_u64(c.latency.quantum_decode_cc);
    w.put_u64(c.latency.adi_output_cc);
    w.put_u64(c.latency.stall_release_cc);
    w.put_f64(c.noise.t1_ns);
    w.put_f64(c.noise.t2_ns);
    w.put_f64(c.noise.depol_1q);
    w.put_f64(c.noise.depol_2q);
    w.put_f64(c.readout.p_read1_given0);
    w.put_f64(c.readout.p_read0_given1);
    match &c.measurement_source {
        MeasurementSource::Quantum => w.put_u8(0),
        MeasurementSource::MockAlternating { start } => {
            w.put_u8(1);
            w.put_bool(*start);
        }
        MeasurementSource::MockFixed(values) => {
            w.put_u8(2);
            w.put_u32(values.len() as u32);
            for &v in values {
                w.put_bool(v);
            }
        }
    }
    w.put_u8(match c.timing_policy {
        TimingPolicy::SlipAndCount => 0,
        TimingPolicy::Fault => 1,
    });
    w.put_u64(c.seed);
    w.put_u64(c.max_classical_cycles);
    w.put_u8(match c.backend {
        BackendSelect::Auto => 0,
        BackendSelect::Dense => 1,
        BackendSelect::Stabilizer => 2,
        BackendSelect::Density => 3,
        BackendSelect::Pure => 4,
    });
    w.put_bool(c.record_trace);
}

fn get_sim_config(r: &mut Reader<'_>) -> Result<SimConfig, WireError> {
    let cycle_time_ns = r.get_f64("SimConfig.cycle_time_ns")?;
    let classical_per_quantum = r.get_u64("SimConfig.classical_per_quantum")?;
    let latency = LatencyModel {
        result_sync_cc: r.get_u64("LatencyModel.result_sync_cc")?,
        quantum_decode_cc: r.get_u64("LatencyModel.quantum_decode_cc")?,
        adi_output_cc: r.get_u64("LatencyModel.adi_output_cc")?,
        stall_release_cc: r.get_u64("LatencyModel.stall_release_cc")?,
    };
    let noise = NoiseModel {
        t1_ns: r.get_f64("NoiseModel.t1_ns")?,
        t2_ns: r.get_f64("NoiseModel.t2_ns")?,
        depol_1q: r.get_f64("NoiseModel.depol_1q")?,
        depol_2q: r.get_f64("NoiseModel.depol_2q")?,
    };
    let readout = ReadoutModel {
        p_read1_given0: r.get_f64("ReadoutModel.p_read1_given0")?,
        p_read0_given1: r.get_f64("ReadoutModel.p_read0_given1")?,
    };
    let measurement_source = match r.get_u8("MeasurementSource")? {
        0 => MeasurementSource::Quantum,
        1 => MeasurementSource::MockAlternating {
            start: r.get_bool("MockAlternating.start")?,
        },
        2 => {
            let n = r.get_count("MockFixed.values", 1)?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(r.get_bool("MockFixed.value")?);
            }
            MeasurementSource::MockFixed(values)
        }
        tag => {
            return Err(WireError::UnknownTag {
                what: "MeasurementSource",
                tag,
            })
        }
    };
    let timing_policy = match r.get_u8("TimingPolicy")? {
        0 => TimingPolicy::SlipAndCount,
        1 => TimingPolicy::Fault,
        tag => {
            return Err(WireError::UnknownTag {
                what: "TimingPolicy",
                tag,
            })
        }
    };
    Ok(SimConfig {
        cycle_time_ns,
        classical_per_quantum,
        latency,
        noise,
        readout,
        measurement_source,
        timing_policy,
        seed: r.get_u64("SimConfig.seed")?,
        max_classical_cycles: r.get_u64("SimConfig.max_classical_cycles")?,
        backend: match r.get_u8("SimConfig.backend")? {
            0 => BackendSelect::Auto,
            1 => BackendSelect::Dense,
            2 => BackendSelect::Stabilizer,
            3 => BackendSelect::Density,
            4 => BackendSelect::Pure,
            tag => {
                return Err(WireError::UnknownTag {
                    what: "SimConfig.backend",
                    tag,
                })
            }
        },
        record_trace: r.get_bool("SimConfig.record_trace")?,
    })
}

// ---------------------------------------------------------------------
// Job
// ---------------------------------------------------------------------

/// Encodes a complete [`Job`] — everything a remote worker needs to
/// run any shot range of it.
pub fn encode_job(job: &Job) -> Result<Vec<u8>, WireError> {
    let mut w = Writer::new();
    w.put_str(&job.name);
    put_instantiation(&mut w, &job.inst)?;
    w.put_u32(job.program.len() as u32);
    for instr in &job.program {
        put_instruction(&mut w, instr);
    }
    put_sim_config(&mut w, &job.config);
    w.put_u64(job.shots);
    w.put_u64(job.base_seed);
    Ok(w.into_bytes())
}

/// Decodes a [`Job`] produced by [`encode_job`].
pub fn decode_job(bytes: &[u8]) -> Result<Job, WireError> {
    let mut r = Reader::new(bytes);
    let job = get_job(&mut r)?;
    if r.remaining() != 0 {
        return Err(WireError::Invalid(format!(
            "{} trailing bytes after job",
            r.remaining()
        )));
    }
    Ok(job)
}

fn get_job(r: &mut Reader<'_>) -> Result<Job, WireError> {
    let name = r.get_str("Job.name")?;
    let inst = get_instantiation(r)?;
    let n = r.get_count("Job.program", 1)?;
    let mut program = Vec::with_capacity(n);
    for _ in 0..n {
        program.push(get_instruction(r)?);
    }
    let config = get_sim_config(r)?;
    let shots = r.get_u64("Job.shots")?;
    let base_seed = r.get_u64("Job.base_seed")?;
    Ok(Job {
        name,
        inst,
        program,
        config,
        shots,
        base_seed,
    })
}

// ---------------------------------------------------------------------
// RunStats / Histogram / BatchOut
// ---------------------------------------------------------------------

fn put_run_stats(w: &mut Writer, s: &RunStats) {
    // Field order is frozen by PROTOCOL_VERSION: a new counter in
    // RunStats is a version bump, not a silent layout change.
    w.put_u64(s.classical_cycles);
    w.put_u64(s.quantum_cycles);
    w.put_u64(s.classical_instructions);
    w.put_u64(s.quantum_instructions);
    w.put_u64(s.bundle_words);
    w.put_u64(s.timing_points);
    w.put_u64(s.ops_triggered);
    w.put_u64(s.ops_cancelled);
    w.put_u64(s.two_qubit_gates);
    w.put_u64(s.measurements);
    w.put_u64(s.fmr_stall_cycles);
    w.put_u64(s.timeline_slips);
    w.put_u64(s.slipped_cycles);
    w.put_u64(s.busy_overlaps);
    w.put_u64(s.last_timing_point);
}

fn get_run_stats(r: &mut Reader<'_>) -> Result<RunStats, WireError> {
    // RunStats is #[non_exhaustive]; start from default and assign.
    let mut s = RunStats::default();
    s.classical_cycles = r.get_u64("RunStats.classical_cycles")?;
    s.quantum_cycles = r.get_u64("RunStats.quantum_cycles")?;
    s.classical_instructions = r.get_u64("RunStats.classical_instructions")?;
    s.quantum_instructions = r.get_u64("RunStats.quantum_instructions")?;
    s.bundle_words = r.get_u64("RunStats.bundle_words")?;
    s.timing_points = r.get_u64("RunStats.timing_points")?;
    s.ops_triggered = r.get_u64("RunStats.ops_triggered")?;
    s.ops_cancelled = r.get_u64("RunStats.ops_cancelled")?;
    s.two_qubit_gates = r.get_u64("RunStats.two_qubit_gates")?;
    s.measurements = r.get_u64("RunStats.measurements")?;
    s.fmr_stall_cycles = r.get_u64("RunStats.fmr_stall_cycles")?;
    s.timeline_slips = r.get_u64("RunStats.timeline_slips")?;
    s.slipped_cycles = r.get_u64("RunStats.slipped_cycles")?;
    s.busy_overlaps = r.get_u64("RunStats.busy_overlaps")?;
    s.last_timing_point = r.get_u64("RunStats.last_timing_point")?;
    Ok(s)
}

fn put_histogram(w: &mut Writer, h: &Histogram) {
    w.put_u32(h.len() as u32);
    for (outcome, &count) in h.iter() {
        w.put_u64(outcome.measured);
        w.put_u64(outcome.bits);
        w.put_u64(count);
    }
}

fn get_histogram(r: &mut Reader<'_>) -> Result<Histogram, WireError> {
    let n = r.get_count("Histogram.entries", 24)?;
    let mut h = Histogram::new();
    for _ in 0..n {
        let outcome = BitString {
            measured: r.get_u64("BitString.measured")?,
            bits: r.get_u64("BitString.bits")?,
        };
        let count = r.get_u64("Histogram.count")?;
        h.add(outcome, count);
    }
    Ok(h)
}

/// Encodes a [`BatchOut`] for the return trip.
pub fn encode_batch_out(out: &BatchOut) -> Vec<u8> {
    let mut w = Writer::new();
    put_histogram(&mut w, &out.histogram);
    put_run_stats(&mut w, &out.stats);
    w.put_u32(out.prob1_sum.len() as u32);
    for &p in &out.prob1_sum {
        w.put_f64(p);
    }
    w.put_u64(out.durations_ns.len() as u64);
    for &d in &out.durations_ns {
        w.put_u64(d);
    }
    w.put_u64(out.non_halted);
    match &out.first_failure {
        None => w.put_u8(0),
        Some((shot, message)) => {
            w.put_u8(1);
            w.put_u64(*shot);
            w.put_str(message);
        }
    }
    w.put_u64(out.elapsed_ns);
    w.into_bytes()
}

/// Decodes a [`BatchOut`] produced by [`encode_batch_out`].
pub fn decode_batch_out(bytes: &[u8]) -> Result<BatchOut, WireError> {
    let mut r = Reader::new(bytes);
    let histogram = get_histogram(&mut r)?;
    let stats = get_run_stats(&mut r)?;
    let n = r.get_count("BatchOut.prob1_sum", 8)?;
    let mut prob1_sum = Vec::with_capacity(n);
    for _ in 0..n {
        prob1_sum.push(r.get_f64("BatchOut.prob1")?);
    }
    let n_durations = r.get_u64("BatchOut.durations_len")? as usize;
    if n_durations.saturating_mul(8) > r.remaining() {
        return Err(WireError::Truncated {
            what: "BatchOut.durations",
            needed: n_durations * 8,
            have: r.remaining(),
        });
    }
    let mut durations_ns = Vec::with_capacity(n_durations);
    for _ in 0..n_durations {
        durations_ns.push(r.get_u64("BatchOut.duration")?);
    }
    let non_halted = r.get_u64("BatchOut.non_halted")?;
    let first_failure = match r.get_u8("BatchOut.first_failure")? {
        0 => None,
        1 => Some((
            r.get_u64("BatchOut.failure_shot")?,
            r.get_str("BatchOut.failure_message")?,
        )),
        tag => {
            return Err(WireError::UnknownTag {
                what: "BatchOut.first_failure",
                tag,
            })
        }
    };
    let elapsed_ns = r.get_u64("BatchOut.elapsed_ns")?;
    if r.remaining() != 0 {
        return Err(WireError::Invalid(format!(
            "{} trailing bytes after batch result",
            r.remaining()
        )));
    }
    Ok(BatchOut {
        histogram,
        stats,
        prob1_sum,
        durations_ns,
        non_halted,
        first_failure,
        elapsed_ns,
    })
}

// ---------------------------------------------------------------------
// Frames and messages
// ---------------------------------------------------------------------

/// Message tags carried in the frame header.
pub mod tag {
    /// Client → worker: magic + version.
    pub const HELLO: u8 = 1;
    /// Worker → client: magic + version + capacity + name.
    pub const HELLO_ACK: u8 = 2;
    /// Client → worker: run a shot range of an (inlined) job.
    pub const RUN_RANGE: u8 = 3;
    /// Worker → client: the range's [`crate::BatchOut`].
    pub const BATCH: u8 = 4;
    /// Either direction: a typed failure.
    pub const ERROR: u8 = 5;
    /// Client → worker: liveness probe.
    pub const PING: u8 = 6;
    /// Worker → client: liveness answer.
    pub const PONG: u8 = 7;
    /// (v2) Client → worker: register a job's encoded bytes under a
    /// client-chosen id in the worker's job cache.
    pub const LOAD_JOB: u8 = 8;
    /// (v2) Worker → client: the job loaded and validated.
    pub const LOAD_ACK: u8 = 9;
    /// (v2) Client → worker: run a shot range of a previously loaded
    /// job, named by id — constant-size, however large the program.
    pub const RUN_RANGE_BY_ID: u8 = 10;
    /// Server → client: PSK challenge (sent instead of `HELLO_ACK`
    /// when the server requires authentication).
    pub const AUTH_CHALLENGE: u8 = 11;
    /// Client → server: nonce + proof answering a challenge.
    pub const AUTH_RESPONSE: u8 = 12;
    /// Server → client: the server's own proof (mutual auth), after
    /// which the delayed `HELLO_ACK` follows.
    pub const AUTH_OK: u8 = 13;
    /// (v2, serve front door) Client → coordinator: a tenant-tagged
    /// submission for the job queue.
    pub const SUBMIT: u8 = 16;
    /// Coordinator → client: ids of the jobs a submission expanded to.
    pub const SUBMIT_ACK: u8 = 17;
    /// Client → coordinator: one point-in-time snapshot of a job.
    pub const POLL: u8 = 18;
    /// Coordinator → client: an encoded
    /// [`crate::PartialResult`] snapshot.
    pub const SNAPSHOT: u8 = 19;
    /// Client → coordinator: stream snapshots of a job until it
    /// completes, then its final result.
    pub const SUBSCRIBE: u8 = 20;
    /// Coordinator → client: an encoded final [`crate::JobResult`],
    /// ending a subscription (or answering a wait).
    pub const RESULT: u8 = 21;
}

/// Assembles one frame — `u32` length (tag byte + payload), tag,
/// payload — into a single contiguous buffer. This is the one encode
/// path: [`write_frame`] writes its output to a blocking stream, and
/// the reactor queues it (behind an [`std::sync::Arc`]) on per-peer
/// [`FrameWriter`]s, so a snapshot fanned out to thousands of
/// subscribers is encoded exactly once.
pub fn encode_frame(tag: u8, payload: &[u8]) -> Result<Vec<u8>, WireError> {
    let len = payload.len() as u64 + 1;
    if len > MAX_FRAME_LEN as u64 {
        return Err(WireError::FrameTooLarge {
            len: len as u32,
            cap: MAX_FRAME_LEN,
        });
    }
    let mut buf = Vec::with_capacity(payload.len() + 5);
    buf.extend_from_slice(&(len as u32).to_le_bytes());
    buf.push(tag);
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// Writes one frame: `u32` length (tag byte + payload), tag, payload.
pub fn write_frame(w: &mut impl Write, tag: u8, payload: &[u8]) -> Result<(), WireError> {
    let buf = encode_frame(tag, payload)?;
    w.write_all(&buf)?;
    w.flush()?;
    crate::metrics::record_frame(crate::metrics::FrameDir::Out, tag, buf.len() as u64);
    Ok(())
}

/// Reads one frame, returning `(tag, payload)`, under the global
/// [`MAX_FRAME_LEN`] cap. A peer that closes the connection cleanly
/// before any frame surfaces as [`WireError::Io`] with
/// [`std::io::ErrorKind::UnexpectedEof`].
pub fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), WireError> {
    read_frame_limit(r, MAX_FRAME_LEN)
}

/// [`read_frame`] under an explicit per-connection frame cap — how a
/// worker or serve acceptor enforces its configured frame budget
/// (`max_len` is clamped to the global [`MAX_FRAME_LEN`]). The cap is
/// checked against the length *prefix*, before any payload is read or
/// allocated, so an over-budget (or corrupt) length costs nothing.
pub fn read_frame_limit(r: &mut impl Read, max_len: u32) -> Result<(u8, Vec<u8>), WireError> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = validate_frame_len(len_bytes, max_len)?;
    // Tag byte first, payload straight into its own buffer: frames
    // carry whole jobs and per-shot duration vectors, so an
    // extract-the-tag shift of the body would be an O(frame) copy on
    // every request and response.
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let mut payload = vec![0u8; len as usize - 1];
    r.read_exact(&mut payload)?;
    crate::metrics::record_frame(crate::metrics::FrameDir::In, tag[0], len as u64 + 4);
    Ok((tag[0], payload))
}

/// Validates a frame's 4-byte length prefix against a per-connection
/// cap (clamped to the global [`MAX_FRAME_LEN`]), returning the body
/// length (tag byte + payload). The one place the header is judged:
/// both the blocking [`read_frame_limit`] and the incremental
/// [`FrameReader`] call through here, so the two paths cannot drift on
/// what counts as a well-formed frame.
fn validate_frame_len(len_bytes: [u8; 4], max_len: u32) -> Result<u32, WireError> {
    let cap = max_len.min(MAX_FRAME_LEN);
    let len = u32::from_le_bytes(len_bytes);
    if len == 0 {
        return Err(WireError::Invalid("zero-length frame".to_owned()));
    }
    if len > cap {
        return Err(WireError::FrameTooLarge { len, cap });
    }
    Ok(len)
}

/// Incremental frame decoder for nonblocking sockets: bytes arrive in
/// whatever slices the kernel hands back across `EWOULDBLOCK`
/// boundaries, and [`FrameReader::next_frame`] yields each complete
/// `(tag, payload)` exactly as the blocking [`read_frame_limit`] would
/// have (same header validation via the shared length check, same
/// metrics) — property-tested decode-identical under byte-at-a-time
/// and random-split delivery.
///
/// The cap is enforced against the length *prefix* the moment its 4
/// bytes are available, before any payload accumulates, so an
/// over-budget peer is rejected without buying a giant buffer.
#[derive(Debug)]
pub struct FrameReader {
    cap: u32,
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames; compacted
    /// once the parsed-out prefix dominates the buffer.
    start: usize,
}

impl FrameReader {
    /// A reader enforcing `max_len` (clamped to [`MAX_FRAME_LEN`]) on
    /// every frame, like [`read_frame_limit`].
    pub fn new(max_len: u32) -> FrameReader {
        FrameReader {
            cap: max_len.min(MAX_FRAME_LEN),
            buf: Vec::new(),
            start: 0,
        }
    }

    /// Appends freshly-read bytes to the accumulation buffer.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Yields the next complete frame, `Ok(None)` when more bytes are
    /// needed, or the same typed errors the blocking reader raises
    /// (zero-length, over-cap). Errors are sticky in practice — the
    /// caller drops the connection, exactly as the blocking path does.
    pub fn next_frame(&mut self) -> Result<Option<(u8, Vec<u8>)>, WireError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            self.compact();
            return Ok(None);
        }
        let len = validate_frame_len([avail[0], avail[1], avail[2], avail[3]], self.cap)?;
        if avail.len() < 4 + len as usize {
            self.compact();
            return Ok(None);
        }
        let tag = avail[4];
        let payload = avail[5..4 + len as usize].to_vec();
        self.start += 4 + len as usize;
        self.compact();
        crate::metrics::record_frame(crate::metrics::FrameDir::In, tag, len as u64 + 4);
        Ok(Some((tag, payload)))
    }

    /// Drops the consumed prefix once it outweighs the live remainder,
    /// keeping the buffer from growing with connection lifetime while
    /// amortising the memmove.
    fn compact(&mut self) {
        if self.start > 4096 && self.start >= self.buf.len() - self.start {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Bounded outbound frame queue for nonblocking sockets: frames are
/// queued fully assembled (see [`encode_frame`]) behind `Arc`s — so one
/// snapshot encoding is shared by every subscriber — and drained by
/// [`FrameWriter::flush_into`] as the socket accepts bytes, tracking a
/// partial-write offset across `EWOULDBLOCK`. The byte cap turns a
/// persistently slow peer into a backpressure disconnect (the caller's
/// move when [`FrameWriter::enqueue`] refuses) instead of unbounded
/// buffering or a blocked reactor.
#[derive(Debug)]
pub struct FrameWriter {
    queue: std::collections::VecDeque<std::sync::Arc<Vec<u8>>>,
    /// Bytes of the front frame already written to the socket.
    front_written: usize,
    queued_bytes: usize,
    max_queued_bytes: usize,
}

impl FrameWriter {
    /// A writer refusing to queue beyond `max_queued_bytes` of
    /// not-yet-flushed frame data.
    pub fn new(max_queued_bytes: usize) -> FrameWriter {
        FrameWriter {
            queue: std::collections::VecDeque::new(),
            front_written: 0,
            queued_bytes: 0,
            max_queued_bytes,
        }
    }

    /// Queues one assembled frame. Returns `false` — frame *not*
    /// queued — when doing so would exceed the byte cap while other
    /// frames are already pending; the connection is then hopelessly
    /// behind and should be disconnected. A single frame larger than
    /// the cap is still accepted on an empty queue so the cap bounds
    /// *backlog*, not frame size (frame size has its own budget).
    #[must_use]
    pub fn enqueue(&mut self, frame: std::sync::Arc<Vec<u8>>) -> bool {
        if !self.queue.is_empty() && self.queued_bytes + frame.len() > self.max_queued_bytes {
            return false;
        }
        self.queued_bytes += frame.len();
        self.queue.push_back(frame);
        true
    }

    /// Whether any frame bytes await the socket.
    pub fn has_pending(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Bytes queued and not yet written.
    pub fn queued_bytes(&self) -> usize {
        self.queued_bytes - self.front_written
    }

    /// Writes queued frames until the queue drains or the socket stops
    /// accepting bytes. Returns `Ok(true)` when nothing remains
    /// pending, `Ok(false)` on `EWOULDBLOCK` (caller keeps writable
    /// interest armed), and `Err` on real transport failures.
    /// Per-frame metrics are recorded as each frame finishes hitting
    /// the socket, mirroring the blocking [`write_frame`].
    pub fn flush_into(&mut self, w: &mut impl Write) -> std::io::Result<bool> {
        while let Some(front) = self.queue.front() {
            while self.front_written < front.len() {
                let n = match w.write(&front[self.front_written..]) {
                    Ok(0) => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::WriteZero,
                            "socket accepted zero bytes",
                        ))
                    }
                    Ok(n) => n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                };
                self.front_written += n;
            }
            crate::metrics::record_frame(
                crate::metrics::FrameDir::Out,
                front[4],
                front.len() as u64,
            );
            self.queued_bytes -= front.len();
            self.front_written = 0;
            self.queue.pop_front();
        }
        Ok(true)
    }
}

/// The client half of the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hello {
    /// The **highest** protocol version the client speaks (since v2;
    /// v1 peers read it as "the only version the client speaks" and
    /// reject anything unfamiliar, which the client answers by
    /// re-offering v1).
    pub version: u16,
}

impl Hello {
    /// Encodes the hello payload (magic + version).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.buf.extend_from_slice(&MAGIC);
        w.put_u16(self.version);
        w.into_bytes()
    }

    /// Decodes and validates a hello payload.
    pub fn decode(bytes: &[u8]) -> Result<Hello, WireError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(4, "Hello.magic")?;
        if magic != MAGIC {
            return Err(WireError::BadMagic {
                found: [magic[0], magic[1], magic[2], magic[3]],
            });
        }
        Ok(Hello {
            version: r.get_u16("Hello.version")?,
        })
    }
}

/// The worker half of the handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloAck {
    /// The **negotiated** protocol version — `min` of what both ends
    /// speak. Every later frame on the connection is interpreted
    /// under this version.
    pub version: u16,
    /// How many ranges the worker is willing to run concurrently
    /// (clients typically open this many connections).
    pub capacity: u32,
    /// The worker's self-reported name, for diagnostics.
    pub name: String,
}

impl HelloAck {
    /// Encodes the acknowledgement payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.buf.extend_from_slice(&MAGIC);
        w.put_u16(self.version);
        w.put_u32(self.capacity);
        w.put_str(&self.name);
        w.into_bytes()
    }

    /// Decodes and validates an acknowledgement payload.
    pub fn decode(bytes: &[u8]) -> Result<HelloAck, WireError> {
        let mut r = Reader::new(bytes);
        let magic = r.take(4, "HelloAck.magic")?;
        if magic != MAGIC {
            return Err(WireError::BadMagic {
                found: [magic[0], magic[1], magic[2], magic[3]],
            });
        }
        Ok(HelloAck {
            version: r.get_u16("HelloAck.version")?,
            capacity: r.get_u32("HelloAck.capacity")?,
            name: r.get_str("HelloAck.name")?,
        })
    }
}

/// A request to run shots `start..end` of the inlined job.
///
/// The job is carried as its *encoded bytes* (not re-nested structs)
/// so a worker can compare them against its cached program with a
/// plain memcmp and skip the decode + machine rebuild when the same
/// job sends many ranges — exactness without a job-registry handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunRange {
    /// First shot index of the range.
    pub start: u64,
    /// One past the last shot index.
    pub end: u64,
    /// The [`encode_job`] bytes of the job.
    pub job_bytes: Vec<u8>,
}

impl RunRange {
    /// Encodes the request payload.
    pub fn encode(&self) -> Vec<u8> {
        RunRange::encode_parts(self.start, self.end, &self.job_bytes)
    }

    /// Encodes a request payload from borrowed job bytes — the
    /// client's hot path, which keeps one cached encoding of the job
    /// and must not clone it per range just to build the frame.
    pub fn encode_parts(start: u64, end: u64, job_bytes: &[u8]) -> Vec<u8> {
        let mut w = Writer::new();
        w.buf.reserve(8 + 8 + 4 + job_bytes.len());
        w.put_u64(start);
        w.put_u64(end);
        w.put_bytes(job_bytes);
        w.into_bytes()
    }

    /// Decodes a request payload.
    pub fn decode(bytes: &[u8]) -> Result<RunRange, WireError> {
        let mut r = Reader::new(bytes);
        Ok(RunRange {
            start: r.get_u64("RunRange.start")?,
            end: r.get_u64("RunRange.end")?,
            job_bytes: r.get_bytes("RunRange.job_bytes")?,
        })
    }
}

/// (v2) Registers a job's encoded bytes under a client-chosen id in
/// the worker's capacity-bounded job cache, so later
/// [`RunRangeById`] requests can name it without re-shipping the
/// bytes. Ids are scoped to the connection (a fresh connection starts
/// with an empty cache), so a simple counter on the client side is
/// collision-free by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadJob {
    /// The id later ranges will use.
    pub job_id: u64,
    /// The [`encode_job`] bytes of the job.
    pub job_bytes: Vec<u8>,
}

impl LoadJob {
    /// Encodes the request payload.
    pub fn encode(&self) -> Vec<u8> {
        LoadJob::encode_parts(self.job_id, &self.job_bytes)
    }

    /// Encodes a request payload from borrowed job bytes — the
    /// client keeps one cached encoding per job and must not clone it
    /// just to build the (one-time) load frame.
    pub fn encode_parts(job_id: u64, job_bytes: &[u8]) -> Vec<u8> {
        let mut w = Writer::new();
        w.buf.reserve(8 + 4 + job_bytes.len());
        w.put_u64(job_id);
        w.put_bytes(job_bytes);
        w.into_bytes()
    }

    /// Encodes a request payload, [`compress`]ing the job bytes when
    /// that actually shrinks them (it does for any realistic program —
    /// the fixed-width job encoding is full of zero runs). A
    /// compressed load is flagged by [`COMPRESSED_JOB_ID_FLAG`] in the
    /// id word; the frame layout is unchanged from v2, but only v3
    /// decoders know the flag, so callers must use this encoding only
    /// on connections that negotiated ≥ v3 (pre-v3 peers get
    /// [`LoadJob::encode_parts`]). Incompressible bytes ship plain
    /// with no flag — the decoder never pays for compression that did
    /// not help.
    pub fn encode_parts_auto(job_id: u64, job_bytes: &[u8]) -> Vec<u8> {
        debug_assert_eq!(
            job_id & COMPRESSED_JOB_ID_FLAG,
            0,
            "job ids use the low 63 bits"
        );
        let packed = compress(job_bytes);
        if packed.len() < job_bytes.len() {
            let mut w = Writer::new();
            w.buf.reserve(8 + 4 + packed.len());
            w.put_u64(job_id | COMPRESSED_JOB_ID_FLAG);
            w.put_bytes(&packed);
            w.into_bytes()
        } else {
            LoadJob::encode_parts(job_id, job_bytes)
        }
    }

    /// Decodes a request payload, transparently decompressing loads
    /// flagged with [`COMPRESSED_JOB_ID_FLAG`]. The returned `job_id`
    /// is always the plain id (flag cleared) and `job_bytes` always
    /// the raw [`encode_job`] bytes.
    pub fn decode(bytes: &[u8]) -> Result<LoadJob, WireError> {
        let mut r = Reader::new(bytes);
        let raw_id = r.get_u64("LoadJob.job_id")?;
        let body = r.get_bytes("LoadJob.job_bytes")?;
        if raw_id & COMPRESSED_JOB_ID_FLAG != 0 {
            Ok(LoadJob {
                job_id: raw_id & !COMPRESSED_JOB_ID_FLAG,
                job_bytes: decompress(&body)?,
            })
        } else {
            Ok(LoadJob {
                job_id: raw_id,
                job_bytes: body,
            })
        }
    }
}

/// (v2) Acknowledges a [`LoadJob`]: the job decoded, validated and is
/// cached under `job_id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadAck {
    /// The id the job is cached under.
    pub job_id: u64,
    /// Jobs resident in this connection's cache after the load —
    /// lets a client observe eviction pressure without a second
    /// round trip.
    pub cached: u32,
}

impl LoadAck {
    /// Encodes the acknowledgement payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.job_id);
        w.put_u32(self.cached);
        w.into_bytes()
    }

    /// Decodes an acknowledgement payload.
    pub fn decode(bytes: &[u8]) -> Result<LoadAck, WireError> {
        let mut r = Reader::new(bytes);
        Ok(LoadAck {
            job_id: r.get_u64("LoadAck.job_id")?,
            cached: r.get_u32("LoadAck.cached")?,
        })
    }
}

/// (v2) Runs shots `start..end` of the job cached under `job_id` —
/// the constant-size successor of [`RunRange`]. A worker that no
/// longer holds the id answers [`ErrorKind::JobNotLoaded`], and the
/// client re-loads transparently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunRangeById {
    /// The id a previous [`LoadJob`] registered.
    pub job_id: u64,
    /// First shot index of the range.
    pub start: u64,
    /// One past the last shot index.
    pub end: u64,
}

impl RunRangeById {
    /// Encodes the request payload (always 24 bytes).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.job_id);
        w.put_u64(self.start);
        w.put_u64(self.end);
        w.into_bytes()
    }

    /// Decodes a request payload.
    pub fn decode(bytes: &[u8]) -> Result<RunRangeById, WireError> {
        let mut r = Reader::new(bytes);
        Ok(RunRangeById {
            job_id: r.get_u64("RunRangeById.job_id")?,
            start: r.get_u64("RunRangeById.start")?,
            end: r.get_u64("RunRangeById.end")?,
        })
    }
}

/// The server half of the PSK challenge: a fresh random nonce the
/// client must bind into its proof (which is what makes a captured
/// proof worthless on any other connection).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthChallenge {
    /// The server's nonce for this connection.
    pub server_nonce: Vec<u8>,
}

impl AuthChallenge {
    /// Encodes the challenge payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(&self.server_nonce);
        w.into_bytes()
    }

    /// Decodes a challenge payload.
    pub fn decode(bytes: &[u8]) -> Result<AuthChallenge, WireError> {
        let mut r = Reader::new(bytes);
        Ok(AuthChallenge {
            server_nonce: r.get_bytes("AuthChallenge.server_nonce")?,
        })
    }
}

/// The client's answer to an [`AuthChallenge`]: its own nonce plus
/// `HMAC-SHA-256(psk, client-context ‖ server_nonce ‖ client_nonce)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthResponse {
    /// The client's nonce (binds the server's return proof).
    pub client_nonce: Vec<u8>,
    /// The client's HMAC proof over both nonces.
    pub proof: Vec<u8>,
}

impl AuthResponse {
    /// Encodes the response payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(&self.client_nonce);
        w.put_bytes(&self.proof);
        w.into_bytes()
    }

    /// Decodes a response payload.
    pub fn decode(bytes: &[u8]) -> Result<AuthResponse, WireError> {
        let mut r = Reader::new(bytes);
        Ok(AuthResponse {
            client_nonce: r.get_bytes("AuthResponse.client_nonce")?,
            proof: r.get_bytes("AuthResponse.proof")?,
        })
    }
}

/// The server's return proof (mutual authentication), computed under
/// a distinct domain-separation context so it can never be satisfied
/// by reflecting the client's own proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuthOk {
    /// The server's HMAC proof over both nonces.
    pub proof: Vec<u8>,
}

impl AuthOk {
    /// Encodes the proof payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_bytes(&self.proof);
        w.into_bytes()
    }

    /// Decodes a proof payload.
    pub fn decode(bytes: &[u8]) -> Result<AuthOk, WireError> {
        let mut r = Reader::new(bytes);
        Ok(AuthOk {
            proof: r.get_bytes("AuthOk.proof")?,
        })
    }
}

/// What kind of failure an [`ErrorMsg`] reports — the split decides
/// the coordinator's reaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The job's program failed machine validation on the worker. The
    /// same program fails everywhere: the job is failed, not retried.
    Load,
    /// The worker hit an internal fault running the range. Another
    /// backend may succeed: the range is re-dispatched.
    Internal,
    /// The peer speaks an incompatible protocol version.
    Version,
    /// The peer sent bytes this version cannot interpret.
    Malformed,
    /// (v2) A [`RunRangeById`] named a job id this worker does not
    /// have loaded — never sent, or evicted from the job cache. The
    /// client recovers transparently: re-send [`LoadJob`], retry the
    /// range. Not a failure of the job or the connection.
    JobNotLoaded,
    /// The peer failed pre-shared-key authentication (wrong or
    /// missing key, or a proof that does not match this connection's
    /// nonces — e.g. a replay of an old handshake).
    AuthFailed,
    /// The request was rejected by a resource budget: a frame larger
    /// than this connection's cap, a request rate above the
    /// per-connection budget, or a submission past an admission cap.
    /// The work itself may be fine — the caller should back off,
    /// shrink, or spread the load.
    Budget,
}

impl ErrorKind {
    fn encode(self) -> u8 {
        match self {
            ErrorKind::Load => 0,
            ErrorKind::Internal => 1,
            ErrorKind::Version => 2,
            ErrorKind::Malformed => 3,
            ErrorKind::JobNotLoaded => 4,
            ErrorKind::AuthFailed => 5,
            ErrorKind::Budget => 6,
        }
    }

    fn decode(tag: u8) -> Result<Self, WireError> {
        Ok(match tag {
            0 => ErrorKind::Load,
            1 => ErrorKind::Internal,
            2 => ErrorKind::Version,
            3 => ErrorKind::Malformed,
            4 => ErrorKind::JobNotLoaded,
            5 => ErrorKind::AuthFailed,
            6 => ErrorKind::Budget,
            tag => {
                return Err(WireError::UnknownTag {
                    what: "ErrorKind",
                    tag,
                })
            }
        })
    }
}

/// A typed failure sent instead of the expected response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorMsg {
    /// The failure class.
    pub kind: ErrorKind,
    /// The sender's protocol version (meaningful for
    /// [`ErrorKind::Version`]; zero otherwise is fine).
    pub version: u16,
    /// Human-readable detail.
    pub message: String,
}

impl ErrorMsg {
    /// Encodes the error payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u8(self.kind.encode());
        w.put_u16(self.version);
        w.put_str(&self.message);
        w.into_bytes()
    }

    /// Decodes an error payload.
    pub fn decode(bytes: &[u8]) -> Result<ErrorMsg, WireError> {
        let mut r = Reader::new(bytes);
        Ok(ErrorMsg {
            kind: ErrorKind::decode(r.get_u8("ErrorMsg.kind")?)?,
            version: r.get_u16("ErrorMsg.version")?,
            message: r.get_str("ErrorMsg.message")?,
        })
    }
}

impl fmt::Display for ErrorMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ErrorKind::Load => write!(f, "program load failed: {}", self.message),
            ErrorKind::Internal => write!(f, "worker fault: {}", self.message),
            ErrorKind::Version => write!(
                f,
                "protocol version mismatch (peer speaks v{}): {}",
                self.version, self.message
            ),
            ErrorKind::Malformed => write!(f, "malformed frame: {}", self.message),
            ErrorKind::JobNotLoaded => write!(f, "job not loaded: {}", self.message),
            ErrorKind::AuthFailed => write!(f, "authentication failed: {}", self.message),
            ErrorKind::Budget => write!(f, "budget exceeded: {}", self.message),
        }
    }
}

/// A canonical fingerprint of an encoded job, used by worker-side
/// caches and diagnostics. FNV-1a over the job bytes; collisions only
/// affect *logging*, never correctness (caches compare full bytes).
pub fn job_fingerprint(job_bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in job_bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A fingerprint over a result's **deterministic** fields only —
/// name, shot count, histogram, machine stats, mean populations,
/// non-halted count and first failure. Wall-clock fields (latencies,
/// elapsed, shots/sec) are excluded, so two runs of the same job
/// fingerprint identically however they were scheduled; `eqasm-cli
/// watch` prints it so scripts can assert bit-identical results
/// across processes (e.g. a broken-and-resumed watch vs an unbroken
/// one in CI).
pub fn result_fingerprint(res: &crate::JobResult) -> u64 {
    let mut w = Writer::new();
    w.put_str(&res.name);
    w.put_u64(res.shots);
    put_histogram(&mut w, &res.histogram);
    put_run_stats(&mut w, &res.stats);
    put_f64_vec(&mut w, &res.mean_prob1);
    w.put_u64(res.non_halted);
    match &res.first_failure {
        None => w.put_u8(0),
        Some((shot, message)) => {
            w.put_u8(1);
            w.put_u64(*shot);
            w.put_str(message);
        }
    }
    job_fingerprint(&w.into_bytes())
}

// ---------------------------------------------------------------------
// Serve front door: submissions, snapshots, results (v2)
// ---------------------------------------------------------------------

fn put_latency_stats(w: &mut Writer, l: &LatencyStats) {
    w.put_u64(l.p50_ns);
    w.put_u64(l.p95_ns);
    w.put_u64(l.p99_ns);
    w.put_u64(l.mean_ns);
    w.put_u64(l.max_ns);
}

fn get_latency_stats(r: &mut Reader<'_>) -> Result<LatencyStats, WireError> {
    Ok(LatencyStats {
        p50_ns: r.get_u64("LatencyStats.p50_ns")?,
        p95_ns: r.get_u64("LatencyStats.p95_ns")?,
        p99_ns: r.get_u64("LatencyStats.p99_ns")?,
        mean_ns: r.get_u64("LatencyStats.mean_ns")?,
        max_ns: r.get_u64("LatencyStats.max_ns")?,
    })
}

fn put_duration_ns(w: &mut Writer, d: Duration) {
    // Saturating: a >584-year duration is an upstream bug, not a
    // reason to wrap into a wrong small number.
    w.put_u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
}

fn put_opt_str(w: &mut Writer, s: Option<&str>) {
    match s {
        None => w.put_u8(0),
        Some(s) => {
            w.put_u8(1);
            w.put_str(s);
        }
    }
}

fn get_opt_str(r: &mut Reader<'_>, what: &'static str) -> Result<Option<String>, WireError> {
    match r.get_u8(what)? {
        0 => Ok(None),
        1 => Ok(Some(r.get_str(what)?)),
        tag => Err(WireError::UnknownTag { what, tag }),
    }
}

fn put_f64_vec(w: &mut Writer, v: &[f64]) {
    w.put_u32(v.len() as u32);
    for &x in v {
        w.put_f64(x);
    }
}

fn get_f64_vec(r: &mut Reader<'_>, what: &'static str) -> Result<Vec<f64>, WireError> {
    let n = r.get_count(what, 8)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(r.get_f64(what)?);
    }
    Ok(out)
}

/// Encodes a streaming [`PartialResult`] snapshot. Deterministic
/// fields (histogram, stats, mean-`P(|1⟩)`) cross by bit pattern, so
/// a snapshot read over the wire is the same exact prefix of the
/// final aggregate that an in-process poller would see.
pub fn encode_partial_result(p: &PartialResult) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str(&p.name);
    w.put_str(p.tenant.as_str());
    w.put_u64(p.shots_done);
    w.put_u64(p.shots_total);
    w.put_u64(p.batches_done as u64);
    w.put_u64(p.batches_total as u64);
    put_histogram(&mut w, &p.histogram);
    put_run_stats(&mut w, &p.stats);
    put_f64_vec(&mut w, &p.mean_prob1);
    put_latency_stats(&mut w, &p.latency);
    w.put_u64(p.non_halted);
    w.put_bool(p.done);
    put_opt_str(&mut w, p.failed.as_deref());
    put_duration_ns(&mut w, p.queue_wait);
    put_duration_ns(&mut w, p.active);
    w.into_bytes()
}

/// Decodes a [`PartialResult`] produced by [`encode_partial_result`].
pub fn decode_partial_result(bytes: &[u8]) -> Result<PartialResult, WireError> {
    let mut r = Reader::new(bytes);
    let p = PartialResult {
        name: r.get_str("PartialResult.name")?,
        tenant: TenantId::new(r.get_str("PartialResult.tenant")?),
        shots_done: r.get_u64("PartialResult.shots_done")?,
        shots_total: r.get_u64("PartialResult.shots_total")?,
        batches_done: r.get_u64("PartialResult.batches_done")? as usize,
        batches_total: r.get_u64("PartialResult.batches_total")? as usize,
        histogram: get_histogram(&mut r)?,
        stats: get_run_stats(&mut r)?,
        mean_prob1: get_f64_vec(&mut r, "PartialResult.mean_prob1")?,
        latency: get_latency_stats(&mut r)?,
        non_halted: r.get_u64("PartialResult.non_halted")?,
        done: r.get_bool("PartialResult.done")?,
        failed: get_opt_str(&mut r, "PartialResult.failed")?,
        queue_wait: Duration::from_nanos(r.get_u64("PartialResult.queue_wait_ns")?),
        active: Duration::from_nanos(r.get_u64("PartialResult.active_ns")?),
    };
    if r.remaining() != 0 {
        return Err(WireError::Invalid(format!(
            "{} trailing bytes after snapshot",
            r.remaining()
        )));
    }
    Ok(p)
}

/// Encodes a final [`JobResult`] for the client wire.
pub fn encode_job_result(res: &JobResult) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_str(&res.name);
    w.put_u64(res.shots);
    put_histogram(&mut w, &res.histogram);
    put_run_stats(&mut w, &res.stats);
    put_f64_vec(&mut w, &res.mean_prob1);
    w.put_u64(res.latencies_ns.len() as u64);
    for &d in &res.latencies_ns {
        w.put_u64(d);
    }
    put_latency_stats(&mut w, &res.latency);
    put_duration_ns(&mut w, res.elapsed);
    w.put_f64(res.shots_per_sec);
    w.put_u64(res.non_halted);
    match &res.first_failure {
        None => w.put_u8(0),
        Some((shot, message)) => {
            w.put_u8(1);
            w.put_u64(*shot);
            w.put_str(message);
        }
    }
    w.into_bytes()
}

/// Decodes a [`JobResult`] produced by [`encode_job_result`]. The
/// absolute wall-clock window (an `Instant` pair, meaningless off the
/// producing host) does not cross the wire.
pub fn decode_job_result(bytes: &[u8]) -> Result<JobResult, WireError> {
    let mut r = Reader::new(bytes);
    let name = r.get_str("JobResult.name")?;
    let shots = r.get_u64("JobResult.shots")?;
    let histogram = get_histogram(&mut r)?;
    let stats = get_run_stats(&mut r)?;
    let mean_prob1 = get_f64_vec(&mut r, "JobResult.mean_prob1")?;
    let n = r.get_u64("JobResult.latencies_len")? as usize;
    if n.saturating_mul(8) > r.remaining() {
        return Err(WireError::Truncated {
            what: "JobResult.latencies_ns",
            needed: n * 8,
            have: r.remaining(),
        });
    }
    let mut latencies_ns = Vec::with_capacity(n);
    for _ in 0..n {
        latencies_ns.push(r.get_u64("JobResult.latency_ns")?);
    }
    let latency = get_latency_stats(&mut r)?;
    let elapsed = Duration::from_nanos(r.get_u64("JobResult.elapsed_ns")?);
    let shots_per_sec = r.get_f64("JobResult.shots_per_sec")?;
    let non_halted = r.get_u64("JobResult.non_halted")?;
    let first_failure = match r.get_u8("JobResult.first_failure")? {
        0 => None,
        1 => Some((
            r.get_u64("JobResult.failure_shot")?,
            r.get_str("JobResult.failure_message")?,
        )),
        tag => {
            return Err(WireError::UnknownTag {
                what: "JobResult.first_failure",
                tag,
            })
        }
    };
    if r.remaining() != 0 {
        return Err(WireError::Invalid(format!(
            "{} trailing bytes after job result",
            r.remaining()
        )));
    }
    Ok(JobResult {
        name,
        shots,
        histogram,
        stats,
        mean_prob1,
        latencies_ns,
        latency,
        elapsed,
        shots_per_sec,
        window: None,
        non_halted,
        first_failure,
    })
}

fn put_workload_kind(w: &mut Writer, kind: &WorkloadKind) {
    match kind {
        WorkloadKind::Rabi {
            amplitudes,
            amplitude_index,
        } => {
            w.put_u8(0);
            put_f64_vec(w, amplitudes);
            w.put_u64(*amplitude_index as u64);
        }
        WorkloadKind::AllXy { round, init_cycles } => {
            w.put_u8(1);
            w.put_u64(*round as u64);
            w.put_u32(*init_cycles);
        }
        WorkloadKind::Rb {
            k,
            interval_cycles,
            sequence_seed,
        } => {
            w.put_u8(2);
            w.put_u64(*k as u64);
            w.put_u32(*interval_cycles);
            w.put_u64(*sequence_seed);
        }
        WorkloadKind::ActiveReset { init_cycles } => {
            w.put_u8(3);
            w.put_u32(*init_cycles);
        }
        WorkloadKind::Source { text } => {
            w.put_u8(4);
            w.put_str(text);
        }
        // Tag 5 is a v5 capability: senders gate on the negotiated
        // version (see `PROTOCOL_VERSION`).
        WorkloadKind::CliffordChain { qubits, layers } => {
            w.put_u8(5);
            w.put_u64(*qubits as u64);
            w.put_u32(*layers);
        }
    }
}

fn get_workload_kind(r: &mut Reader<'_>) -> Result<WorkloadKind, WireError> {
    Ok(match r.get_u8("WorkloadKind")? {
        0 => WorkloadKind::Rabi {
            amplitudes: get_f64_vec(r, "Rabi.amplitudes")?,
            amplitude_index: r.get_u64("Rabi.amplitude_index")? as usize,
        },
        1 => WorkloadKind::AllXy {
            round: r.get_u64("AllXy.round")? as usize,
            init_cycles: r.get_u32("AllXy.init_cycles")?,
        },
        2 => WorkloadKind::Rb {
            k: r.get_u64("Rb.k")? as usize,
            interval_cycles: r.get_u32("Rb.interval_cycles")?,
            sequence_seed: r.get_u64("Rb.sequence_seed")?,
        },
        3 => WorkloadKind::ActiveReset {
            init_cycles: r.get_u32("ActiveReset.init_cycles")?,
        },
        4 => WorkloadKind::Source {
            text: r.get_str("Source.text")?,
        },
        5 => WorkloadKind::CliffordChain {
            qubits: r.get_u64("CliffordChain.qubits")? as usize,
            layers: r.get_u32("CliffordChain.layers")?,
        },
        tag => {
            return Err(WireError::UnknownTag {
                what: "WorkloadKind",
                tag,
            })
        }
    })
}

fn put_workload_spec(w: &mut Writer, spec: &WorkloadSpec) {
    w.put_str(&spec.name);
    put_workload_kind(w, &spec.kind);
    w.put_u64(spec.shots);
    w.put_u32(spec.weight);
    w.put_u64(spec.base_seed);
    put_sim_config(w, &spec.config);
}

fn get_workload_spec(r: &mut Reader<'_>) -> Result<WorkloadSpec, WireError> {
    Ok(WorkloadSpec {
        name: r.get_str("WorkloadSpec.name")?,
        kind: get_workload_kind(r)?,
        shots: r.get_u64("WorkloadSpec.shots")?,
        weight: r.get_u32("WorkloadSpec.weight")?,
        base_seed: r.get_u64("WorkloadSpec.base_seed")?,
        config: get_sim_config(r)?,
    })
}

/// Encodes a tenant-tagged [`Submission`] for the serve front door —
/// a prebuilt job or a declarative workload spec, exactly the same
/// two shapes the in-process `JobQueue::submit` accepts.
pub fn encode_submission(submission: &Submission) -> Result<Vec<u8>, WireError> {
    let mut w = Writer::new();
    w.put_str(submission.tenant().as_str());
    match submission.work() {
        Work::Job(job) => {
            w.put_u8(0);
            let bytes = encode_job(job)?;
            w.put_bytes(&bytes);
        }
        Work::Spec(spec) => {
            w.put_u8(1);
            put_workload_spec(&mut w, spec);
        }
    }
    Ok(w.into_bytes())
}

/// Decodes a [`Submission`] produced by [`encode_submission`].
pub fn decode_submission(bytes: &[u8]) -> Result<Submission, WireError> {
    let mut r = Reader::new(bytes);
    let tenant = TenantId::new(r.get_str("Submission.tenant")?);
    let submission = match r.get_u8("Submission.work")? {
        0 => {
            let job_bytes = r.get_bytes("Submission.job_bytes")?;
            Submission::job(tenant, decode_job(&job_bytes)?)
        }
        1 => Submission::workload(tenant, get_workload_spec(&mut r)?),
        tag => {
            return Err(WireError::UnknownTag {
                what: "Submission.work",
                tag,
            })
        }
    };
    if r.remaining() != 0 {
        return Err(WireError::Invalid(format!(
            "{} trailing bytes after submission",
            r.remaining()
        )));
    }
    Ok(submission)
}

/// Identity of one job a remote submission expanded to, echoed in a
/// [`SubmitAck`]. The id is the coordinator's handle for later
/// `POLL`/`SUBSCRIBE` requests — global to the serve acceptor, so a
/// job submitted on one connection can be watched from another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteJobInfo {
    /// The coordinator-assigned job id.
    pub job_id: u64,
    /// The job's display name.
    pub name: String,
    /// Total shots the job was submitted with.
    pub shots: u64,
}

/// Acknowledges a `SUBMIT`: one entry per job the submission expanded
/// to (one for a prebuilt job, `weight` instances for a spec).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubmitAck {
    /// The jobs now queued, in expansion order.
    pub jobs: Vec<RemoteJobInfo>,
}

impl SubmitAck {
    /// Encodes the acknowledgement payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u32(self.jobs.len() as u32);
        for job in &self.jobs {
            w.put_u64(job.job_id);
            w.put_str(&job.name);
            w.put_u64(job.shots);
        }
        w.into_bytes()
    }

    /// Decodes an acknowledgement payload.
    pub fn decode(bytes: &[u8]) -> Result<SubmitAck, WireError> {
        let mut r = Reader::new(bytes);
        let n = r.get_count("SubmitAck.jobs", 20)?;
        let mut jobs = Vec::with_capacity(n);
        for _ in 0..n {
            jobs.push(RemoteJobInfo {
                job_id: r.get_u64("RemoteJobInfo.job_id")?,
                name: r.get_str("RemoteJobInfo.name")?,
                shots: r.get_u64("RemoteJobInfo.shots")?,
            });
        }
        Ok(SubmitAck { jobs })
    }
}

/// Encodes the 8-byte job-id payload of a `POLL` or `SUBSCRIBE`.
pub fn encode_job_id(job_id: u64) -> Vec<u8> {
    job_id.to_le_bytes().to_vec()
}

/// Decodes the job-id payload of a `POLL` or `SUBSCRIBE`.
pub fn decode_job_id(bytes: &[u8]) -> Result<u64, WireError> {
    let mut r = Reader::new(bytes);
    let id = r.get_u64("job_id")?;
    if r.remaining() != 0 {
        return Err(WireError::Invalid(format!(
            "{} trailing bytes after job id",
            r.remaining()
        )));
    }
    Ok(id)
}

/// A `SUBSCRIBE` request: which job to stream, and — when resuming a
/// dropped subscription (v4) — the last snapshot prefix the client
/// already folded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Subscribe {
    /// The coordinator-assigned job id.
    pub job_id: u64,
    /// `Some(n)`: the client has already folded the snapshot with
    /// `batches_done == n`; the server replays only snapshots strictly
    /// past it (the final done-snapshot and `RESULT` always flow).
    /// `None`: a fresh subscription — every snapshot flows.
    pub resume_after: Option<u64>,
}

/// Encodes a `SUBSCRIBE` payload. Without a resume point this is the
/// v3-identical bare 8-byte job id; with one it is the 16-byte v4 form
/// (job id, then last-folded `batches_done`), which only a ≥ v4 server
/// accepts — the client gates on the negotiated version.
pub fn encode_subscribe(sub: &Subscribe) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(sub.job_id);
    if let Some(after) = sub.resume_after {
        w.put_u64(after);
    }
    w.into_bytes()
}

/// Decodes a `SUBSCRIBE` payload, accepting both the 8-byte v3 form
/// and the 16-byte v4 resume form.
pub fn decode_subscribe(bytes: &[u8]) -> Result<Subscribe, WireError> {
    let mut r = Reader::new(bytes);
    let job_id = r.get_u64("Subscribe.job_id")?;
    let resume_after = if r.remaining() != 0 {
        Some(r.get_u64("Subscribe.resume_after")?)
    } else {
        None
    };
    if r.remaining() != 0 {
        return Err(WireError::Invalid(format!(
            "{} trailing bytes after subscribe",
            r.remaining()
        )));
    }
    Ok(Subscribe {
        job_id,
        resume_after,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_job() -> Job {
        let inst = Instantiation::paper_two_qubit();
        let program = vec![
            Instruction::Smis {
                sd: SReg::new(2),
                mask: 0b100,
            },
            Instruction::QWait { cycles: 100 },
            Instruction::Stop,
        ];
        Job::new("wire-sample", inst, program)
            .with_shots(32)
            .with_seed(7)
    }

    #[test]
    fn job_roundtrip_is_exact() {
        let job = sample_job();
        let bytes = encode_job(&job).expect("encodes");
        let back = decode_job(&bytes).expect("decodes");
        assert_eq!(job, back);
        // Canonical: re-encoding the decoded job yields the same bytes.
        assert_eq!(bytes, encode_job(&back).expect("re-encodes"));
    }

    #[test]
    fn surface7_instantiation_roundtrips() {
        let job = Job::new(
            "s7",
            Instantiation::paper(),
            vec![Instruction::Nop, Instruction::Stop],
        );
        let back = decode_job(&encode_job(&job).unwrap()).unwrap();
        assert_eq!(job.inst, back.inst);
        assert_eq!(back.inst.topology().num_pairs(), 16);
        assert!(back.inst.ops().contains("MEASZ"));
        assert!(back.inst.ops().by_name("C_X").is_ok());
    }

    #[test]
    fn truncated_job_reports_typed_error() {
        let bytes = encode_job(&sample_job()).unwrap();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_job(&bytes[..cut]).expect_err("must fail");
            assert!(
                matches!(err, WireError::Truncated { .. } | WireError::Invalid(_)),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_job(&sample_job()).unwrap();
        bytes.push(0xff);
        assert!(matches!(decode_job(&bytes), Err(WireError::Invalid(_))));
    }

    #[test]
    fn hello_magic_and_version() {
        let hello = Hello {
            version: PROTOCOL_VERSION,
        };
        let decoded = Hello::decode(&hello.encode()).unwrap();
        assert_eq!(decoded, hello);

        let mut corrupt = hello.encode();
        corrupt[0] = b'X';
        assert!(matches!(
            Hello::decode(&corrupt),
            Err(WireError::BadMagic { .. })
        ));
    }

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, tag::PING, b"abc").unwrap();
        let (t, payload) = read_frame(&mut buf.as_slice()).unwrap();
        assert_eq!(t, tag::PING);
        assert_eq!(payload, b"abc");
    }

    #[test]
    fn oversized_frame_length_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            read_frame(&mut buf.as_slice()),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn corrupt_count_prefix_cannot_overallocate() {
        // A histogram claiming u32::MAX entries in a 30-byte payload
        // must fail on the count check, not try to allocate.
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        w.put_u64(1);
        let err = get_histogram(&mut Reader::new(&w.into_bytes())).expect_err("rejects");
        assert!(matches!(err, WireError::Truncated { .. }), "{err}");
    }

    #[test]
    fn varint_roundtrips_across_widths() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut slice = buf.as_slice();
            assert_eq!(get_varint(&mut slice, "t").unwrap(), v);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn compression_roundtrips_and_shrinks_job_bytes() {
        let bytes = encode_job(&sample_job()).unwrap();
        let packed = compress(&bytes);
        assert_eq!(decompress(&packed).unwrap(), bytes);
        // The fixed-width job encoding is mostly zero runs; the codec
        // must actually pay for itself on it.
        assert!(
            packed.len() < bytes.len(),
            "{} >= {}",
            packed.len(),
            bytes.len()
        );
        // Empty and tiny inputs roundtrip too.
        assert_eq!(decompress(&compress(&[])).unwrap(), Vec::<u8>::new());
        assert_eq!(decompress(&compress(&[7])).unwrap(), vec![7]);
    }

    #[test]
    fn decompress_rejects_malformed_payloads_typed() {
        let packed = compress(&[1, 2, 3, 4, 5, 5, 5, 5, 5, 5, 6]);
        // Truncation at every prefix length is a typed error, never a
        // panic (the full payload is the only valid prefix).
        for cut in 0..packed.len() {
            assert!(decompress(&packed[..cut]).is_err(), "cut at {cut}");
        }
        // Trailing garbage is rejected.
        let mut padded = packed.clone();
        padded.push(0);
        assert!(decompress(&padded).is_err());
        // A declared length over the frame cap must not allocate.
        let mut huge = Vec::new();
        put_varint(&mut huge, u64::MAX);
        assert!(matches!(
            decompress(&huge),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn load_job_auto_compression_flags_and_roundtrips() {
        let bytes = encode_job(&sample_job()).unwrap();
        let payload = LoadJob::encode_parts_auto(42, &bytes);
        // Compressible job bytes must ship flagged and smaller.
        let raw_id = u64::from_le_bytes(payload[..8].try_into().unwrap());
        assert_ne!(raw_id & COMPRESSED_JOB_ID_FLAG, 0);
        assert!(payload.len() < LoadJob::encode_parts(42, &bytes).len());
        let back = LoadJob::decode(&payload).unwrap();
        assert_eq!(back.job_id, 42);
        assert_eq!(back.job_bytes, bytes);
        // Incompressible bytes ship plain — no flag, no blowup.
        let noise: Vec<u8> = (0..97u32)
            .map(|i| (i.wrapping_mul(151) >> 3) as u8)
            .collect();
        let plain = LoadJob::encode_parts_auto(7, &noise);
        let raw_id = u64::from_le_bytes(plain[..8].try_into().unwrap());
        assert_eq!(raw_id & COMPRESSED_JOB_ID_FLAG, 0);
        assert_eq!(plain, LoadJob::encode_parts(7, &noise));
        let back = LoadJob::decode(&plain).unwrap();
        assert_eq!((back.job_id, back.job_bytes), (7, noise));
    }
}
