//! The transport-agnostic execution API: [`ExecBackend`] runs one
//! contiguous shot range of a [`Job`] and returns the deterministic
//! [`BatchOut`] roll-up, whether the shots ran on this host
//! ([`LocalBackend`]) or across a socket ([`crate::RemoteBackend`]).
//!
//! ## Why a trait, and why this shape
//!
//! Everything above this layer — the [`crate::ShotEngine`] merge, the
//! [`crate::serve::JobQueue`] scheduler, the streaming
//! [`crate::PartialResult`] prefixes — already treats a batch as a
//! pure function of `(job, range)` and folds results in batch-index
//! order. That makes "where did the batch run" invisible to every
//! determinism guarantee: a coordinator can mix local threads and
//! remote workers freely, and the folded aggregates stay bit-identical
//! to a serial run, because each [`BatchOut`] is bit-identical no
//! matter which backend produced it (seeds derive from the job, `f64`
//! sums fold inside the batch in shot order, and the wire encodes
//! `f64`s by bit pattern).
//!
//! The trait is deliberately synchronous and `&mut self`: one backend
//! value is one execution *slot* (a worker thread, one socket to a
//! remote daemon), and a pool is simply `Vec<Box<dyn ExecBackend>>` —
//! concurrency lives in the pool, not in every implementation.
//!
//! Pool *membership* lives above the trait too: the serve queue's
//! slot lifecycle ([`crate::serve::SlotState`]) attaches, drains and
//! retires backends around a running job
//! ([`crate::serve::JobQueue::attach_backend`] /
//! [`detach_backend`](crate::serve::JobQueue::detach_backend)), and
//! the [`crate::PoolSupervisor`] feeds it reconnected workers — a
//! backend implementation only ever sees `run_range` calls and never
//! needs to know it is being rotated in or out.

use std::ops::Range;

use eqasm_microarch::{QuMa, RunStats};

use crate::aggregate::Histogram;
use crate::engine::{build_machine, run_batch};
use crate::error::RuntimeError;
use crate::job::Job;

/// What one backend produced for one contiguous shot range.
///
/// Everything in here except `durations_ns` and `elapsed_ns` is a
/// **deterministic** pure function of `(job, range)`: histogram,
/// machine counters, per-qubit `P(|1⟩)` sums (folded in shot order
/// within the batch) and failure info. The duration fields are
/// measured wall-clock — they vary run to run and host to host, but
/// `durations_ns.len()` always equals the range length, which the
/// fold relies on for `shots_done` accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchOut {
    /// Outcome counts over the range.
    pub histogram: Histogram,
    /// Machine counters summed over the range.
    pub stats: RunStats,
    /// Per-qubit sum of post-run `P(|1⟩)` over the range, in shot
    /// order.
    pub prob1_sum: Vec<f64>,
    /// Per-shot wall-clock durations, in shot order (length == range
    /// length).
    pub durations_ns: Vec<u64>,
    /// Shots that did not halt cleanly.
    pub non_halted: u64,
    /// Shot index and status of the first failure, if any.
    pub first_failure: Option<(u64, String)>,
    /// Wall-clock spent executing the range on the producing backend,
    /// nanoseconds. On remote backends this excludes transport time.
    pub elapsed_ns: u64,
}

impl BatchOut {
    /// Shots this batch covered.
    pub fn shots(&self) -> u64 {
        self.durations_ns.len() as u64
    }
}

/// Where a backend executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendKind {
    /// Shots run in this process on a dedicated machine instance.
    Local,
    /// Shots run on a remote worker daemon over the wire protocol.
    Remote {
        /// The worker's address (`host:port`).
        addr: String,
        /// The negotiated protocol version.
        protocol: u16,
    },
}

/// Identity and capacity metadata of a backend, for scheduling
/// decisions and diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendDescriptor {
    /// Human-readable backend name (worker-reported for remotes).
    pub name: String,
    /// Local or remote, with transport details.
    pub kind: BackendKind,
    /// How many of these the peer is willing to serve concurrently
    /// (always 1 for a local slot; a remote worker advertises its
    /// capacity in the handshake).
    pub slots: usize,
}

impl std::fmt::Display for BackendDescriptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            BackendKind::Local => write!(f, "{} (local)", self.name),
            BackendKind::Remote { addr, protocol } => {
                write!(f, "{} (remote {addr}, wire v{protocol})", self.name)
            }
        }
    }
}

/// One execution slot that can run contiguous shot ranges of jobs.
///
/// # Contract
///
/// * `run_range(job, a..b)` returns the [`BatchOut`] of running shots
///   `a..b` of `job` — deterministic fields bit-identical to any other
///   backend running the same range of the same job.
/// * A failed call leaves the backend reusable: the caller may retry
///   the same or another range on it, or re-dispatch the range to a
///   different backend. Implementations must not return partially
///   folded results.
/// * Errors split by [`RuntimeError::is_transport`]: transport errors
///   mean "this backend (connection) is unhealthy, the range is fine";
///   anything else means the range itself cannot run (bad program) and
///   retrying elsewhere would fail identically.
pub trait ExecBackend: Send {
    /// Identity/capacity metadata.
    fn descriptor(&self) -> BackendDescriptor;

    /// Runs shots `range` of `job`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::Load`] (or a remote-reported equivalent) when
    /// the program fails machine validation;
    /// [`RuntimeError::Transport`] when the backend itself failed.
    fn run_range(&mut self, job: &Job, range: Range<u64>) -> Result<BatchOut, RuntimeError>;
}

/// The in-process backend: one cached machine driven on the calling
/// thread — [`crate::ShotEngine`]'s per-worker execution path behind
/// the [`ExecBackend`] API.
///
/// The machine is rebuilt only when the job changes (compared
/// structurally, so interleaved batches of the same job reuse one
/// load + validation).
pub struct LocalBackend {
    name: String,
    cached: Option<(Job, QuMa)>,
}

impl LocalBackend {
    /// A local backend named after its slot index.
    pub fn new(slot: usize) -> Self {
        LocalBackend {
            name: format!("local-{slot}"),
            cached: None,
        }
    }

    /// A local backend with an explicit name.
    pub fn named(name: impl Into<String>) -> Self {
        LocalBackend {
            name: name.into(),
            cached: None,
        }
    }
}

impl std::fmt::Debug for LocalBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalBackend")
            .field("name", &self.name)
            .field("cached_job", &self.cached.as_ref().map(|(j, _)| &j.name))
            .finish()
    }
}

impl ExecBackend for LocalBackend {
    fn descriptor(&self) -> BackendDescriptor {
        BackendDescriptor {
            name: self.name.clone(),
            kind: BackendKind::Local,
            slots: 1,
        }
    }

    fn run_range(&mut self, job: &Job, range: Range<u64>) -> Result<BatchOut, RuntimeError> {
        if !matches!(&self.cached, Some((cached, _)) if cached == job) {
            let machine = build_machine(job).map_err(|source| RuntimeError::Load {
                job: job.name.clone(),
                source,
            })?;
            self.cached = Some((job.clone(), machine));
        }
        let machine = &mut self.cached.as_mut().expect("just cached").1;
        Ok(run_batch(machine, job, range))
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::ShotEngine;

    fn tiny_job(shots: u64) -> Job {
        let (inst, program) = crate::WorkloadKind::ActiveReset { init_cycles: 20 }
            .build()
            .expect("builds");
        Job::new("backend-test", inst, program)
            .with_shots(shots)
            .with_seed(3)
    }

    #[test]
    fn local_backend_matches_engine() {
        let job = tiny_job(24);
        let mut backend = LocalBackend::new(0);
        // Run the three 8-shot ranges and fold by hand.
        let mut histogram = Histogram::new();
        let mut stats = RunStats::default();
        for start in [0u64, 8, 16] {
            let out = backend.run_range(&job, start..start + 8).expect("runs");
            assert_eq!(out.shots(), 8);
            histogram.merge(&out.histogram);
            stats.merge(&out.stats);
        }
        let reference = ShotEngine::serial()
            .with_batch_size(8)
            .run_job(&job)
            .expect("engine runs");
        assert_eq!(histogram, reference.histogram);
        assert_eq!(stats, reference.stats);
    }

    #[test]
    fn local_backend_reuses_machine_across_ranges() {
        let job = tiny_job(16);
        let mut backend = LocalBackend::new(0);
        backend.run_range(&job, 0..8).expect("runs");
        assert!(backend.cached.is_some());
        // Same job: the cache key (structural equality) holds.
        backend.run_range(&job, 8..16).expect("runs");
        // A different job (different seed) rebuilds.
        let other = tiny_job(16).with_seed(99);
        backend.run_range(&other, 0..8).expect("runs");
        assert_eq!(backend.cached.as_ref().unwrap().0.base_seed, 99);
    }

    #[test]
    fn local_backend_reports_load_errors() {
        let err = LocalBackend::new(0)
            .run_range(&unloadable_job(), 0..1)
            .expect_err("fails");
        assert!(matches!(err, RuntimeError::Load { .. }), "{err}");
        assert!(!err.is_transport());
    }

    /// A job whose program fails machine validation: a bundle
    /// referencing an opcode the instantiation never configured.
    pub(crate) fn unloadable_job() -> Job {
        let inst = eqasm_core::Instantiation::paper_two_qubit();
        let bundle = eqasm_core::Bundle::new(vec![eqasm_core::BundleOp::single(
            eqasm_core::QOpcode::new(500),
            eqasm_core::SReg::new(0),
        )]);
        Job::new("bad", inst, vec![eqasm_core::Instruction::Bundle(bundle)])
    }

    #[test]
    fn descriptor_identifies_local_slot() {
        let d = LocalBackend::new(3).descriptor();
        assert_eq!(d.name, "local-3");
        assert_eq!(d.kind, BackendKind::Local);
        assert_eq!(d.slots, 1);
        assert!(d.to_string().contains("local"));
    }
}
