//! Program-aware execution paths, pinned at the runtime layer.
//!
//! Three contracts from `eqasm_microarch::select` must survive the trip
//! through the engine's batch scheduler and the global prefix cache:
//!
//! 1. **Stabilizer exactness** — a Clifford-only program under ideal
//!    noise produces bit-identical aggregates whether `Auto` routes it
//!    to the stabilizer tableau or `Dense` forces the legacy dense
//!    path (which also disables prefix forking, so this doubles as the
//!    end-to-end fork-vs-replay pin).
//! 2. **Noisy agreement in distribution** — under depolarizing gate
//!    error the stabilizer (sampled Paulis), pure-state (trajectory)
//!    and density-matrix (exact channel) backends agree statistically.
//! 3. **Fork ≡ replay** — shared-prefix forking through the engine is
//!    bit-identical to hand-rolled serial `run_shot` replays, at every
//!    worker count, and the snapshot it forks from is seed-independent
//!    (property-tested).

use eqasm_asm::assemble;
use eqasm_core::{Instantiation, Qubit};
use eqasm_microarch::{BackendSelect, QuMa, RunStats, SimBackendKind, SimConfig};
use eqasm_quantum::NoiseModel;
use eqasm_runtime::{BitString, Histogram, Job, ShotEngine};
use proptest::prelude::*;

/// A Clifford-only two-qubit program with genuinely random outcomes
/// (H and X90 put both measured qubits in equal superposition), so a
/// backend-selection or forking bug cannot hide behind a deterministic
/// histogram.
const CLIFFORD_PROGRAM: &str = "SMIS S0, {0}
SMIS S1, {1}
SMIT T0, {(0, 2)}
QWAIT 100
H S0
CZ T0
X90 S1
MEASZ S0
MEASZ S1
QWAIT 50
STOP";

/// A single-qubit program whose ideal outcome is deterministically 0
/// (four X gates compose to identity), so any depolarizing-noise
/// disagreement between backends shows up directly in `P(1)`.
const NOISY_PROGRAM: &str = "SMIS S0, {0}
QWAIT 100
X S0
X S0
X S0
X S0
MEASZ S0
QWAIT 50
STOP";

fn clifford_job(shots: u64, base_seed: u64, config: SimConfig) -> Job {
    let inst = Instantiation::paper_two_qubit();
    let program = assemble(CLIFFORD_PROGRAM, &inst).expect("assembles");
    Job::new("clifford", inst, program.instructions().to_vec())
        .with_config(config)
        .with_shots(shots)
        .with_seed(base_seed)
}

fn noisy_job(shots: u64, base_seed: u64, backend: BackendSelect) -> Job {
    let inst = Instantiation::paper_two_qubit();
    let program = assemble(NOISY_PROGRAM, &inst).expect("assembles");
    let mut config =
        SimConfig::default().with_noise(NoiseModel::ideal().with_gate_error(0.06, 0.0));
    config.backend = backend;
    Job::new("noisy", inst, program.instructions().to_vec())
        .with_config(config)
        .with_shots(shots)
        .with_seed(base_seed)
}

/// The selection a loaded machine would make for `job`.
fn selection_kind(job: &Job) -> SimBackendKind {
    let mut m = QuMa::new(job.inst.clone(), job.config.clone());
    m.load(&job.program).expect("loads");
    m.selection().kind()
}

/// Serial full-replay reference: every shot through `run_shot` on one
/// machine, no forking anywhere — the ground truth the engine's fork
/// path must reproduce bit for bit. Mirrors the engine's
/// `EQASM_EXEC_PATH` override so the CI execution-path legs compare
/// like against like.
fn serial_replays(job: &Job) -> (Histogram, RunStats) {
    let mut config = job.config.clone();
    config.record_trace = false;
    match std::env::var("EQASM_EXEC_PATH").as_deref() {
        Ok(v) if v.eq_ignore_ascii_case("dense") => config.backend = BackendSelect::Dense,
        Ok(v) if v.eq_ignore_ascii_case("auto") => config.backend = BackendSelect::Auto,
        _ => {}
    }
    let mut m = QuMa::new(job.inst.clone(), config);
    m.load(&job.program).expect("loads");
    let n = job.inst.topology().num_qubits();
    let mut hist = Histogram::new();
    let mut stats = RunStats::default();
    for shot in 0..job.shots {
        let r = m.run_shot(job.shot_seed(shot));
        assert!(r.status.is_halted(), "reference shot must halt");
        stats.merge(&r.stats);
        let mut outcome = BitString::EMPTY;
        for q in 0..n {
            if let Some(v) = m.measurement_value(Qubit::new(q as u8)) {
                outcome.set(q, v);
            }
        }
        hist.record(outcome);
    }
    (hist, stats)
}

#[test]
fn auto_routes_ideal_clifford_to_stabilizer() {
    let auto = clifford_job(1, 0, SimConfig::default());
    assert_eq!(selection_kind(&auto), SimBackendKind::Stabilizer);
    let dense = clifford_job(
        1,
        0,
        SimConfig::default().with_backend(BackendSelect::Dense),
    );
    assert_eq!(selection_kind(&dense), SimBackendKind::Density);
    // Depolarizing noise pushes Auto off the stabilizer (it would no
    // longer be exact) onto the dense rule.
    assert_eq!(
        selection_kind(&noisy_job(1, 0, BackendSelect::Auto)),
        SimBackendKind::Density
    );
}

#[test]
fn stabilizer_matches_dense_bit_for_bit_when_noiseless() {
    // Auto → stabilizer + prefix forking; Dense → density matrix, no
    // forking. Identical aggregates pin both the backend-switch
    // exactness argument and fork-vs-replay, end to end.
    let auto = clifford_job(256, 42, SimConfig::default());
    let dense = clifford_job(
        256,
        42,
        SimConfig::default().with_backend(BackendSelect::Dense),
    );
    let engine = ShotEngine::new(4);
    let a = engine.run_job(&auto).expect("runs");
    let d = engine.run_job(&dense).expect("runs");
    assert_eq!(
        a.histogram, d.histogram,
        "outcome bits must not depend on the backend"
    );
    assert_eq!(a.stats, d.stats);
    assert_eq!(
        a.mean_prob1, d.mean_prob1,
        "P(1) roll-up must be bit-identical"
    );
    assert_eq!(a.non_halted, 0);
    // And the outcomes are genuinely random — the pin is not vacuous.
    assert!(
        a.histogram.len() >= 4,
        "H/X90 superpositions explore all four outcomes"
    );
}

#[test]
fn noisy_backends_agree_in_distribution() {
    // Four depolarizing X gates on |0⟩: exact-channel, trajectory and
    // sampled-Pauli stabilizer simulations must land on the same P(1)
    // up to sampling error (4096 shots ⇒ σ ≈ 0.006; tolerance 0.03).
    let shots = 4096;
    let engine = ShotEngine::new(4);
    let mut p1 = Vec::new();
    for backend in [
        BackendSelect::Stabilizer,
        BackendSelect::Pure,
        BackendSelect::Density,
    ] {
        let job = noisy_job(shots, 7, backend);
        let r = engine.run_job(&job).expect("runs");
        let p = r.histogram.ones_fraction(0).expect("qubit 0 measured");
        p1.push((backend, p));
    }
    for (b, p) in &p1 {
        assert!(
            *p > 0.02,
            "{b:?}: depolarizing noise must lift P(1) off zero, got {p}"
        );
    }
    for w in p1.windows(2) {
        let ((b0, p0), (b1, p1)) = (&w[0], &w[1]);
        assert!(
            (p0 - p1).abs() < 0.03,
            "{b0:?} vs {b1:?}: P(1) diverged ({p0} vs {p1})"
        );
    }
}

#[test]
fn fork_path_is_bit_identical_to_full_replays_at_every_worker_count() {
    // One prefix-eligible job per regime: ideal Clifford (stabilizer,
    // boundary at the first measurement) and depolarizing trajectory
    // (pure state, boundary at the first noisy gate).
    let ideal = clifford_job(192, 1234, SimConfig::default());
    let noisy = noisy_job(192, 99, BackendSelect::Pure);
    for job in [&ideal, &noisy] {
        // The fork path must actually engage for this pin to mean
        // anything: the job is prefix-eligible and not forced dense.
        let mut m = QuMa::new(job.inst.clone(), job.config.clone());
        m.load(&job.program).expect("loads");
        assert!(
            m.selection().prefix_eligible(),
            "{}: must be eligible",
            job.name
        );
        assert!(
            m.selection().prefix_boundary().is_some(),
            "{}: must have a stochastic suffix",
            job.name
        );
        assert!(m.run_prefix(job.base_seed).is_some());

        let (ref_hist, ref_stats) = serial_replays(job);
        for workers in [1usize, 2, 8] {
            let r = ShotEngine::new(workers).run_job(job).expect("runs");
            assert_eq!(
                ref_hist, r.histogram,
                "{}: fork path diverged from full replays at {workers} workers",
                job.name
            );
            assert_eq!(
                ref_stats, r.stats,
                "{}: stats diverged at {workers} workers",
                job.name
            );
            assert_eq!(r.non_halted, 0);
        }
    }
}

#[test]
fn forced_dense_policy_replays_identically() {
    // `Dense` disables forking in the runtime; results still match the
    // serial reference (trivially — same path — but this pins that the
    // legacy escape hatch stays wired through the engine).
    let job = clifford_job(
        96,
        5,
        SimConfig::default().with_backend(BackendSelect::Dense),
    );
    let (ref_hist, ref_stats) = serial_replays(&job);
    let r = ShotEngine::new(2).run_job(&job).expect("runs");
    assert_eq!(ref_hist, r.histogram);
    assert_eq!(ref_stats, r.stats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The prefix snapshot is a pure function of the job shape: two
    /// machines running the prefix under arbitrary different seeds
    /// produce equal snapshots. This is the fact that makes the global
    /// prefix cache sound (its key deliberately zeroes the seed).
    #[test]
    fn prefix_snapshot_is_seed_independent(a in any::<u64>(), b in any::<u64>()) {
        let job = clifford_job(1, 0, SimConfig::default());
        let mut m = QuMa::new(job.inst.clone(), job.config.clone());
        m.load(&job.program).expect("loads");
        let sa = m.run_prefix(a);
        let sb = m.run_prefix(b);
        prop_assert!(sa.is_some(), "ideal Clifford program must be prefix-eligible");
        prop_assert_eq!(sa, sb, "prefix snapshot must not depend on the seed");
    }
}
