//! Integration tests for the load generator: `/metrics` scraping that
//! survives a mid-scrape coordinator restart, a tiny two-rung
//! capacity sweep against an in-process `spawn_serve` coordinator
//! (asserting the `capacity` JSON schema), a short subscriber-churn
//! sweep, and end-to-end coverage of the v5 `CliffordChain` workload
//! (wire roundtrip, stabilizer selection above the dense ceiling, and
//! the client-side version gate).
//!
//! Note on metrics: every in-process server here shares the
//! process-global default registry, and the test harness runs tests
//! concurrently — so server-side assertions are existence/positivity
//! checks, not exact totals. The CI capacity-sweep smoke leg runs a
//! *dedicated* serve process and asserts exact shot accounting there.

use std::io::{Read as _, Write as _};
use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use eqasm_microarch::{QuMa, SimBackendKind};
use eqasm_runtime::loadgen::{scrape_metrics, scrape_with_retry, RpsStep, StopCause};
use eqasm_runtime::serve::{JobQueue, ServeConfig, Submission};
use eqasm_runtime::{
    capacity_sweep, churn_sweep, spawn_serve, wire, Ceilings, ChurnConfig, Client, ConnectOptions,
    LoadClass, LoadSpec, ServeHandle, ServeNetConfig, ShotsDist, SweepConfig, SweepTarget,
    WorkloadKind, WorkloadSpec,
};

/// A queue with `workers` local slots behind a loopback acceptor.
fn serve_fixture(workers: usize, batch: u64) -> (Arc<JobQueue>, ServeHandle) {
    let queue = Arc::new(JobQueue::new(
        ServeConfig::default()
            .with_workers(workers)
            .with_batch_size(batch),
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle =
        spawn_serve(listener, Arc::clone(&queue), ServeNetConfig::default()).expect("spawn serve");
    (queue, handle)
}

/// A cheap one-qubit RB template — fast enough that sweep rungs
/// complete well inside their drain window on any CI machine.
fn rb_spec(shots: u64) -> WorkloadSpec {
    WorkloadSpec::new(
        "rb",
        WorkloadKind::Rb {
            k: 4,
            interval_cycles: 1,
            sequence_seed: 0x5eed,
        },
        shots,
    )
}

fn active_reset_spec(shots: u64) -> WorkloadSpec {
    WorkloadSpec::new(
        "active-reset",
        WorkloadKind::ActiveReset { init_cycles: 100 },
        shots,
    )
}

// ---------------------------------------------------------------------------
// Satellite 3: restart-tolerant scraping
// ---------------------------------------------------------------------------

/// A fake metrics endpoint whose first connection dies before any
/// bytes are written — the shape of a coordinator restarting
/// mid-scrape — and whose second connection serves a valid response.
/// `scrape_with_retry` must recover; a plain scrape must not.
#[test]
fn scrape_retry_recovers_from_one_dead_connection() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || {
        // First connection: accept and slam the door (RST/EOF before
        // a status line).
        let (first, _) = listener.accept().expect("first accept");
        drop(first);
        // Second connection: a well-formed HTTP/1.0 scrape response.
        let (mut second, _) = listener.accept().expect("second accept");
        let mut buf = [0u8; 512];
        let _ = second.read(&mut buf);
        let body = "# TYPE eqasm_shots_completed_total counter\n\
                    eqasm_shots_completed_total 12345\n";
        let resp = format!(
            "HTTP/1.0 200 OK\r\nContent-Type: text/plain\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        second.write_all(resp.as_bytes()).expect("write response");
    });

    let snap = scrape_with_retry(&addr, Duration::from_secs(5)).expect("retry recovers");
    assert_eq!(snap.get("eqasm_shots_completed_total"), Some(12345.0));
    server.join().expect("fake endpoint thread");
}

/// With no listener at all, both attempts fail and the scrape
/// surfaces a typed error (not a panic/abort) naming the address.
#[test]
fn scrape_retry_reports_typed_error_when_endpoint_stays_down() {
    // Bind-then-drop to get a port that is closed right now.
    let addr = {
        let l = TcpListener::bind("127.0.0.1:0").expect("bind");
        l.local_addr().expect("addr").to_string()
    };
    let err = scrape_with_retry(&addr, Duration::from_millis(500)).expect_err("must fail");
    assert!(
        err.to_string().contains(&addr),
        "scrape error should name the endpoint: {err}"
    );
    let plain = scrape_metrics(&addr, Duration::from_millis(500));
    assert!(plain.is_err(), "plain scrape must fail fast");
}

// ---------------------------------------------------------------------------
// Satellite 4: loopback capacity sweep
// ---------------------------------------------------------------------------

/// A two-rung ramp against an in-process coordinator + metrics
/// server: the sweep must hold both rungs, stop at `max_rps`, record
/// server-side truth, and emit the documented `capacity` JSON schema.
#[test]
fn two_rung_loopback_sweep_emits_capacity_schema() {
    let (_queue, server) = serve_fixture(2, 16);
    let metrics = eqasm_runtime::MetricsServer::spawn(
        "127.0.0.1:0",
        eqasm_runtime::metrics::default_registry(),
    )
    .expect("metrics server");

    let spec = LoadSpec::new(vec![
        LoadClass {
            tenant: "alice".into(),
            spec: rb_spec(24),
            share: 2,
        },
        LoadClass {
            tenant: "bob".into(),
            spec: active_reset_spec(24),
            share: 1,
        },
    ])
    .with_shots(ShotsDist::fixed(24))
    .with_subscribe_ratio(0.25)
    .with_connections(2)
    .with_watchers(1)
    .with_seed(7);

    let target =
        SweepTarget::new(server.addr().to_string()).with_metrics(metrics.local_addr().to_string());
    // Ceilings loose enough that tiny loopback jobs cannot breach:
    // the ramp must terminate on MaxRps, deterministically.
    let config = SweepConfig {
        initial_rps: 8.0,
        step: RpsStep::Mul(2.0),
        max_rps: 16.0,
        window: Duration::from_millis(800),
        drain_timeout: Duration::from_secs(20),
        stop: Ceilings {
            failure_rate: 0.99,
            p50: Duration::from_secs(30),
        },
        ..SweepConfig::default()
    };

    let report = capacity_sweep(&spec, &target, &config).expect("sweep runs");
    assert_eq!(report.rungs.len(), 2, "8 → 16 rps is exactly two rungs");
    assert_eq!(report.stop, StopCause::MaxRps);
    assert!(report.breach_rung().is_none());
    assert!(
        report.max_sustainable_rps > 0.0,
        "a healthy loopback sweep must sustain something: {report:?}"
    );
    for rung in &report.rungs {
        assert!(rung.offered > 0, "pacer must schedule ticks");
        assert!(rung.submitted > 0, "coordinator must ack submissions");
        assert!(rung.completed > 0, "jobs must finish inside the drain");
        assert_eq!(rung.timed_out, 0, "nothing may be left behind");
        assert!(rung.shots_submitted >= rung.submitted * 24);
        let server = rung.server.as_ref().expect("metrics endpoint was scraped");
        assert!(
            server.shots_completed > 0,
            "server-side truth must show shot progress"
        );
        assert!(!server.restarted, "no restart happened");
    }

    // The `capacity` section schema, as BENCH_runtime.json embeds it.
    let json = report.to_json("");
    for key in [
        "\"max_sustainable_rps\"",
        "\"stop\": \"max_rps\"",
        "\"stop_rung\": null",
        "\"rungs\"",
        "\"target_rps\"",
        "\"shots_submitted\"",
        "\"failure_rate\"",
        "\"achieved_rps\"",
        "\"p50_ms\"",
        "\"p95_ms\"",
        "\"p99_ms\"",
        "\"max_submit_lag_ms\"",
        "\"breach\": null",
        "\"peak_queue_depth\"",
        "\"recovered_jobs\"",
    ] {
        assert!(
            json.contains(key),
            "capacity JSON must contain {key}: {json}"
        );
    }
    // And the human-readable rung table renders one row per rung.
    let table = report.table();
    assert!(table.lines().count() >= 2 + report.rungs.len());

    drop(metrics);
}

/// Ceiling breaches stop the ramp: with a stop ceiling of zero
/// latency, the very first rung breaches and the sweep reports it.
#[test]
fn sweep_stops_on_first_rung_when_ceiling_is_unmeetable() {
    let (_queue, server) = serve_fixture(2, 16);
    let spec = LoadSpec::new(vec![LoadClass {
        tenant: "t".into(),
        spec: rb_spec(16),
        share: 1,
    }])
    .with_connections(1)
    .with_watchers(1);
    let target = SweepTarget::new(server.addr().to_string());
    let config = SweepConfig {
        initial_rps: 4.0,
        max_rps: 256.0,
        window: Duration::from_millis(400),
        drain_timeout: Duration::from_secs(10),
        stop: Ceilings {
            failure_rate: 0.5,
            p50: Duration::from_nanos(1),
        },
        ..SweepConfig::default()
    };
    let report = capacity_sweep(&spec, &target, &config).expect("sweep runs");
    assert_eq!(report.stop, StopCause::CeilingBreached);
    assert_eq!(report.rungs.len(), 1, "first rung breaches, ramp stops");
    assert_eq!(report.breach_rung(), Some(0));
    let json = report.to_json("  ");
    assert!(json.contains("\"stop\": \"ceiling_breached\""));
    assert!(json.contains("\"stop_rung\": 0"));
}

// ---------------------------------------------------------------------------
// Satellite 1: subscriber churn
// ---------------------------------------------------------------------------

/// A short churn sweep against the loopback coordinator: cycles must
/// complete, resumes must happen, and resume correctness must hold
/// (no snapshot older than its resume point, no stream regressing).
#[test]
fn churn_sweep_holds_resume_correctness() {
    let (_queue, server) = serve_fixture(2, 8);
    let target = SweepTarget::new(server.addr().to_string());
    let config = ChurnConfig {
        workers: 3,
        duration: Duration::from_millis(1500),
        snapshots_per_cycle: 2,
        job_shots: 50_000,
    };
    let report = churn_sweep(&rb_spec(50_000), &target, &config).expect("churn runs");
    assert!(
        report.cycles > 0,
        "workers must complete cycles: {report:?}"
    );
    assert!(report.snapshots > 0, "cycles must observe snapshots");
    assert_eq!(
        report.resume_violations, 0,
        "the reactor broke resume correctness: {report:?}"
    );
    assert!(report.jobs_driven >= 1);
    assert!(report.cycles_per_sec > 0.0);
}

// ---------------------------------------------------------------------------
// Satellite 2: large-n Clifford workload, end to end
// ---------------------------------------------------------------------------

/// Tag-5 wire roundtrip: a CliffordChain submission encodes, decodes,
/// and re-encodes to identical bytes.
#[test]
fn clifford_chain_submission_roundtrips_on_the_wire() {
    let spec = WorkloadSpec::new(
        "stab",
        WorkloadKind::CliffordChain {
            qubits: 12,
            layers: 2,
        },
        64,
    )
    .with_seed(99);
    let submission = Submission::workload("tenant-a", spec);
    let bytes = wire::encode_submission(&submission).expect("encodes");
    let decoded = wire::decode_submission(&bytes).expect("decodes");
    let re = wire::encode_submission(&decoded).expect("re-encodes");
    assert_eq!(bytes, re, "decode must preserve every field");
}

/// A 12-qubit CliffordChain — above the 10-qubit dense-simulation
/// comfort zone — selects the stabilizer backend and executes to a
/// full histogram through the serve front door over wire v5.
#[test]
fn clifford_chain_runs_above_the_dense_ceiling() {
    let spec = WorkloadSpec::new(
        "stab",
        WorkloadKind::CliffordChain {
            qubits: 12,
            layers: 2,
        },
        64,
    )
    .with_seed(3);

    // Selection: Clifford-only under ideal noise rides the tableau.
    let job = spec.build_instance(0).expect("builds");
    let mut machine = QuMa::new(job.inst.clone(), job.config.clone());
    machine.load(&job.program).expect("loads");
    assert_eq!(machine.selection().kind(), SimBackendKind::Stabilizer);

    // End to end over TCP, negotiated at v5.
    let (_queue, server) = serve_fixture(2, 16);
    let client = Client::connect(server.addr().to_string()).expect("connects");
    assert_eq!(client.protocol(), wire::PROTOCOL_VERSION);
    let handles = client
        .submit(Submission::workload("tenant-a", spec))
        .expect("v5 client may submit CliffordChain");
    let result = handles[0].wait().expect("completes");
    assert_eq!(result.histogram.total(), 64, "every shot must land");
}

/// CliffordChain parameter validation: the generator rejects sizes
/// outside the linear-topology and wire-mask envelope.
#[test]
fn clifford_chain_rejects_out_of_envelope_parameters() {
    for (qubits, layers) in [(1usize, 2u32), (33, 2), (12, 0), (12, 17)] {
        let err = WorkloadKind::CliffordChain { qubits, layers }
            .build()
            .expect_err("out-of-envelope parameters must be rejected");
        let msg = err.to_string();
        assert!(
            msg.contains("CliffordChain") || msg.contains("qubits") || msg.contains("layers"),
            "error should name the offending parameter: {msg}"
        );
    }
}

/// The client-side version gate: a connection capped at v4 refuses to
/// send a CliffordChain submission (the server would not know tag 5),
/// while v2-encodable work still flows.
#[test]
fn clifford_chain_is_gated_below_wire_v5() {
    let (_queue, server) = serve_fixture(1, 8);
    let client = Client::connect_opts(
        server.addr().to_string(),
        ConnectOptions::default().with_protocol_cap(4),
    )
    .expect("connects at v4");
    assert_eq!(client.protocol(), 4);

    let clifford = Submission::workload(
        "tenant-a",
        WorkloadSpec::new(
            "stab",
            WorkloadKind::CliffordChain {
                qubits: 12,
                layers: 2,
            },
            32,
        ),
    );
    let err = client.submit(clifford.clone()).expect_err("must be gated");
    let msg = err.to_string();
    assert!(
        msg.contains("v5") && msg.contains("v4"),
        "gate should name both versions: {msg}"
    );

    // submit_batch refuses the whole batch before writing anything —
    // a half-written batch would desync positional ack matching.
    let rb = Submission::workload("tenant-a", rb_spec(16));
    let err = client
        .submit_batch(&[rb.clone(), clifford])
        .expect_err("batch with gated member must fail up front");
    assert!(err.to_string().contains("v5"));

    // The connection survives the refusals: plain v2 work still runs.
    let handles = client.submit(rb).expect("v2-encodable work flows");
    assert_eq!(handles[0].wait().expect("completes").histogram.total(), 16);
}
