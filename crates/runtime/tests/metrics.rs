//! Metrics-layer integration tests: Prometheus text-format grammar
//! conformance on private registries, counter monotonicity across
//! scrapes, the raw-TCP behaviour of the `GET /metrics` responder, and
//! the process-global gauges tracking real queue/supervisor state
//! through slot churn and registry corruption.
//!
//! Tests that assert **exact values** of process-global series
//! serialize behind [`LOCK`]: the default registry is shared by every
//! test thread in this binary, so two queues syncing gauges
//! concurrently would race.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use eqasm_core::{Instantiation, Qubit, Topology};
use eqasm_microarch::SimConfig;
use eqasm_quantum::{NoiseModel, ReadoutModel};
use eqasm_runtime::metrics::{default_registry, MetricsServer, Registry};
use eqasm_runtime::serve::{JobQueue, ServeConfig, SlotState, Submission};
use eqasm_runtime::{
    spawn_worker, ExecBackend, Job, LocalBackend, PoolSupervisor, RemoteBackend, SupervisorConfig,
    WorkerConfig,
};

/// Serializes every test that reads or writes the process-global
/// registry's values.
static LOCK: Mutex<()> = Mutex::new(());

/// Locks [`LOCK`] even when a previous test panicked while holding it.
fn global_lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A small deterministic RB job for the queue-driven tests.
fn small_job(name: &str, shots: u64) -> Job {
    let inst = Instantiation::paper().with_topology(Topology::linear(1));
    let (program, _) =
        eqasm_workloads::rb_program(&inst, Qubit::new(0), 6, 1, 0xfeed).expect("rb emits");
    let config = SimConfig::default()
        .with_noise(NoiseModel::with_coherence(20_000.0, 15_000.0).with_gate_error(0.002, 0.0))
        .with_readout(ReadoutModel::symmetric(0.05));
    Job::new(name, inst, program)
        .with_config(config)
        .with_shots(shots)
        .with_seed(7)
}

/// Reads one sample series (exact name, including any label fragment)
/// out of an exposition text.
fn sample(text: &str, series: &str) -> Option<f64> {
    text.lines().filter(|l| !l.starts_with('#')).find_map(|l| {
        let (name, value) = l.rsplit_once(' ')?;
        if name == series {
            value.parse().ok()
        } else {
            None
        }
    })
}

fn global_sample(series: &str) -> f64 {
    sample(&default_registry().encode(), series)
        .unwrap_or_else(|| panic!("series `{series}` not in the default registry"))
}

/// Spins until `cond` holds or the deadline passes.
fn wait_for(what: &str, timeout: Duration, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

// ---------------------------------------------------------------------------
// Exposition-format grammar
// ---------------------------------------------------------------------------

/// Every family gets exactly one `# HELP` and one `# TYPE` line, in
/// that order and before any of its samples; every sample line parses
/// as `name[{labels}] value`; metric and label names stay within the
/// Prometheus grammar.
#[test]
fn exposition_grammar_conformance() {
    let r = Registry::new();
    r.counter("fmt_requests_total", "Requests.").add(3);
    r.gauge("fmt_depth", "Depth.").set(-2);
    r.histogram("fmt_wait_seconds", "Wait.", &[0.1, 1.0])
        .observe(0.5);
    r.counter_vec("fmt_frames_total", "Frames.", &["dir", "kind"])
        .with(&["in", "ping"])
        .inc();
    r.gauge_vec("fmt_slots", "Slots.", &["state"])
        .with(&["active"])
        .set(4);

    let text = r.encode();
    let name_ok = |n: &str| {
        !n.is_empty()
            && !n.starts_with(|c: char| c.is_ascii_digit())
            && n.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let mut seen_help = Vec::new();
    let mut seen_type = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, _) = rest.split_once(' ').expect("HELP has text");
            assert!(name_ok(name), "bad HELP name `{name}`");
            assert!(!seen_help.contains(&name.to_owned()), "duplicate HELP");
            seen_help.push(name.to_owned());
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, ty) = rest.split_once(' ').expect("TYPE has a type");
            assert!(
                matches!(ty, "counter" | "gauge" | "histogram"),
                "unknown TYPE `{ty}`"
            );
            // TYPE must directly follow this family's HELP, before any
            // of its samples.
            assert_eq!(seen_help.last().map(String::as_str), Some(name));
            seen_type.push(name.to_owned());
            continue;
        }
        assert!(!line.is_empty(), "no blank lines in the exposition");
        let (series, value) = line.rsplit_once(' ').expect("sample has a value");
        value.parse::<f64>().expect("sample value is a number");
        let base = match series.split_once('{') {
            Some((base, labels)) => {
                assert!(labels.ends_with('}'), "label fragment closes");
                for pair in labels[..labels.len() - 1].split(',') {
                    let (label, quoted) = pair.split_once('=').expect("label=\"value\"");
                    assert!(name_ok(label), "bad label name `{label}`");
                    assert!(quoted.starts_with('"') && quoted.ends_with('"'));
                }
                base
            }
            None => series,
        };
        // Histogram samples hang off the family name with the
        // well-known suffixes; everything else matches exactly.
        let family = base
            .strip_suffix("_bucket")
            .or_else(|| base.strip_suffix("_sum"))
            .or_else(|| base.strip_suffix("_count"))
            .filter(|f| seen_type.iter().any(|t| t == f))
            .unwrap_or(base);
        assert!(name_ok(base), "bad sample name `{base}`");
        assert!(
            seen_type.iter().any(|t| t == family),
            "sample `{series}` appears before its # TYPE"
        );
    }
    assert_eq!(seen_help.len(), 5, "one HELP per registered family");
    assert_eq!(seen_help, seen_type, "HELP and TYPE pair up in order");
}

/// Label values with backslashes, quotes and newlines are escaped per
/// the text-format rules; HELP text escapes backslash and newline.
#[test]
fn label_and_help_escaping() {
    let r = Registry::new();
    r.counter_vec("esc_total", "line one\nline two \\ done", &["who"])
        .with(&["a\\b\"c\nd"])
        .inc();
    let text = r.encode();
    assert!(text.contains("# HELP esc_total line one\\nline two \\\\ done\n"));
    assert!(text.contains("esc_total{who=\"a\\\\b\\\"c\\nd\"} 1\n"));
}

/// Histogram `_bucket` series are cumulative and non-decreasing in
/// bound order, end at `le="+Inf"`, and `+Inf` equals `_count`;
/// `_sum` carries the observation total.
#[test]
fn histogram_bucket_invariants() {
    let r = Registry::new();
    let h = r.histogram("inv_seconds", "Invariants.", &[0.01, 0.1, 1.0, 10.0]);
    for v in [0.005, 0.05, 0.1, 0.7, 3.0, 99.0, 0.002] {
        h.observe(v);
    }
    let text = r.encode();
    let mut buckets = Vec::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("inv_seconds_bucket{le=\"") {
            let (le, value) = rest.split_once("\"} ").expect("bucket shape");
            buckets.push((le.to_owned(), value.parse::<u64>().expect("count")));
        }
    }
    assert_eq!(buckets.len(), 5, "four bounds plus +Inf");
    assert_eq!(buckets.last().expect("buckets").0, "+Inf");
    assert!(
        buckets.windows(2).all(|w| w[0].1 <= w[1].1),
        "cumulative counts must be non-decreasing: {buckets:?}"
    );
    // Boundary observations (0.1 exactly) land in their own bucket.
    assert_eq!(buckets[0].1, 2, "le=0.01 holds 0.005 and 0.002");
    assert_eq!(buckets[1].1, 4, "le=0.1 includes the boundary 0.1");
    let count = sample(&text, "inv_seconds_count").expect("count series");
    assert_eq!(buckets.last().expect("buckets").1, count as u64);
    let sum = sample(&text, "inv_seconds_sum").expect("sum series");
    assert!((sum - 102.857).abs() < 1e-9, "sum was {sum}");
}

/// Counters never move backwards between scrapes, and every series
/// present in one scrape is present in the next.
#[test]
fn counter_monotonicity_across_scrapes() {
    let r = Registry::new();
    let c = r.counter("mono_total", "Monotone.");
    let v = r.counter_vec("mono_frames_total", "Monotone family.", &["kind"]);
    let child = v.with(&["x"]);
    let mut last: Vec<(String, f64)> = Vec::new();
    for round in 0..5u64 {
        c.add(round);
        child.add(round * 2);
        let text = r.encode();
        let now: Vec<(String, f64)> = text
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| {
                let (name, value) = l.rsplit_once(' ').expect("sample");
                (name.to_owned(), value.parse().expect("number"))
            })
            .collect();
        for (name, prev) in &last {
            let cur = now
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("series `{name}` vanished between scrapes"));
            assert!(cur.1 >= *prev, "`{name}` went backwards");
        }
        last = now;
    }
}

// ---------------------------------------------------------------------------
// The HTTP responder
// ---------------------------------------------------------------------------

/// Issues one raw HTTP/1.0 request and returns the full response.
fn raw_request(addr: std::net::SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect metrics endpoint");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    response
}

/// `GET /metrics` answers 200 with the versioned text content-type and
/// a body that parses; other paths get 404, other methods 405 — and a
/// scrape must observe the runtime's own series in the default
/// registry.
#[test]
fn http_responder_serves_scrapes() {
    let _guard = global_lock();
    // Instantiating a queue forces the runtime's series to register.
    let queue = JobQueue::with_backends(
        ServeConfig::default(),
        vec![Box::new(LocalBackend::new(0)) as Box<dyn ExecBackend>],
    );
    let server =
        MetricsServer::spawn("127.0.0.1:0", default_registry()).expect("bind metrics server");
    let addr = server.local_addr();

    let ok = raw_request(addr, "GET /metrics HTTP/1.0\r\n\r\n");
    assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "got: {ok}");
    assert!(ok.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"));
    let body = ok.split("\r\n\r\n").nth(1).expect("body");
    assert!(sample(body, "eqasm_queue_depth").is_some());
    assert!(body.contains("# TYPE eqasm_shots_completed_total counter\n"));
    assert!(body.contains("eqasm_pool_slots{state=\"active\"}"));

    let missing = raw_request(addr, "GET /nope HTTP/1.0\r\n\r\n");
    assert!(missing.starts_with("HTTP/1.0 404 Not Found\r\n"));
    let post = raw_request(addr, "POST /metrics HTTP/1.0\r\n\r\n");
    assert!(post.starts_with("HTTP/1.0 405 Method Not Allowed\r\n"));
    drop(queue);
}

// ---------------------------------------------------------------------------
// Global gauges against real runtime state
// ---------------------------------------------------------------------------

fn slot_gauges() -> (i64, i64, i64) {
    (
        global_sample("eqasm_pool_slots{state=\"active\"}") as i64,
        global_sample("eqasm_pool_slots{state=\"draining\"}") as i64,
        global_sample("eqasm_pool_slots{state=\"retired\"}") as i64,
    )
}

fn pool_counts(queue: &JobQueue) -> (i64, i64, i64) {
    let (mut active, mut draining, mut retired) = (0, 0, 0);
    for slot in queue.pool_status() {
        match slot.state {
            SlotState::Active => active += 1,
            SlotState::Draining => draining += 1,
            SlotState::Retired => retired += 1,
        }
    }
    (active, draining, retired)
}

/// The `eqasm_pool_slots{state}` gauges mirror `pool_status()` through
/// attach → drain → retire churn.
#[test]
fn slot_gauges_track_pool_churn() {
    let _guard = global_lock();
    let queue = JobQueue::with_backends(
        ServeConfig::default(),
        vec![Box::new(LocalBackend::new(0)) as Box<dyn ExecBackend>],
    );
    assert_eq!(slot_gauges(), (1, 0, 0));
    assert_eq!(slot_gauges(), pool_counts(&queue));

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let worker = spawn_worker(
        listener,
        WorkerConfig::default().with_name("churn").with_capacity(1),
    )
    .expect("spawn worker");
    let backend = RemoteBackend::connect(worker.addr().to_string()).expect("connect worker");
    let remote_slot = queue.attach_backend(Box::new(backend)).expect("attach");
    assert_eq!(slot_gauges(), (2, 0, 0));
    assert_eq!(slot_gauges(), pool_counts(&queue));

    queue.detach_backend(remote_slot).expect("detach");
    // Draining is transient — an idle slot retires as soon as its
    // thread notices — so wait for the terminal state, then compare.
    wait_for("detached slot to retire", Duration::from_secs(10), || {
        pool_counts(&queue) == (1, 0, 1)
    });
    assert_eq!(slot_gauges(), (1, 0, 1));
    assert_eq!(slot_gauges(), pool_counts(&queue));
}

/// `eqasm_shots_completed_total` advances by exactly the submitted
/// shot count once a job drains, and `eqasm_jobs_completed_total`
/// records the outcome.
#[test]
fn shot_counters_match_job_totals() {
    let _guard = global_lock();
    let queue = JobQueue::with_backends(
        ServeConfig::default().with_batch_size(16),
        vec![Box::new(LocalBackend::new(0)) as Box<dyn ExecBackend>],
    );
    let before_shots = global_sample("eqasm_shots_completed_total");
    // The labeled child only exists once some job has completed, so
    // the baseline may legitimately be absent.
    let before_jobs = sample(
        &default_registry().encode(),
        "eqasm_jobs_completed_total{outcome=\"ok\"}",
    )
    .unwrap_or(0.0);
    let handle = queue
        .submit(Submission::job("metrics", small_job("count-me", 96)))
        .expect("submits")
        .remove(0);
    handle.wait().expect("job completes");
    assert_eq!(
        global_sample("eqasm_shots_completed_total") - before_shots,
        96.0,
        "completed-shot counter must advance by exactly the job's shots"
    );
    assert_eq!(
        global_sample("eqasm_jobs_completed_total{outcome=\"ok\"}") - before_jobs,
        1.0
    );
}

/// Regression (satellite of the corrupted-registry fix): the
/// `eqasm_supervisor_registry_error` gauge raises while the registry
/// file is malformed and clears on the next good read, tracking
/// `registry_warning()`.
#[test]
fn supervisor_registry_error_gauge() {
    let _guard = global_lock();
    let path =
        std::env::temp_dir().join(format!("eqasm-metrics-registry-{}.txt", std::process::id()));
    std::fs::write(&path, "# no workers yet\n").expect("write registry");
    let queue = std::sync::Arc::new(JobQueue::with_backends(
        ServeConfig::default(),
        vec![Box::new(LocalBackend::new(0)) as Box<dyn ExecBackend>],
    ));
    let supervisor = PoolSupervisor::spawn(
        std::sync::Arc::clone(&queue),
        Vec::new(),
        SupervisorConfig::default()
            .with_probe_interval(Duration::from_millis(5))
            .with_registry(&path),
    );

    wait_for("first clean registry read", Duration::from_secs(10), || {
        supervisor.registry_warning().is_none()
            && sample(
                &default_registry().encode(),
                "eqasm_supervisor_registry_error",
            ) == Some(0.0)
    });

    std::fs::write(&path, "this is not host:port\n").expect("corrupt registry");
    wait_for("registry warning to raise", Duration::from_secs(10), || {
        supervisor.registry_warning().is_some()
    });
    assert_eq!(global_sample("eqasm_supervisor_registry_error"), 1.0);

    std::fs::write(&path, "# repaired, empty roster\n").expect("repair registry");
    wait_for("registry warning to clear", Duration::from_secs(10), || {
        supervisor.registry_warning().is_none()
    });
    assert_eq!(global_sample("eqasm_supervisor_registry_error"), 0.0);

    supervisor.shutdown();
    drop(supervisor);
    let _ = std::fs::remove_file(&path);
}
