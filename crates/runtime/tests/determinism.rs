//! The runtime's central contract: aggregate results are a pure
//! function of `(program, base_seed, shots)` — bit-identical for any
//! worker count and any batch size.

use eqasm_core::{Instantiation, Qubit, Topology};
use eqasm_microarch::{BackendSelect, SimConfig};
use eqasm_quantum::{NoiseModel, ReadoutModel};
use eqasm_runtime::{partition_shots, Job, MixedWorkload, ShotEngine, WorkloadKind, WorkloadSpec};
use proptest::prelude::*;

/// A noisy RB job whose shots genuinely consume randomness
/// (stochastic trajectory collapse + readout corruption), so any seed
/// or scheduling leak between workers would show up in the histogram.
fn noisy_rb_job(shots: u64, base_seed: u64) -> Job {
    let inst = Instantiation::paper().with_topology(Topology::linear(1));
    let (program, _) =
        eqasm_workloads::rb_program(&inst, Qubit::new(0), 12, 1, 0xfeed).expect("rb emits");
    let mut config = SimConfig::default()
        .with_noise(NoiseModel::with_coherence(20_000.0, 15_000.0).with_gate_error(0.002, 0.0))
        .with_readout(ReadoutModel::symmetric(0.05));
    // Stochastic trajectory backend: every shot consumes randomness in
    // the *state evolution*, so seed handling bugs cannot hide behind
    // the exact density simulation.
    config.backend = BackendSelect::Pure;
    Job::new("rb-determinism", inst, program)
        .with_config(config)
        .with_shots(shots)
        .with_seed(base_seed)
}

/// Pool sizes the suite checks against the serial reference. CI runs
/// the suite once per fixed count via `EQASM_TEST_WORKERS=n` (a comma
/// list also works) so a scheduler change cannot silently break the
/// bit-identical-merge contract at any specific width; without the
/// variable the suite covers 2 and 8.
fn worker_counts() -> Vec<usize> {
    std::env::var("EQASM_TEST_WORKERS")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|t| t.trim().parse().ok())
                .filter(|&w| w > 0)
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![2, 8])
}

#[test]
fn aggregates_identical_across_worker_counts() {
    let job = noisy_rb_job(96, 1234);
    let reference = ShotEngine::new(1).run_job(&job).expect("runs");
    assert_eq!(reference.shots, 96);
    assert!(reference.histogram.total() == 96);
    for workers in worker_counts() {
        let result = ShotEngine::new(workers).run_job(&job).expect("runs");
        assert_eq!(
            reference.histogram, result.histogram,
            "histogram must not depend on worker count ({workers})"
        );
        assert_eq!(
            reference.stats, result.stats,
            "stats roll-up must not depend on worker count ({workers})"
        );
        // Floating-point aggregate: bit-identical, not approximately
        // equal — batch-ordered folding guarantees it.
        assert_eq!(
            reference.mean_prob1, result.mean_prob1,
            "mean P(1) must be bit-identical ({workers} workers)"
        );
        assert_eq!(reference.non_halted, 0);
        assert_eq!(result.non_halted, 0);
    }
}

#[test]
fn aggregates_identical_across_batch_sizes() {
    let job = noisy_rb_job(64, 77);
    let a = ShotEngine::new(3).run_job(&job).expect("runs");
    let b = ShotEngine::new(3)
        .with_batch_size(1)
        .run_job(&job)
        .expect("runs");
    let c = ShotEngine::new(3)
        .with_batch_size(64)
        .run_job(&job)
        .expect("runs");
    assert_eq!(a.histogram, b.histogram);
    assert_eq!(a.histogram, c.histogram);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.stats, c.stats);
    // Note: mean_prob1 is only guaranteed bit-identical at a *fixed*
    // batch size (the fold order follows batch boundaries); across
    // batch sizes it is the same sum in a different association order.
    for (x, y) in a.mean_prob1.iter().zip(&b.mean_prob1) {
        assert!((x - y).abs() < 1e-12);
    }
}

#[test]
fn different_seeds_differ() {
    // Sanity: the determinism above is not vacuous — shots do vary.
    // Compared on the histogram, not mean_prob1: under the CI's
    // `EQASM_EXEC_PATH=dense` leg this job runs on the exact density
    // backend, whose per-shot P(1) is seed-independent by design —
    // sampled outcomes are the seed-sensitive surface on every
    // backend.
    //
    // A one-qubit histogram has only two cells, so two base seeds
    // landing on the same ones-count is a ~10% event, not a failure
    // (seeds 1 and 9999 genuinely collide at both 64 and 256 shots on
    // the density path). Requiring *any* difference across several
    // base seeds keeps the probe meaningful without being
    // collision-prone.
    let hists: Vec<_> = [1u64, 9999, 0x00c0_ffee, 424_242]
        .iter()
        .map(|&s| {
            ShotEngine::new(2)
                .run_job(&noisy_rb_job(256, s))
                .unwrap()
                .histogram
        })
        .collect();
    assert!(
        hists.windows(2).any(|w| w[0] != w[1]),
        "different base seeds must explore different trajectories: {hists:?}"
    );
}

#[test]
fn mixed_workload_deterministic_across_workers() {
    let mix = MixedWorkload::new()
        .push(
            WorkloadSpec::new(
                "rb",
                WorkloadKind::Rb {
                    k: 6,
                    interval_cycles: 1,
                    sequence_seed: 3,
                },
                24,
            )
            .with_weight(2)
            .with_seed(10),
        )
        .push(
            WorkloadSpec::new("reset", WorkloadKind::ActiveReset { init_cycles: 50 }, 32)
                .with_config(SimConfig::default().with_readout(ReadoutModel::paper_reset())),
        );
    let serial = mix.run(&ShotEngine::new(1)).expect("runs");
    assert_eq!(serial.aggregate.shots, 80);
    for workers in worker_counts() {
        let pooled = mix.run(&ShotEngine::new(workers)).expect("runs");
        assert_eq!(pooled.aggregate.shots, 80);
        for (s, p) in serial.per_workload.iter().zip(&pooled.per_workload) {
            assert_eq!(s.name, p.name);
            assert_eq!(s.histogram, p.histogram, "workload {} diverged", s.name);
            assert_eq!(s.stats, p.stats);
        }
        assert_eq!(serial.aggregate.histogram, pooled.aggregate.histogram);
    }
}

#[test]
fn zero_batch_size_is_clamped_not_fatal() {
    // Regression: `with_batch_size(0)` used to `assert!` inside a
    // library builder — a malformed service request could take down
    // the whole pool. It now clamps to 1 and runs normally.
    let job = noisy_rb_job(32, 5);
    let clamped = ShotEngine::new(2)
        .with_batch_size(0)
        .run_job(&job)
        .expect("clamped engine runs");
    let one = ShotEngine::new(2)
        .with_batch_size(1)
        .run_job(&job)
        .expect("runs");
    assert_eq!(clamped.histogram, one.histogram);
    assert_eq!(clamped.stats, one.stats);
}

#[test]
fn shot_seeding_wraps_at_u64_max() {
    // Shots that walk the seed space across u64::MAX must wrap, not
    // panic (debug) or collide beyond the modular layout (release).
    let job = noisy_rb_job(64, u64::MAX - 16);
    let a = ShotEngine::new(1).run_job(&job).expect("runs");
    let b = ShotEngine::new(4).run_job(&job).expect("runs");
    assert_eq!(a.histogram, b.histogram);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.histogram.total(), 64);
}

#[test]
fn raw_latencies_are_opt_in() {
    let job = noisy_rb_job(48, 9);
    let spare = ShotEngine::new(2).run_job(&job).expect("runs");
    assert!(
        spare.latencies_ns.is_empty(),
        "raw per-shot durations must not be retained by default"
    );
    assert!(spare.latency.max_ns > 0, "percentiles stay exact");
    let retained = ShotEngine::new(2)
        .with_raw_latencies(true)
        .run_job(&job)
        .expect("runs");
    assert_eq!(retained.latencies_ns.len(), 48);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Shot partitioning is exact: every shot index appears exactly
    /// once, in order, whatever the (shots, batch size) combination.
    #[test]
    fn partitioning_never_drops_or_duplicates(
        shots in 0u64..5000,
        batch in 1u64..600,
    ) {
        let parts = partition_shots(shots, batch);
        let mut next = 0u64;
        for r in &parts {
            prop_assert_eq!(r.start, next, "batches must be contiguous");
            prop_assert!(r.end > r.start, "batches must be nonempty");
            prop_assert!(r.end - r.start <= batch, "batches must respect the size cap");
            next = r.end;
        }
        prop_assert_eq!(next, shots, "every shot covered exactly once");
        let total: u64 = parts.iter().map(|r| r.end - r.start).sum();
        prop_assert_eq!(total, shots);
    }
}
