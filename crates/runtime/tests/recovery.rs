//! Crash-recovery contracts of the durable coordinator: a queue killed
//! at *any* point and restarted from its write-ahead journal finishes
//! every job with aggregates bit-identical to an uninterrupted run.
//!
//! The tests simulate crashes at the file level: run a journaled queue
//! to completion, then replay recovery from every record-boundary
//! prefix of the segment it wrote — each prefix is exactly the on-disk
//! state a `kill -9` between two fold steps would have left (the
//! journal is append-only, so a crash image *is* a prefix). A cut in
//! the middle of the final record exercises the torn-tail path.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use eqasm_asm::assemble;
use eqasm_core::Instantiation;
use eqasm_runtime::prefix;
use eqasm_runtime::{
    ExecBackend, Job, JobQueue, JournalConfig, LocalBackend, ServeConfig, ShotEngine, Submission,
};

/// A Clifford-only two-qubit program with genuinely random outcomes on
/// both measured qubits, so a recovery bug (lost range, double fold,
/// wrong seed offset) cannot hide behind a deterministic histogram.
/// The `wait` parameter varies the program shape, giving each test its
/// own prefix-cache key (the cache is process-global and the tests in
/// this binary run concurrently).
fn clifford_program(wait: u32) -> String {
    format!(
        "SMIS S0, {{0}}
SMIS S1, {{1}}
SMIT T0, {{(0, 2)}}
QWAIT {wait}
H S0
CZ T0
X90 S1
MEASZ S0
MEASZ S1
QWAIT 50
STOP"
    )
}

fn clifford_job(name: &str, wait: u32, shots: u64, base_seed: u64) -> Job {
    let inst = Instantiation::paper_two_qubit();
    let program = assemble(&clifford_program(wait), &inst).expect("assembles");
    Job::new(name, inst, program.instructions().to_vec())
        .with_shots(shots)
        .with_seed(base_seed)
}

/// A fresh unique journal directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "eqasm-recovery-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn local_pool(workers: usize) -> Vec<Box<dyn ExecBackend>> {
    (0..workers)
        .map(|i| Box::new(LocalBackend::new(i)) as Box<dyn ExecBackend>)
        .collect()
}

fn serve_config() -> ServeConfig {
    ServeConfig::default().with_batch_size(25)
}

/// The sorted segment files of a journal directory.
fn segments(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("journal dir readable")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            path.extension()
                .is_some_and(|x| x == "eqjl")
                .then_some(path)
        })
        .collect();
    out.sort();
    out
}

/// Byte offsets of every record boundary in a segment: walking the
/// length-prefixed frames from the 8-byte header, each entry is the
/// offset just *after* one record — i.e. the file length a crash
/// between that record and the next would have left behind.
fn record_cuts(bytes: &[u8]) -> Vec<usize> {
    let mut cuts = Vec::new();
    let mut off = 8;
    while off + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 8 + len;
        assert!(off <= bytes.len(), "segment frame overruns the file");
        cuts.push(off);
    }
    cuts
}

/// Walks a segment's records and returns, per record, the byte offset
/// just after it (a valid crash cut), its tag byte, and the first
/// `u64` of its payload (the job id for Admit/RangeDone/Complete,
/// masked of the compression flag; the live-job count for Checkpoint).
fn records(bytes: &[u8]) -> Vec<(usize, u8, u64)> {
    let mut out = Vec::new();
    let mut off = 8;
    while off + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        let payload = &bytes[off + 8..off + 8 + len];
        let id = if payload.len() >= 9 {
            u64::from_le_bytes(payload[1..9].try_into().unwrap()) & !(1 << 63)
        } else {
            0
        };
        off += 8 + len;
        assert!(off <= bytes.len(), "segment frame overruns the file");
        out.push((off, payload[0], id));
    }
    out
}

/// Writes the first `len` bytes of `segment` as the sole segment of a
/// fresh journal directory — the crash image to recover from.
fn crash_image(tag: &str, segment: &[u8], len: usize) -> PathBuf {
    let dir = temp_dir(tag);
    std::fs::create_dir_all(&dir).expect("create crash-image dir");
    std::fs::write(dir.join("segment-00000000.eqjl"), &segment[..len]).expect("write crash image");
    dir
}

/// Runs one journaled clifford job to completion and returns the bytes
/// of the single segment it left behind, plus the expected serial
/// result for comparison.
fn completed_run(tag: &str, wait: u32) -> (Vec<u8>, eqasm_runtime::JobResult, Job) {
    let dir = temp_dir(tag);
    let job = clifford_job(tag, wait, 400, 11);
    let jc = JournalConfig::new(&dir);
    let (queue, report) =
        JobQueue::recover(serve_config(), local_pool(1), &jc).expect("cold start recovers");
    assert_eq!(report.jobs_recovered, 0, "cold start has nothing to replay");
    let handles = queue
        .submit(Submission::job("tenant-r", job.clone()))
        .expect("submits");
    handles[0].wait().expect("completes");
    queue.shutdown();

    let segs = segments(&dir);
    assert_eq!(segs.len(), 1, "small run stays in one segment");
    let bytes = std::fs::read(&segs[0]).expect("read segment");
    let _ = std::fs::remove_dir_all(&dir);

    let serial = ShotEngine::serial()
        .with_batch_size(25)
        .run_job(&job)
        .expect("serial reference");
    (bytes, serial, job)
}

/// The tentpole acceptance check: crash the coordinator between every
/// fold step (every record-boundary prefix of the journal), recover,
/// finish the job, and require aggregates bit-identical to a serial
/// uninterrupted run — histogram, stats and mean P(1), not just counts.
#[test]
fn kill_between_every_fold_step_recovers_bit_identically() {
    let (bytes, serial, _job) = completed_run("killstep", 100);
    let cuts = record_cuts(&bytes);
    // Checkpoint + Admit + 16 RangeDone + Complete.
    assert_eq!(cuts.len(), 19, "expected record count for 400/25 shots");

    let mut recovered_runs = 0usize;
    for (i, &cut) in cuts.iter().enumerate() {
        let dir = crash_image("killstep-cut", &bytes, cut);
        let jc = JournalConfig::new(&dir);
        let (queue, report) =
            JobQueue::recover(serve_config(), local_pool(2), &jc).expect("recovers");
        assert!(!report.torn_tail, "record-boundary cuts are never torn");
        let handles = queue.job_handles();
        if report.jobs_recovered == 0 {
            if report.jobs_dropped == 0 {
                // Crash before the Admit record was durable: nothing
                // to resume, and critically nothing resurrected.
                assert!(handles.is_empty(), "no jobs expected at cut {i}");
            } else {
                // Crash after the Complete record: the finished job is
                // not resurrected, but its id stays occupied by a
                // tombstone so later ids can never shift.
                assert_eq!(handles.len(), 1, "tombstone expected at cut {i}");
                assert!(
                    handles[0].wait().is_err(),
                    "cut {i}: a tombstone holds no result"
                );
            }
        } else {
            assert_eq!(handles.len(), 1);
            let result = handles[0].wait().expect("recovered job completes");
            assert_eq!(result.histogram, serial.histogram, "cut {i}: histogram");
            assert_eq!(result.stats, serial.stats, "cut {i}: stats");
            assert_eq!(result.mean_prob1, serial.mean_prob1, "cut {i}: mean P(1)");
            assert_eq!(result.shots, 400);
            recovered_runs += 1;
        }
        queue.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
    // Every cut from Admit up to (not including) Complete resumes the
    // job: 17 of the 19 prefixes.
    assert_eq!(recovered_runs, 17);
}

/// A crash mid-write leaves a torn final record; recovery truncates it
/// and the lost range simply re-runs — still bit-identical.
#[test]
fn torn_final_record_recovers_bit_identically() {
    let (bytes, serial, _job) = completed_run("torn", 110);
    // Cut three bytes into the final (Complete) record's payload: the
    // job replays as incomplete-but-fully-folded and finalizes on
    // recovery.
    let dir = crash_image("torn-cut", &bytes, bytes.len() - 3);
    let jc = JournalConfig::new(&dir);
    let (queue, report) = JobQueue::recover(serve_config(), local_pool(1), &jc).expect("recovers");
    assert!(report.torn_tail, "mid-record cut must be reported as torn");
    assert_eq!(report.jobs_recovered, 1);
    assert_eq!(report.ranges_recovered, 16);
    let handles = queue.job_handles();
    let result = handles[0].wait().expect("completes");
    assert_eq!(result.histogram, serial.histogram);
    assert_eq!(result.stats, serial.stats);
    assert_eq!(result.mean_prob1, serial.mean_prob1);
    queue.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Retention eviction must be durable *before* the job is released: a
/// crash immediately after `release()` returns — simulated by copying
/// the journal at that instant — must never resurrect the evicted job.
#[test]
fn eviction_is_durable_before_release_returns() {
    let dir = temp_dir("evict");
    let job = clifford_job("evict", 120, 100, 7);
    let jc = JournalConfig::new(&dir);
    let (queue, _) =
        JobQueue::recover(serve_config(), local_pool(1), &jc).expect("cold start recovers");
    let handles = queue
        .submit(Submission::job("tenant-e", job))
        .expect("submits");
    handles[0].wait().expect("completes");
    assert!(handles[0].release(), "completed job releases");

    // Crash *now*: snapshot the journal exactly as it stands, before
    // any clean shutdown could paper over a missing Complete record.
    let segs = segments(&dir);
    let bytes = std::fs::read(&segs[0]).expect("read segment");
    let image = crash_image("evict-crash", &bytes, bytes.len());
    queue.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let (queue2, report) =
        JobQueue::recover(serve_config(), local_pool(1), &JournalConfig::new(&image))
            .expect("recovers");
    assert_eq!(report.jobs_recovered, 0, "released job must not resurrect");
    assert_eq!(report.jobs_dropped, 1, "its Complete record was durable");
    let handles2 = queue2.job_handles();
    assert_eq!(
        handles2.len(),
        1,
        "the released job's id stays occupied by a tombstone"
    );
    assert!(handles2[0].wait().is_err(), "a tombstone holds no result");
    queue2.shutdown();
    let _ = std::fs::remove_dir_all(&image);
}

/// Admission pre-warms the prefix snapshot off the hot path: with a
/// held (zero-backend) queue nothing can dispatch, yet the job's shape
/// becomes warm in the prefix cache — so the first batch, whenever
/// capacity arrives, starts from a cache hit.
#[test]
fn admission_pre_warms_the_prefix_cache() {
    if std::env::var("EQASM_PREFIX").is_ok_and(|v| v.eq_ignore_ascii_case("off")) {
        return; // forking disabled: nothing to warm
    }
    let job = clifford_job("warm-admit", 130, 200, 3);
    assert!(!prefix::is_warm(&job), "distinct shape starts cold");
    let queue = JobQueue::with_backends(serve_config().with_hold_when_empty(true), Vec::new());
    let handles = queue
        .submit(Submission::job("tenant-w", job.clone()))
        .expect("submits");

    let deadline = Instant::now() + Duration::from_secs(30);
    while !prefix::is_warm(&job) {
        assert!(
            Instant::now() < deadline,
            "admission warmer never produced a snapshot"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Capacity arrives after the warm-up: the run must still be exact.
    queue
        .attach_backend(Box::new(LocalBackend::new(0)))
        .expect("attaches");
    let result = handles[0].wait().expect("completes");
    let serial = ShotEngine::serial()
        .with_batch_size(25)
        .run_job(&job)
        .expect("serial reference");
    assert_eq!(result.histogram, serial.histogram);
    queue.shutdown();
}

/// Recovery re-warms the prefix cache for every re-admitted job, even
/// after the cache itself was lost (here: evicted by eight newer
/// shapes, standing in for the process restart that recovery models).
#[test]
fn recovery_pre_warms_the_prefix_cache() {
    if std::env::var("EQASM_PREFIX").is_ok_and(|v| v.eq_ignore_ascii_case("off")) {
        return; // forking disabled: nothing to warm
    }
    // Journal an admission without letting anything run.
    let dir = temp_dir("warm-recover");
    let job = clifford_job("warm-recover", 140, 200, 5);
    let jc = JournalConfig::new(&dir);
    let (queue, _) = JobQueue::recover(serve_config().with_hold_when_empty(true), Vec::new(), &jc)
        .expect("cold start recovers");
    queue
        .submit(Submission::job("tenant-w", job.clone()))
        .expect("submits");
    queue.shutdown();

    // Evict this shape: the cache keeps the 8 most recent shapes, so
    // warming 8 unrelated ones guarantees it is gone (concurrent tests
    // use their own distinct shapes and never re-add this one).
    for wait in 900..908 {
        prefix::warm(&clifford_job("evictor", wait, 1, 0));
    }
    assert!(!prefix::is_warm(&job), "shape evicted before recovery");

    let (queue2, report) =
        JobQueue::recover(serve_config().with_hold_when_empty(true), Vec::new(), &jc)
            .expect("recovers");
    assert_eq!(report.jobs_recovered, 1);

    let deadline = Instant::now() + Duration::from_secs(30);
    while !prefix::is_warm(&job) {
        assert!(
            Instant::now() < deadline,
            "recovery warmer never produced a snapshot"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    queue2
        .attach_backend(Box::new(LocalBackend::new(0)))
        .expect("attaches");
    let result = queue2.job_handles()[0].wait().expect("completes");
    let serial = ShotEngine::serial()
        .with_batch_size(25)
        .run_job(&job)
        .expect("serial reference");
    assert_eq!(result.histogram, serial.histogram);
    assert_eq!(result.stats, serial.stats);
    queue2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A recovered job keeps its pre-crash coordinator id: the serve
/// acceptor seeds its job directory from the queue at startup, in
/// admission order — the same order SUBMIT_ACK handed ids out before
/// the crash. A client that held `--job 1` can still status/watch it
/// on the restarted coordinator without ever re-submitting.
#[test]
fn recovered_job_is_addressable_by_its_precrash_id() {
    use eqasm_runtime::{spawn_serve, Client, ServeNetConfig};
    use std::net::TcpListener;
    use std::sync::Arc;

    let (bytes, serial, job) = completed_run("addr", 150);
    let cuts = record_cuts(&bytes);
    // Crash after the Admit record and a handful of folded ranges.
    let dir = crash_image("addr-cut", &bytes, cuts[6]);
    let jc = JournalConfig::new(&dir);
    let (queue, report) = JobQueue::recover(serve_config(), local_pool(2), &jc).expect("recovers");
    assert_eq!(report.jobs_recovered, 1);

    let queue = Arc::new(queue);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let handle =
        spawn_serve(listener, Arc::clone(&queue), ServeNetConfig::default()).expect("spawn serve");
    let client = Client::connect(addr.to_string()).expect("connects");
    // Pre-crash SUBMIT_ACK handed out id 1; it survives the restart.
    let snapshot = client.poll_id(1).expect("recovered job resolves by id");
    assert_eq!(snapshot.name, job.name);
    let result = client.wait_id(1).expect("recovered job completes");
    assert_eq!(result.histogram, serial.histogram);
    assert_eq!(result.stats, serial.stats);
    assert_eq!(result.mean_prob1, serial.mean_prob1);
    // The restarted directory's id counter resumes *after* the seeded
    // jobs: no other job exists yet, so id 2 must still be unknown.
    assert!(client.poll_id(2).is_err());
    drop(client);
    drop(handle);
    queue.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The multi-job version of id stability: with several jobs in flight,
/// a job whose `Complete` record was durable before the crash must not
/// compact later jobs' queue indices on recovery — its id becomes a
/// tombstone, and every survivor resolves by its pre-crash id with
/// bit-identical aggregates.
#[test]
fn completed_jobs_do_not_shift_recovered_ids() {
    use eqasm_runtime::{spawn_serve, Client, ServeNetConfig};
    use std::net::TcpListener;
    use std::sync::Arc;

    let jobs: Vec<Job> = (0u32..3)
        .map(|i| clifford_job(&format!("ids-{i}"), 170 + i, 100, 21 + u64::from(i)))
        .collect();
    let serials: Vec<_> = jobs
        .iter()
        .map(|j| {
            ShotEngine::serial()
                .with_batch_size(25)
                .run_job(j)
                .expect("serial reference")
        })
        .collect();

    // Journal all three admissions before any record of progress, then
    // let one backend run them to completion.
    let dir = temp_dir("idshift");
    let jc = JournalConfig::new(&dir);
    let (queue, _) = JobQueue::recover(serve_config().with_hold_when_empty(true), Vec::new(), &jc)
        .expect("cold start recovers");
    let handles: Vec<_> = jobs
        .iter()
        .map(|j| {
            queue
                .submit(Submission::job("tenant-i", j.clone()))
                .expect("submits")
                .remove(0)
        })
        .collect();
    queue
        .attach_backend(Box::new(LocalBackend::new(0)))
        .expect("attaches");
    for h in &handles {
        h.wait().expect("completes");
    }
    queue.shutdown();

    let segs = segments(&dir);
    assert_eq!(segs.len(), 1, "small run stays in one segment");
    let bytes = std::fs::read(&segs[0]).expect("read segment");
    // Crash immediately after the first Complete record: one job's
    // completion is durable, the other two are mid-flight.
    let (cut, done_id) = records(&bytes)
        .into_iter()
        .find_map(|(cut, tag, id)| (tag == 3).then_some((cut, id as usize)))
        .expect("a Complete record exists");
    let image = crash_image("idshift-cut", &bytes, cut);
    let _ = std::fs::remove_dir_all(&dir);

    let (queue2, report) =
        JobQueue::recover(serve_config(), local_pool(2), &JournalConfig::new(&image))
            .expect("recovers");
    assert_eq!(report.jobs_dropped, 1, "the durably-completed job drops");
    assert_eq!(report.jobs_recovered, 2, "the other two resume");
    let handles2 = queue2.job_handles();
    assert_eq!(handles2.len(), 3, "the dropped job's id stays occupied");
    assert!(
        handles2[done_id].wait().is_err(),
        "the completed job is a tombstone, not a resurrected run"
    );

    // Address the survivors over the front door exactly as a pre-crash
    // client would (SUBMIT_ACK ids are queue index + 1).
    let queue2 = Arc::new(queue2);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let serve =
        spawn_serve(listener, Arc::clone(&queue2), ServeNetConfig::default()).expect("spawn serve");
    let client = Client::connect(addr.to_string()).expect("connects");
    for (i, job) in jobs.iter().enumerate() {
        if i == done_id {
            continue;
        }
        let id = i as u64 + 1;
        let snapshot = client.poll_id(id).expect("survivor resolves by id");
        assert_eq!(
            snapshot.name, job.name,
            "id {id} must name its pre-crash job"
        );
        let result = client.wait_id(id).expect("survivor completes");
        assert_eq!(result.histogram, serials[i].histogram, "job {i}: histogram");
        assert_eq!(result.stats, serials[i].stats, "job {i}: stats");
        assert_eq!(
            result.mean_prob1, serials[i].mean_prob1,
            "job {i}: mean P(1)"
        );
    }
    // The directory counter resumed past every pre-crash id.
    assert!(client.poll_id(4).is_err());
    drop(client);
    drop(serve);
    queue2.shutdown();
    let _ = std::fs::remove_dir_all(&image);
}

/// Compaction drops completed jobs from the journal entirely, so after
/// a restart their Admit records are gone — yet their ids must stay
/// occupied, across *multiple* restarts: the checkpoint's id
/// high-water mark, not the sparse surviving Admits, defines the id
/// space.
#[test]
fn compacted_ids_stay_stable_across_restarts() {
    let dir = temp_dir("compact-ids");
    // A zero floor lets the 2×live+4096-byte amortization rule fire on
    // a small test workload.
    let jc = JournalConfig::new(&dir).with_compact_min_bytes(0);
    let (queue, _) =
        JobQueue::recover(serve_config(), local_pool(1), &jc).expect("cold start recovers");

    // Complete jobs until compaction rewrites the journal into a later
    // segment (observable as the first segment file disappearing).
    let mut count = 0u32;
    loop {
        let job = clifford_job(
            &format!("compact-{count}"),
            210 + count,
            100,
            31 + u64::from(count),
        );
        let handle = queue
            .submit(Submission::job("tenant-c", job))
            .expect("submits")
            .remove(0);
        handle.wait().expect("completes");
        count += 1;
        let segs = segments(&dir);
        if !segs.is_empty() && !segs[0].ends_with("segment-00000000.eqjl") {
            break;
        }
        assert!(count < 64, "compaction never triggered");
    }
    queue.shutdown();

    // Restart #1: nothing resumes, but every pre-crash id must still
    // be occupied — the compacted checkpoint carried the high-water
    // mark even though the completed jobs' records are gone.
    let (queue2, report) = JobQueue::recover(serve_config(), local_pool(1), &jc).expect("recovers");
    assert_eq!(report.jobs_recovered, 0, "all jobs had completed");
    let handles2 = queue2.job_handles();
    assert_eq!(
        handles2.len(),
        count as usize,
        "every pre-crash id stays occupied after compaction"
    );
    for h in &handles2 {
        assert!(h.wait().is_err(), "tombstones hold no result");
    }

    // New work lands above the pre-crash id space and runs exactly.
    let job = clifford_job("compact-new", 209, 100, 97);
    let serial = ShotEngine::serial()
        .with_batch_size(25)
        .run_job(&job)
        .expect("serial reference");
    let handle = queue2
        .submit(Submission::job("tenant-c", job))
        .expect("submits")
        .remove(0);
    let result = handle.wait().expect("completes");
    assert_eq!(result.histogram, serial.histogram);
    assert_eq!(result.stats, serial.stats);
    assert_eq!(queue2.job_handles().len(), count as usize + 1);
    queue2.shutdown();

    // Restart #2: the resumed journal (fresh checkpoint plus the new
    // job's records) reproduces the same id layout again.
    let (queue3, report3) =
        JobQueue::recover(serve_config(), local_pool(1), &jc).expect("recovers again");
    assert_eq!(report3.jobs_recovered, 0);
    assert_eq!(
        queue3.job_handles().len(),
        count as usize + 1,
        "id layout survives a second restart"
    );
    queue3.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
