//! Crash-recovery contracts of the durable coordinator: a queue killed
//! at *any* point and restarted from its write-ahead journal finishes
//! every job with aggregates bit-identical to an uninterrupted run.
//!
//! The tests simulate crashes at the file level: run a journaled queue
//! to completion, then replay recovery from every record-boundary
//! prefix of the segment it wrote — each prefix is exactly the on-disk
//! state a `kill -9` between two fold steps would have left (the
//! journal is append-only, so a crash image *is* a prefix). A cut in
//! the middle of the final record exercises the torn-tail path.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use eqasm_asm::assemble;
use eqasm_core::Instantiation;
use eqasm_runtime::prefix;
use eqasm_runtime::{
    ExecBackend, Job, JobQueue, JournalConfig, LocalBackend, ServeConfig, ShotEngine, Submission,
};

/// A Clifford-only two-qubit program with genuinely random outcomes on
/// both measured qubits, so a recovery bug (lost range, double fold,
/// wrong seed offset) cannot hide behind a deterministic histogram.
/// The `wait` parameter varies the program shape, giving each test its
/// own prefix-cache key (the cache is process-global and the tests in
/// this binary run concurrently).
fn clifford_program(wait: u32) -> String {
    format!(
        "SMIS S0, {{0}}
SMIS S1, {{1}}
SMIT T0, {{(0, 2)}}
QWAIT {wait}
H S0
CZ T0
X90 S1
MEASZ S0
MEASZ S1
QWAIT 50
STOP"
    )
}

fn clifford_job(name: &str, wait: u32, shots: u64, base_seed: u64) -> Job {
    let inst = Instantiation::paper_two_qubit();
    let program = assemble(&clifford_program(wait), &inst).expect("assembles");
    Job::new(name, inst, program.instructions().to_vec())
        .with_shots(shots)
        .with_seed(base_seed)
}

/// A fresh unique journal directory under the system temp dir.
fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "eqasm-recovery-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn local_pool(workers: usize) -> Vec<Box<dyn ExecBackend>> {
    (0..workers)
        .map(|i| Box::new(LocalBackend::new(i)) as Box<dyn ExecBackend>)
        .collect()
}

fn serve_config() -> ServeConfig {
    ServeConfig::default().with_batch_size(25)
}

/// The sorted segment files of a journal directory.
fn segments(dir: &Path) -> Vec<PathBuf> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("journal dir readable")
        .filter_map(|e| {
            let path = e.expect("dir entry").path();
            path.extension()
                .is_some_and(|x| x == "eqjl")
                .then_some(path)
        })
        .collect();
    out.sort();
    out
}

/// Byte offsets of every record boundary in a segment: walking the
/// length-prefixed frames from the 8-byte header, each entry is the
/// offset just *after* one record — i.e. the file length a crash
/// between that record and the next would have left behind.
fn record_cuts(bytes: &[u8]) -> Vec<usize> {
    let mut cuts = Vec::new();
    let mut off = 8;
    while off + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        off += 8 + len;
        assert!(off <= bytes.len(), "segment frame overruns the file");
        cuts.push(off);
    }
    cuts
}

/// Writes the first `len` bytes of `segment` as the sole segment of a
/// fresh journal directory — the crash image to recover from.
fn crash_image(tag: &str, segment: &[u8], len: usize) -> PathBuf {
    let dir = temp_dir(tag);
    std::fs::create_dir_all(&dir).expect("create crash-image dir");
    std::fs::write(dir.join("segment-00000000.eqjl"), &segment[..len]).expect("write crash image");
    dir
}

/// Runs one journaled clifford job to completion and returns the bytes
/// of the single segment it left behind, plus the expected serial
/// result for comparison.
fn completed_run(tag: &str, wait: u32) -> (Vec<u8>, eqasm_runtime::JobResult, Job) {
    let dir = temp_dir(tag);
    let job = clifford_job(tag, wait, 400, 11);
    let jc = JournalConfig::new(&dir);
    let (queue, report) =
        JobQueue::recover(serve_config(), local_pool(1), &jc).expect("cold start recovers");
    assert_eq!(report.jobs_recovered, 0, "cold start has nothing to replay");
    let handles = queue
        .submit(Submission::job("tenant-r", job.clone()))
        .expect("submits");
    handles[0].wait().expect("completes");
    queue.shutdown();

    let segs = segments(&dir);
    assert_eq!(segs.len(), 1, "small run stays in one segment");
    let bytes = std::fs::read(&segs[0]).expect("read segment");
    let _ = std::fs::remove_dir_all(&dir);

    let serial = ShotEngine::serial()
        .with_batch_size(25)
        .run_job(&job)
        .expect("serial reference");
    (bytes, serial, job)
}

/// The tentpole acceptance check: crash the coordinator between every
/// fold step (every record-boundary prefix of the journal), recover,
/// finish the job, and require aggregates bit-identical to a serial
/// uninterrupted run — histogram, stats and mean P(1), not just counts.
#[test]
fn kill_between_every_fold_step_recovers_bit_identically() {
    let (bytes, serial, _job) = completed_run("killstep", 100);
    let cuts = record_cuts(&bytes);
    // Checkpoint + Admit + 16 RangeDone + Complete.
    assert_eq!(cuts.len(), 19, "expected record count for 400/25 shots");

    let mut recovered_runs = 0usize;
    for (i, &cut) in cuts.iter().enumerate() {
        let dir = crash_image("killstep-cut", &bytes, cut);
        let jc = JournalConfig::new(&dir);
        let (queue, report) =
            JobQueue::recover(serve_config(), local_pool(2), &jc).expect("recovers");
        assert!(!report.torn_tail, "record-boundary cuts are never torn");
        let handles = queue.job_handles();
        if report.jobs_recovered == 0 {
            // Crash before the Admit record was durable, or after the
            // Complete record: nothing to resume, and critically
            // nothing resurrected.
            assert!(handles.is_empty(), "no jobs expected at cut {i}");
        } else {
            assert_eq!(handles.len(), 1);
            let result = handles[0].wait().expect("recovered job completes");
            assert_eq!(result.histogram, serial.histogram, "cut {i}: histogram");
            assert_eq!(result.stats, serial.stats, "cut {i}: stats");
            assert_eq!(result.mean_prob1, serial.mean_prob1, "cut {i}: mean P(1)");
            assert_eq!(result.shots, 400);
            recovered_runs += 1;
        }
        queue.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }
    // Every cut from Admit up to (not including) Complete resumes the
    // job: 17 of the 19 prefixes.
    assert_eq!(recovered_runs, 17);
}

/// A crash mid-write leaves a torn final record; recovery truncates it
/// and the lost range simply re-runs — still bit-identical.
#[test]
fn torn_final_record_recovers_bit_identically() {
    let (bytes, serial, _job) = completed_run("torn", 110);
    // Cut three bytes into the final (Complete) record's payload: the
    // job replays as incomplete-but-fully-folded and finalizes on
    // recovery.
    let dir = crash_image("torn-cut", &bytes, bytes.len() - 3);
    let jc = JournalConfig::new(&dir);
    let (queue, report) = JobQueue::recover(serve_config(), local_pool(1), &jc).expect("recovers");
    assert!(report.torn_tail, "mid-record cut must be reported as torn");
    assert_eq!(report.jobs_recovered, 1);
    assert_eq!(report.ranges_recovered, 16);
    let handles = queue.job_handles();
    let result = handles[0].wait().expect("completes");
    assert_eq!(result.histogram, serial.histogram);
    assert_eq!(result.stats, serial.stats);
    assert_eq!(result.mean_prob1, serial.mean_prob1);
    queue.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Retention eviction must be durable *before* the job is released: a
/// crash immediately after `release()` returns — simulated by copying
/// the journal at that instant — must never resurrect the evicted job.
#[test]
fn eviction_is_durable_before_release_returns() {
    let dir = temp_dir("evict");
    let job = clifford_job("evict", 120, 100, 7);
    let jc = JournalConfig::new(&dir);
    let (queue, _) =
        JobQueue::recover(serve_config(), local_pool(1), &jc).expect("cold start recovers");
    let handles = queue
        .submit(Submission::job("tenant-e", job))
        .expect("submits");
    handles[0].wait().expect("completes");
    assert!(handles[0].release(), "completed job releases");

    // Crash *now*: snapshot the journal exactly as it stands, before
    // any clean shutdown could paper over a missing Complete record.
    let segs = segments(&dir);
    let bytes = std::fs::read(&segs[0]).expect("read segment");
    let image = crash_image("evict-crash", &bytes, bytes.len());
    queue.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    let (queue2, report) =
        JobQueue::recover(serve_config(), local_pool(1), &JournalConfig::new(&image))
            .expect("recovers");
    assert_eq!(report.jobs_recovered, 0, "released job must not resurrect");
    assert_eq!(report.jobs_dropped, 1, "its Complete record was durable");
    assert!(queue2.job_handles().is_empty());
    queue2.shutdown();
    let _ = std::fs::remove_dir_all(&image);
}

/// Admission pre-warms the prefix snapshot off the hot path: with a
/// held (zero-backend) queue nothing can dispatch, yet the job's shape
/// becomes warm in the prefix cache — so the first batch, whenever
/// capacity arrives, starts from a cache hit.
#[test]
fn admission_pre_warms_the_prefix_cache() {
    if std::env::var("EQASM_PREFIX").is_ok_and(|v| v.eq_ignore_ascii_case("off")) {
        return; // forking disabled: nothing to warm
    }
    let job = clifford_job("warm-admit", 130, 200, 3);
    assert!(!prefix::is_warm(&job), "distinct shape starts cold");
    let queue = JobQueue::with_backends(serve_config().with_hold_when_empty(true), Vec::new());
    let handles = queue
        .submit(Submission::job("tenant-w", job.clone()))
        .expect("submits");

    let deadline = Instant::now() + Duration::from_secs(30);
    while !prefix::is_warm(&job) {
        assert!(
            Instant::now() < deadline,
            "admission warmer never produced a snapshot"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    // Capacity arrives after the warm-up: the run must still be exact.
    queue
        .attach_backend(Box::new(LocalBackend::new(0)))
        .expect("attaches");
    let result = handles[0].wait().expect("completes");
    let serial = ShotEngine::serial()
        .with_batch_size(25)
        .run_job(&job)
        .expect("serial reference");
    assert_eq!(result.histogram, serial.histogram);
    queue.shutdown();
}

/// Recovery re-warms the prefix cache for every re-admitted job, even
/// after the cache itself was lost (here: evicted by eight newer
/// shapes, standing in for the process restart that recovery models).
#[test]
fn recovery_pre_warms_the_prefix_cache() {
    if std::env::var("EQASM_PREFIX").is_ok_and(|v| v.eq_ignore_ascii_case("off")) {
        return; // forking disabled: nothing to warm
    }
    // Journal an admission without letting anything run.
    let dir = temp_dir("warm-recover");
    let job = clifford_job("warm-recover", 140, 200, 5);
    let jc = JournalConfig::new(&dir);
    let (queue, _) = JobQueue::recover(serve_config().with_hold_when_empty(true), Vec::new(), &jc)
        .expect("cold start recovers");
    queue
        .submit(Submission::job("tenant-w", job.clone()))
        .expect("submits");
    queue.shutdown();

    // Evict this shape: the cache keeps the 8 most recent shapes, so
    // warming 8 unrelated ones guarantees it is gone (concurrent tests
    // use their own distinct shapes and never re-add this one).
    for wait in 900..908 {
        prefix::warm(&clifford_job("evictor", wait, 1, 0));
    }
    assert!(!prefix::is_warm(&job), "shape evicted before recovery");

    let (queue2, report) =
        JobQueue::recover(serve_config().with_hold_when_empty(true), Vec::new(), &jc)
            .expect("recovers");
    assert_eq!(report.jobs_recovered, 1);

    let deadline = Instant::now() + Duration::from_secs(30);
    while !prefix::is_warm(&job) {
        assert!(
            Instant::now() < deadline,
            "recovery warmer never produced a snapshot"
        );
        std::thread::sleep(Duration::from_millis(2));
    }

    queue2
        .attach_backend(Box::new(LocalBackend::new(0)))
        .expect("attaches");
    let result = queue2.job_handles()[0].wait().expect("completes");
    let serial = ShotEngine::serial()
        .with_batch_size(25)
        .run_job(&job)
        .expect("serial reference");
    assert_eq!(result.histogram, serial.histogram);
    assert_eq!(result.stats, serial.stats);
    queue2.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A recovered job keeps its pre-crash coordinator id: the serve
/// acceptor seeds its job directory from the queue at startup, in
/// admission order — the same order SUBMIT_ACK handed ids out before
/// the crash. A client that held `--job 1` can still status/watch it
/// on the restarted coordinator without ever re-submitting.
#[test]
fn recovered_job_is_addressable_by_its_precrash_id() {
    use eqasm_runtime::{spawn_serve, Client, ServeNetConfig};
    use std::net::TcpListener;
    use std::sync::Arc;

    let (bytes, serial, job) = completed_run("addr", 150);
    let cuts = record_cuts(&bytes);
    // Crash after the Admit record and a handful of folded ranges.
    let dir = crash_image("addr-cut", &bytes, cuts[6]);
    let jc = JournalConfig::new(&dir);
    let (queue, report) = JobQueue::recover(serve_config(), local_pool(2), &jc).expect("recovers");
    assert_eq!(report.jobs_recovered, 1);

    let queue = Arc::new(queue);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let handle =
        spawn_serve(listener, Arc::clone(&queue), ServeNetConfig::default()).expect("spawn serve");
    let client = Client::connect(addr.to_string()).expect("connects");
    // Pre-crash SUBMIT_ACK handed out id 1; it survives the restart.
    let snapshot = client.poll_id(1).expect("recovered job resolves by id");
    assert_eq!(snapshot.name, job.name);
    let result = client.wait_id(1).expect("recovered job completes");
    assert_eq!(result.histogram, serial.histogram);
    assert_eq!(result.stats, serial.stats);
    assert_eq!(result.mean_prob1, serial.mean_prob1);
    // The restarted directory's id counter resumes *after* the seeded
    // jobs: no other job exists yet, so id 2 must still be unknown.
    assert!(client.poll_id(2).is_err());
    drop(client);
    drop(handle);
    queue.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
