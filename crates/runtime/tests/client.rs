//! End-to-end tests of the serve front door: a [`Client`] submits a
//! multi-tenant mix to a `spawn_serve` acceptor over real TCP,
//! streams [`PartialResult`] snapshots, and every streamed prefix and
//! final aggregate must be **bit-identical** to local execution of
//! the same jobs — the serve queue's determinism invariant, proven
//! across the client wire. (CI additionally runs the same contract
//! against a separate `eqasm-cli serve --listen` *process* via
//! `eqasm-cli submit --connect --verify-serial`.)

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use eqasm_core::{Instantiation, Qubit, Topology};
use eqasm_microarch::{RunStats, SimConfig};
use eqasm_quantum::{NoiseModel, ReadoutModel};
use eqasm_runtime::serve::{JobQueue, ServeConfig, Submission};
use eqasm_runtime::{
    spawn_serve, Client, ConnectOptions, Histogram, Job, LocalBackend, Psk, RuntimeError,
    ServeHandle, ServeNetConfig, ShotEngine, WorkloadKind, WorkloadSpec,
};

/// A noisy RB job on the stochastic trajectory backend: every shot
/// consumes randomness, so any divergence between the remote and
/// local paths shows up in the aggregates.
fn noisy_job(name: &str, shots: u64, base_seed: u64) -> Job {
    let inst = Instantiation::paper().with_topology(Topology::linear(1));
    let (program, _) =
        eqasm_workloads::rb_program(&inst, Qubit::new(0), 10, 1, 0xfeed).expect("rb emits");
    let config = SimConfig::default()
        .with_noise(NoiseModel::with_coherence(20_000.0, 15_000.0).with_gate_error(0.002, 0.0))
        .with_readout(ReadoutModel::symmetric(0.05));
    Job::new(name, inst, program)
        .with_config(config)
        .with_shots(shots)
        .with_seed(base_seed)
}

/// A queue with `workers` local slots behind a loopback acceptor.
fn serve_fixture(workers: usize, batch: u64, net: ServeNetConfig) -> (Arc<JobQueue>, ServeHandle) {
    let queue = Arc::new(JobQueue::new(
        ServeConfig::default()
            .with_workers(workers)
            .with_batch_size(batch),
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let handle = spawn_serve(listener, Arc::clone(&queue), net).expect("spawn serve");
    (queue, handle)
}

/// Per-prefix serial references for `job` at batch size `batch`:
/// entry `k` is (histogram, stats, mean-prob1) of the first `k`
/// batches, folded in batch order — what any snapshot with
/// `batches_done == k` must match bit-exactly.
fn prefix_references(job: &Job, batch: u64) -> Vec<(Histogram, RunStats, Vec<f64>)> {
    use eqasm_runtime::ExecBackend as _;
    let num_qubits = job.inst.topology().num_qubits();
    let mut backend = LocalBackend::new(0);
    let mut histogram = Histogram::new();
    let mut stats = RunStats::default();
    let mut prob1_sum = vec![0.0f64; num_qubits];
    let mut shots_done = 0u64;
    let mut prefixes = vec![(histogram.clone(), stats, prob1_sum.clone())];
    let mut start = 0u64;
    while start < job.shots {
        let end = (start + batch).min(job.shots);
        let out = backend.run_range(job, start..end).expect("reference range");
        histogram.merge(&out.histogram);
        stats.merge(&out.stats);
        for (acc, s) in prob1_sum.iter_mut().zip(&out.prob1_sum) {
            *acc += s;
        }
        shots_done += end - start;
        let mean: Vec<f64> = prob1_sum.iter().map(|s| s / shots_done as f64).collect();
        prefixes.push((histogram.clone(), stats, mean));
        start = end;
    }
    prefixes
}

/// The acceptance criterion: a remote client submits a multi-tenant
/// mix over TCP, streams partials, and every streamed prefix and the
/// final aggregate are bit-identical to `ShotEngine::run_job`.
#[test]
fn remote_mix_streams_bit_identical_prefixes_and_finals() {
    let batch = 8u64;
    let (_queue, server) = serve_fixture(2, batch, ServeNetConfig::default());
    let client = Client::connect(server.addr().to_string()).expect("connects");
    assert_eq!(client.protocol(), eqasm_runtime::wire::PROTOCOL_VERSION);

    // A multi-tenant mix: two prebuilt jobs under different tenants
    // plus a two-instance workload spec under a third.
    let job_a = noisy_job("client-a", 96, 1111);
    let job_b = noisy_job("client-b", 64, 2222);
    let spec = WorkloadSpec::new(
        "reset-sweep",
        WorkloadKind::ActiveReset { init_cycles: 40 },
        48,
    )
    .with_weight(2)
    .with_seed(33);

    let handles_a = client
        .submit(Submission::job("tenant-a", job_a.clone()))
        .expect("submits a");
    let handles_b = client
        .submit(Submission::job("tenant-b", job_b.clone()))
        .expect("submits b");
    let handles_spec = client
        .submit(Submission::workload("tenant-c", spec.clone()))
        .expect("submits spec");
    assert_eq!(handles_a.len(), 1);
    assert_eq!(handles_b.len(), 1);
    assert_eq!(handles_spec.len(), 2, "weight-2 spec expands to 2 jobs");

    // Stream job A, checking every observed snapshot against the
    // serial per-prefix references.
    let prefixes = prefix_references(&job_a, batch);
    let mut snapshots_seen = 0usize;
    let result_a = handles_a[0]
        .watch(|snap| {
            snapshots_seen += 1;
            assert_eq!(snap.shots_total, 96);
            assert_eq!(snap.tenant.as_str(), "tenant-a");
            let (h, s, m) = &prefixes[snap.batches_done];
            assert_eq!(&snap.histogram, h, "prefix {} histogram", snap.batches_done);
            assert_eq!(&snap.stats, s, "prefix {} stats", snap.batches_done);
            assert_eq!(&snap.mean_prob1, m, "prefix {} mean", snap.batches_done);
        })
        .expect("job a completes");
    assert!(snapshots_seen > 0, "subscription must stream snapshots");

    let reference_a = ShotEngine::serial()
        .with_batch_size(batch)
        .run_job(&job_a)
        .expect("reference a");
    assert_eq!(result_a.histogram, reference_a.histogram);
    assert_eq!(result_a.stats, reference_a.stats);
    assert_eq!(result_a.mean_prob1, reference_a.mean_prob1);
    assert_eq!(result_a.shots, 96);

    // The other tenants' jobs: final aggregates bit-identical too.
    let result_b = handles_b[0].wait().expect("job b completes");
    let reference_b = ShotEngine::serial()
        .with_batch_size(batch)
        .run_job(&job_b)
        .expect("reference b");
    assert_eq!(result_b.histogram, reference_b.histogram);
    assert_eq!(result_b.stats, reference_b.stats);
    assert_eq!(result_b.mean_prob1, reference_b.mean_prob1);

    for (instance, handle) in handles_spec.iter().enumerate() {
        let result = handle.wait().expect("spec instance completes");
        let job = spec
            .build_instance(instance as u32)
            .expect("instance builds");
        let reference = ShotEngine::serial()
            .with_batch_size(batch)
            .run_job(&job)
            .expect("reference runs");
        assert_eq!(result.histogram, reference.histogram, "instance {instance}");
        assert_eq!(result.stats, reference.stats);
        assert_eq!(result.mean_prob1, reference.mean_prob1);
    }
}

#[test]
fn job_ids_are_visible_across_connections() {
    let (_queue, server) = serve_fixture(1, 8, ServeNetConfig::default());
    let submitter = Client::connect(server.addr().to_string()).expect("connects");
    let handles = submitter
        .submit(Submission::job("tenant", noisy_job("cross-conn", 32, 5)))
        .expect("submits");
    let job_id = handles[0].job_id();

    // A second, independent connection polls and waits on the id —
    // what `eqasm-cli status/watch --job <id>` does.
    let watcher = Client::connect(server.addr().to_string()).expect("second connection");
    let snap = watcher.poll_id(job_id).expect("polls");
    assert_eq!(snap.name, "cross-conn");
    assert_eq!(snap.shots_total, 32);
    let result = watcher.wait_id(job_id).expect("waits");
    assert_eq!(result.shots, 32);
    // And the original handle agrees.
    let own = handles[0].wait().expect("own wait");
    assert_eq!(own.histogram, result.histogram);
}

#[test]
fn unknown_job_id_is_a_typed_service_error() {
    let (_queue, server) = serve_fixture(1, 8, ServeNetConfig::default());
    let client = Client::connect(server.addr().to_string()).expect("connects");
    let err = client.poll_id(999_999).expect_err("unknown id");
    assert!(matches!(err, RuntimeError::Service(_)), "{err}");
    assert!(err.to_string().contains("unknown job id"), "{err}");
    // The connection survives a bad id: a real submission still works.
    let handles = client
        .submit(Submission::job("tenant", noisy_job("after-miss", 16, 6)))
        .expect("submits after miss");
    assert_eq!(handles[0].wait().expect("completes").shots, 16);
}

#[test]
fn serve_front_door_enforces_psk() {
    let psk = Psk::new(b"front-door-key".to_vec()).unwrap();
    let (_queue, server) = serve_fixture(1, 8, ServeNetConfig::default().with_psk(psk.clone()));
    let addr = server.addr().to_string();

    let err = Client::connect(addr.clone()).expect_err("keyless client refused");
    assert!(matches!(err, RuntimeError::Auth(_)), "{err}");

    let wrong = Psk::new(b"wrong".to_vec()).unwrap();
    let err = Client::connect_opts(addr.clone(), ConnectOptions::default().with_psk(wrong))
        .expect_err("wrong key refused");
    assert!(matches!(err, RuntimeError::Auth(_)), "{err}");

    let client = Client::connect_opts(addr, ConnectOptions::default().with_psk(psk))
        .expect("right key connects");
    let handles = client
        .submit(Submission::job("tenant", noisy_job("authed", 16, 8)))
        .expect("submits");
    assert_eq!(handles[0].wait().expect("completes").shots, 16);
}

#[test]
fn admission_rejection_crosses_the_wire_typed() {
    let queue = Arc::new(JobQueue::new(
        ServeConfig::default()
            .with_workers(1)
            .with_batch_size(8)
            .with_pending_cap(32),
    ));
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server =
        spawn_serve(listener, Arc::clone(&queue), ServeNetConfig::default()).expect("spawn serve");
    let client = Client::connect(server.addr().to_string()).expect("connects");

    let err = client
        .submit(Submission::job("greedy", noisy_job("too-big", 1_000, 1)))
        .expect_err("over-cap submission rejected");
    let rendered = err.to_string();
    assert!(
        rendered.contains("rejected at admission") && rendered.contains("32"),
        "admission details must survive the wire: {rendered}"
    );
    // Nothing was enqueued; a conforming submission goes through.
    let handles = client
        .submit(Submission::job("greedy", noisy_job("fits", 16, 2)))
        .expect("submits within cap");
    assert_eq!(handles[0].wait().expect("completes").shots, 16);
}

#[test]
fn front_door_requires_v2() {
    let (_queue, server) = serve_fixture(1, 8, ServeNetConfig::default());
    let err = Client::connect_opts(
        server.addr().to_string(),
        ConnectOptions::default().with_protocol_cap(1),
    )
    .expect_err("a v1 conversation cannot submit");
    assert!(matches!(err, RuntimeError::Service(_)), "{err}");
    assert!(err.to_string().contains("v2"), "{err}");
}

#[test]
fn keepalive_snapshots_are_deduplicated() {
    // A small job on a slow-snapshot acceptor: the client's watch
    // callback must see each prefix at most once even though the
    // server re-sends keepalives.
    let net = ServeNetConfig {
        keepalive: Duration::from_millis(10),
        ..ServeNetConfig::default()
    };
    let (_queue, server) = serve_fixture(1, 8, net);
    let client = Client::connect(server.addr().to_string()).expect("connects");
    let handles = client
        .submit(Submission::job("tenant", noisy_job("keepalive", 24, 3)))
        .expect("submits");
    let mut seen: Vec<usize> = Vec::new();
    handles[0]
        .watch(|snap| {
            if !snap.done {
                assert!(
                    !seen.contains(&snap.batches_done),
                    "prefix {} delivered twice",
                    snap.batches_done
                );
            }
            seen.push(snap.batches_done);
        })
        .expect("completes");
    assert!(!seen.is_empty());
}

#[test]
fn completed_retention_evicts_and_releases_old_jobs() {
    // Retention 2: the front door keeps at most 2 finished jobs
    // addressable; older ones are evicted (and their queue-side
    // payload released), while running and recent jobs stay intact.
    let net = ServeNetConfig::default().with_completed_retention(2);
    let (_queue, server) = serve_fixture(1, 8, net);
    let client = Client::connect(server.addr().to_string()).expect("connects");

    let mut ids = Vec::new();
    for i in 0..4u64 {
        let handles = client
            .submit(Submission::job(
                "tenant",
                noisy_job(&format!("retained-{i}"), 16, i),
            ))
            .expect("submits");
        // Finish each before the next submission so eviction sweeps
        // always find completed candidates.
        let result = handles[0].wait().expect("completes");
        assert_eq!(result.shots, 16);
        ids.push(handles[0].job_id());
    }

    // The oldest finished job aged out of the window...
    let err = client.poll_id(ids[0]).expect_err("evicted id");
    assert!(matches!(err, RuntimeError::Service(_)), "{err}");
    // ...while the newest is still addressable with its full result.
    let snap = client.poll_id(ids[3]).expect("recent id still polls");
    assert!(snap.done);
    assert_eq!(snap.shots_done, 16);
    assert!(!snap.histogram.is_empty(), "recent result payload intact");
}

/// Subscription resume across watcher *processes*: a fresh watch
/// seeded with a prefix some previous (dead) watcher already folded
/// must deliver only strictly-newer prefixes — never re-deliver, never
/// skip (each snapshot is a cumulative prefix) — and still end in the
/// identical final result. This is the in-process half of the CI leg
/// that kill -9's an `eqasm-cli watch` and restarts it with
/// `--resume-after`.
#[test]
fn seeded_resume_delivers_only_unseen_prefixes() {
    let batch = 8u64;
    let (_queue, server) = serve_fixture(2, batch, ServeNetConfig::default());
    let client = Client::connect(server.addr().to_string()).expect("connects");
    let job = noisy_job("resume", 96, 4242); // 12 batches of 8
    let handles = client
        .submit(Submission::job("tenant-r", job))
        .expect("submits");
    let job_id = handles[0].job_id();

    // The unbroken control: every delivered prefix, strictly
    // increasing, ending done.
    let mut unbroken = Vec::new();
    let full = client
        .watch_id(job_id, |s| unbroken.push(s.batches_done as u64))
        .expect("unbroken watch completes");
    assert!(unbroken.windows(2).all(|w| w[0] < w[1]), "{unbroken:?}");

    // A second watcher life resuming mid-stream: only prefixes past
    // the seed may arrive (the completion frame qualifies — its
    // prefix is the whole job), and the result is bit-identical.
    let resume_at = 5u64;
    let mut resumed = Vec::new();
    let res = client
        .watch_id_from(job_id, Some(resume_at), |s| {
            resumed.push(s.batches_done as u64)
        })
        .expect("resumed watch completes");
    assert!(!resumed.is_empty(), "resume must still complete the stream");
    assert!(
        resumed.iter().all(|&b| b > resume_at),
        "re-delivered at-or-below the resume point: {resumed:?}"
    );
    assert_eq!(res.histogram, full.histogram);
    assert_eq!(res.stats, full.stats);
    assert_eq!(res.mean_prob1, full.mean_prob1);

    // Resuming from the final prefix: nothing left but the completion
    // frame and the result.
    let mut tail = Vec::new();
    let res2 = client
        .watch_id_from(job_id, Some(12), |s| {
            assert!(s.done, "only the completion frame may follow");
            tail.push(s.batches_done);
        })
        .expect("tail resume completes");
    assert!(tail.len() <= 1, "{tail:?}");
    assert_eq!(res2.histogram, full.histogram);
}
