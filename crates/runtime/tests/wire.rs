//! Property tests of the wire protocol: round-trip fidelity over
//! random jobs and batch results (including `f64` bit patterns the
//! cross-host determinism argument depends on), and typed rejection of
//! malformed bytes.

use eqasm_core::{
    Bundle, BundleOp, CmpFlag, Gpr, Instantiation, Instruction, OpTarget, Qubit, SReg, TReg,
    Topology,
};
use eqasm_microarch::{BackendSelect, MeasurementSource, SimConfig, TimingPolicy};
use eqasm_quantum::{NoiseModel, ReadoutModel};
use eqasm_runtime::wire::{
    self, decode_batch_out, decode_job, encode_batch_out, encode_job, WireError,
};
use eqasm_runtime::{BatchOut, BitString, Histogram, Job};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------

/// An f64 from "interesting" bit patterns: ordinary values plus the
/// ones naive (value-based) encodings corrupt — NaN with payload,
/// signed zero, infinities, subnormals.
fn edge_f64(selector: u8, ordinary: f64) -> f64 {
    match selector % 8 {
        0 => f64::NAN,
        1 => f64::from_bits(0x7ff8_dead_beef_0001), // NaN with payload
        2 => -0.0,
        3 => f64::INFINITY,
        4 => f64::NEG_INFINITY,
        5 => f64::MIN_POSITIVE / 2.0, // subnormal
        _ => ordinary,
    }
}

fn arb_instruction() -> impl Strategy<Value = Instruction> {
    (0u8..21, any::<u32>(), any::<i32>(), any::<u16>()).prop_map(|(tag, a, b, c)| {
        let r = |v: u32| Gpr::new((v % 32) as u8);
        match tag {
            0 => Instruction::Nop,
            1 => Instruction::Stop,
            2 => Instruction::Cmp {
                rs: r(a),
                rt: r(a >> 8),
            },
            3 => Instruction::Br {
                flag: CmpFlag::ALL[(a % 12) as usize],
                offset: b,
            },
            4 => Instruction::Fbr {
                flag: CmpFlag::ALL[(a % 12) as usize],
                rd: r(a >> 8),
            },
            5 => Instruction::Ldi { rd: r(a), imm: b },
            6 => Instruction::Ldui {
                rd: r(a),
                imm: c,
                rs: r(a >> 8),
            },
            7 => Instruction::Ld {
                rd: r(a),
                rt: r(a >> 8),
                imm: b,
            },
            8 => Instruction::St {
                rs: r(a),
                rt: r(a >> 8),
                imm: b,
            },
            9 => Instruction::Fmr {
                rd: r(a),
                qubit: Qubit::new((a >> 8) as u8 % 7),
            },
            10 => Instruction::And {
                rd: r(a),
                rs: r(a >> 8),
                rt: r(a >> 16),
            },
            11 => Instruction::Or {
                rd: r(a),
                rs: r(a >> 8),
                rt: r(a >> 16),
            },
            12 => Instruction::Xor {
                rd: r(a),
                rs: r(a >> 8),
                rt: r(a >> 16),
            },
            13 => Instruction::Not {
                rd: r(a),
                rt: r(a >> 8),
            },
            14 => Instruction::Add {
                rd: r(a),
                rs: r(a >> 8),
                rt: r(a >> 16),
            },
            15 => Instruction::Sub {
                rd: r(a),
                rs: r(a >> 8),
                rt: r(a >> 16),
            },
            16 => Instruction::QWait { cycles: a },
            17 => Instruction::QWaitR { rs: r(a) },
            18 => Instruction::Smis {
                sd: SReg::new((a % 32) as u8),
                mask: b as u32,
            },
            19 => Instruction::Smit {
                td: TReg::new((a % 32) as u8),
                mask: b as u32,
            },
            _ => {
                // A bundle mixing a real op, a QNOP and explicit PI.
                let ops = vec![
                    BundleOp {
                        opcode: eqasm_core::QOpcode::new(c % 512),
                        target: match a % 3 {
                            0 => OpTarget::None,
                            1 => OpTarget::S(SReg::new((a >> 8) as u8 % 32)),
                            _ => OpTarget::T(TReg::new((a >> 8) as u8 % 32)),
                        },
                    },
                    BundleOp::QNOP,
                ];
                Instruction::Bundle(Bundle::with_pre_interval((a % 8) as u8, ops))
            }
        }
    })
}

fn arb_instantiation() -> impl Strategy<Value = Instantiation> {
    (0u8..4, 1usize..6).prop_map(|(kind, n)| match kind {
        0 => Instantiation::paper(),
        1 => Instantiation::paper_two_qubit(),
        2 => Instantiation::paper().with_topology(Topology::linear(n)),
        _ => Instantiation::paper().with_topology(Topology::fully_connected(n)),
    })
}

fn arb_sim_config() -> impl Strategy<Value = SimConfig> {
    (
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>()),
        (0.1f64..100.0, 0.0f64..1.0, 0.0f64..1.0),
        any::<u64>(),
        (0u8..3, any::<bool>(), any::<bool>(), any::<bool>()),
    )
        .prop_map(
            |((s1, s2, s3, s4), (cycle, p0, p1), seed, (src, b0, b1, b2))| SimConfig {
                cycle_time_ns: edge_f64(s1, cycle),
                noise: NoiseModel {
                    t1_ns: edge_f64(s2, cycle * 1000.0),
                    t2_ns: edge_f64(s3, cycle * 800.0),
                    depol_1q: p0,
                    depol_2q: p1,
                },
                readout: ReadoutModel {
                    p_read1_given0: edge_f64(s4, p0),
                    p_read0_given1: p1,
                },
                measurement_source: match src {
                    0 => MeasurementSource::Quantum,
                    1 => MeasurementSource::MockAlternating { start: b0 },
                    _ => MeasurementSource::MockFixed(vec![b0, b1, b2]),
                },
                timing_policy: if b1 {
                    TimingPolicy::Fault
                } else {
                    TimingPolicy::SlipAndCount
                },
                seed,
                max_classical_cycles: seed | 1,
                backend: match seed % 5 {
                    0 => BackendSelect::Auto,
                    1 => BackendSelect::Dense,
                    2 => BackendSelect::Stabilizer,
                    3 => BackendSelect::Density,
                    _ => BackendSelect::Pure,
                },
                record_trace: b0,
                ..SimConfig::default()
            },
        )
}

fn arb_job() -> impl Strategy<Value = Job> {
    (
        "[a-z][a-z0-9_-]{0,20}",
        arb_instantiation(),
        prop::collection::vec(arb_instruction(), 0..40),
        arb_sim_config(),
        any::<u64>(),
        any::<u64>(),
    )
        .prop_map(|(name, inst, program, config, shots, seed)| {
            Job::new(name, inst, program)
                .with_config(config)
                .with_shots(shots)
                .with_seed(seed)
        })
}

fn arb_batch_out() -> impl Strategy<Value = BatchOut> {
    (
        prop::collection::vec((any::<u64>(), any::<u64>(), 1u64..1000), 0..12),
        prop::collection::vec((any::<u8>(), any::<u64>()), 0..8),
        prop::collection::vec(any::<u64>(), 0..64),
        (any::<u64>(), any::<u64>(), any::<bool>()),
    )
        .prop_map(
            |(entries, prob1, durations, (non_halted, elapsed, failed))| {
                let mut histogram = Histogram::new();
                for (measured, bits, count) in entries {
                    histogram.add(
                        BitString {
                            measured,
                            bits: bits & measured,
                        },
                        count,
                    );
                }
                let mut stats = eqasm_microarch::RunStats::default();
                stats.classical_cycles = non_halted.wrapping_mul(3);
                stats.measurements = non_halted.rotate_left(7);
                BatchOut {
                    histogram,
                    stats,
                    prob1_sum: prob1
                        .into_iter()
                        .map(|(sel, bits)| edge_f64(sel, f64::from_bits(bits | 1).fract()))
                        .collect(),
                    durations_ns: durations,
                    non_halted,
                    first_failure: failed.then(|| (non_halted, "fault: test".to_owned())),
                    elapsed_ns: elapsed,
                }
            },
        )
}

// ---------------------------------------------------------------------
// Round-trip properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// decode(encode(job)) reproduces the job bit-exactly. Structural
    /// equality would miss NaN fields (NaN != NaN), so the property is
    /// canonical-bytes equality: re-encoding the decoded job yields
    /// the identical byte string, which covers every f64 bit pattern.
    #[test]
    fn job_roundtrip_canonical_bytes(job in arb_job()) {
        let bytes = encode_job(&job).expect("encodes");
        let decoded = decode_job(&bytes).expect("decodes");
        let re_encoded = encode_job(&decoded).expect("re-encodes");
        prop_assert_eq!(&bytes, &re_encoded, "wire bytes must be canonical");
        // Structural spot-checks on NaN-free fields.
        prop_assert_eq!(&job.name, &decoded.name);
        prop_assert_eq!(&job.program, &decoded.program);
        prop_assert_eq!(job.shots, decoded.shots);
        prop_assert_eq!(job.base_seed, decoded.base_seed);
        prop_assert_eq!(job.inst.topology(), decoded.inst.topology());
        prop_assert_eq!(job.inst.params(), decoded.inst.params());
        prop_assert_eq!(job.inst.ops(), decoded.inst.ops());
        prop_assert_eq!(job.config.seed, decoded.config.seed);
        // f64 fields compare by bit pattern.
        prop_assert_eq!(
            job.config.cycle_time_ns.to_bits(),
            decoded.config.cycle_time_ns.to_bits()
        );
        prop_assert_eq!(
            job.config.noise.t1_ns.to_bits(),
            decoded.config.noise.t1_ns.to_bits()
        );
        prop_assert_eq!(
            job.config.readout.p_read1_given0.to_bits(),
            decoded.config.readout.p_read1_given0.to_bits()
        );
    }

    /// Same property for batch results, plus structural equality of
    /// the deterministic aggregate fields.
    #[test]
    fn batch_out_roundtrip(out in arb_batch_out()) {
        let bytes = encode_batch_out(&out);
        let decoded = decode_batch_out(&bytes).expect("decodes");
        prop_assert_eq!(&bytes, &encode_batch_out(&decoded));
        prop_assert_eq!(&out.histogram, &decoded.histogram);
        prop_assert_eq!(&out.stats, &decoded.stats);
        prop_assert_eq!(&out.durations_ns, &decoded.durations_ns);
        prop_assert_eq!(out.non_halted, decoded.non_halted);
        prop_assert_eq!(&out.first_failure, &decoded.first_failure);
        prop_assert_eq!(out.elapsed_ns, decoded.elapsed_ns);
        let ours: Vec<u64> = out.prob1_sum.iter().map(|p| p.to_bits()).collect();
        let theirs: Vec<u64> = decoded.prob1_sum.iter().map(|p| p.to_bits()).collect();
        prop_assert_eq!(ours, theirs, "P(1) sums must round-trip bit-exactly");
    }

    /// Every strict prefix of an encoded job fails with a typed error
    /// — never a panic, never a bogus success.
    #[test]
    fn truncation_always_rejected(job in arb_job(), cut_seed in any::<u64>()) {
        let bytes = encode_job(&job).expect("encodes");
        let cut = (cut_seed % bytes.len() as u64) as usize;
        let err = decode_job(&bytes[..cut]).expect_err("prefix cannot decode");
        prop_assert!(
            matches!(
                err,
                WireError::Truncated { .. } | WireError::Invalid(_) | WireError::UnknownTag { .. }
            ),
            "unexpected error class: {}", err
        );
    }

    /// Flipping the instruction-count prefix region or appending bytes
    /// is always detected (the job codec consumes exactly its bytes).
    #[test]
    fn trailing_garbage_rejected(job in arb_job(), extra in 1usize..16) {
        let mut bytes = encode_job(&job).expect("encodes");
        bytes.extend(std::iter::repeat_n(0xabu8, extra));
        prop_assert!(decode_job(&bytes).is_err());
    }
}

// ---------------------------------------------------------------------
// Deterministic rejection cases
// ---------------------------------------------------------------------

#[test]
fn bad_magic_is_typed() {
    let hello = wire::Hello {
        version: wire::PROTOCOL_VERSION,
    };
    let mut bytes = hello.encode();
    bytes[0] ^= 0x20;
    match wire::Hello::decode(&bytes) {
        Err(WireError::BadMagic { found }) => assert_eq!(found[1..], wire::MAGIC[1..]),
        other => panic!("expected BadMagic, got {other:?}"),
    }
}

#[test]
fn version_mismatch_reports_both_versions() {
    // The client-side check: a HelloAck carrying a different version.
    let ack = wire::HelloAck {
        version: wire::PROTOCOL_VERSION + 7,
        capacity: 1,
        name: "future-worker".to_owned(),
    };
    let decoded = wire::HelloAck::decode(&ack.encode()).expect("well-formed");
    assert_eq!(decoded.version, wire::PROTOCOL_VERSION + 7);
    // net.rs turns this into WireError::VersionMismatch; the typed
    // error renders both ends' versions for the operator.
    let err = WireError::VersionMismatch {
        ours: wire::PROTOCOL_VERSION,
        theirs: decoded.version,
    };
    let rendered = err.to_string();
    assert!(rendered.contains(&format!("v{}", wire::PROTOCOL_VERSION)));
    assert!(rendered.contains(&format!("v{}", wire::PROTOCOL_VERSION + 7)));
}

#[test]
fn unknown_instruction_tag_rejected() {
    let job = Job::new(
        "tagged",
        Instantiation::paper_two_qubit(),
        vec![Instruction::Stop],
    );
    let bytes = encode_job(&job).expect("encodes");
    // The program's single instruction tag is the byte right before
    // the trailing SimConfig + shots + seed block. Find it by
    // re-encoding with a different instruction and diffing.
    let nop_bytes = encode_job(&Job {
        program: vec![Instruction::Nop],
        ..job.clone()
    })
    .expect("encodes");
    let diff_at = bytes
        .iter()
        .zip(&nop_bytes)
        .position(|(a, b)| a != b)
        .expect("programs differ");
    let mut corrupt = bytes.clone();
    corrupt[diff_at] = 0xee;
    match decode_job(&corrupt) {
        Err(WireError::UnknownTag { what, tag }) => {
            assert_eq!(what, "Instruction");
            assert_eq!(tag, 0xee);
        }
        other => panic!("expected UnknownTag, got {other:?}"),
    }
}

#[test]
fn zero_length_frame_rejected() {
    let buf = 0u32.to_le_bytes().to_vec();
    assert!(matches!(
        wire::read_frame(&mut buf.as_slice()),
        Err(WireError::Invalid(_))
    ));
}

#[test]
fn short_frame_body_is_io_error() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&100u32.to_le_bytes());
    buf.extend_from_slice(&[1, 2, 3]); // 97 bytes missing
    assert!(matches!(
        wire::read_frame(&mut buf.as_slice()),
        Err(WireError::Io(_))
    ));
}

#[test]
fn run_range_frame_roundtrip() {
    let job = Job::new(
        "frame",
        Instantiation::paper_two_qubit(),
        vec![Instruction::Stop],
    );
    let request = wire::RunRange {
        start: 128,
        end: 256,
        job_bytes: encode_job(&job).unwrap(),
    };
    let decoded = wire::RunRange::decode(&request.encode()).unwrap();
    assert_eq!(decoded, request);
    assert_eq!(decode_job(&decoded.job_bytes).unwrap(), job);
}

#[test]
fn fingerprint_distinguishes_jobs() {
    let a = encode_job(&Job::new(
        "a",
        Instantiation::paper_two_qubit(),
        vec![Instruction::Stop],
    ))
    .unwrap();
    let b = encode_job(&Job::new(
        "b",
        Instantiation::paper_two_qubit(),
        vec![Instruction::Stop],
    ))
    .unwrap();
    assert_ne!(wire::job_fingerprint(&a), wire::job_fingerprint(&b));
    assert_eq!(wire::job_fingerprint(&a), wire::job_fingerprint(&a));
}

// ---------------------------------------------------------------------
// v2: negotiation, job registry, auth and service codecs
// ---------------------------------------------------------------------

#[test]
fn negotiate_picks_min_of_both_ends() {
    use wire::{negotiate, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
    assert_eq!(
        negotiate(PROTOCOL_VERSION, PROTOCOL_VERSION),
        Some(PROTOCOL_VERSION)
    );
    assert_eq!(
        negotiate(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION),
        Some(MIN_PROTOCOL_VERSION),
        "a v1 client gets a v1 conversation"
    );
    assert_eq!(
        negotiate(PROTOCOL_VERSION + 9, PROTOCOL_VERSION),
        Some(PROTOCOL_VERSION),
        "a future client settles on what we speak"
    );
    assert_eq!(
        negotiate(PROTOCOL_VERSION, MIN_PROTOCOL_VERSION),
        Some(MIN_PROTOCOL_VERSION),
        "a capped server pins the conversation down"
    );
    assert_eq!(negotiate(0, PROTOCOL_VERSION), None, "below the floor");
}

#[test]
fn load_job_and_run_range_by_id_roundtrip() {
    let job = Job::new(
        "registry",
        Instantiation::paper_two_qubit(),
        vec![Instruction::Stop],
    );
    let load = wire::LoadJob {
        job_id: 42,
        job_bytes: encode_job(&job).unwrap(),
    };
    assert_eq!(wire::LoadJob::decode(&load.encode()).unwrap(), load);
    // The borrowing encoder must produce identical bytes.
    assert_eq!(
        load.encode(),
        wire::LoadJob::encode_parts(42, &load.job_bytes)
    );

    let ack = wire::LoadAck {
        job_id: 42,
        cached: 3,
    };
    assert_eq!(wire::LoadAck::decode(&ack.encode()).unwrap(), ack);

    let run = wire::RunRangeById {
        job_id: 42,
        start: 1_000_000,
        end: 1_000_256,
    };
    let encoded = run.encode();
    assert_eq!(
        encoded.len(),
        24,
        "the by-id request is constant-size whatever the program"
    );
    assert_eq!(wire::RunRangeById::decode(&encoded).unwrap(), run);
}

#[test]
fn run_range_by_id_is_smaller_than_inline_for_any_real_job() {
    // The bandwidth claim behind the v2 registry, as an invariant.
    let job = Job::new("big", Instantiation::paper(), vec![Instruction::Nop; 256]);
    let inline = wire::RunRange {
        start: 0,
        end: 256,
        job_bytes: encode_job(&job).unwrap(),
    };
    let by_id = wire::RunRangeById {
        job_id: 7,
        start: 0,
        end: 256,
    };
    assert!(
        by_id.encode().len() * 10 < inline.encode().len(),
        "by-id request ({}B) must be far below the inline request ({}B)",
        by_id.encode().len(),
        inline.encode().len()
    );
}

#[test]
fn auth_frames_roundtrip() {
    let challenge = wire::AuthChallenge {
        server_nonce: (0..32u8).collect(),
    };
    assert_eq!(
        wire::AuthChallenge::decode(&challenge.encode()).unwrap(),
        challenge
    );
    let response = wire::AuthResponse {
        client_nonce: (32..64u8).collect(),
        proof: vec![0xaa; 32],
    };
    assert_eq!(
        wire::AuthResponse::decode(&response.encode()).unwrap(),
        response
    );
    let ok = wire::AuthOk {
        proof: vec![0x55; 32],
    };
    assert_eq!(wire::AuthOk::decode(&ok.encode()).unwrap(), ok);
}

#[test]
fn frame_limit_rejects_over_budget_before_reading_payload() {
    let mut buf = Vec::new();
    wire::write_frame(&mut buf, wire::tag::PING, &[0u8; 4096]).unwrap();
    // The same bytes pass the global cap but not a 1 KiB budget.
    assert!(wire::read_frame(&mut buf.as_slice()).is_ok());
    match wire::read_frame_limit(&mut buf.as_slice(), 1024) {
        Err(WireError::FrameTooLarge { len, cap }) => {
            assert_eq!(len, 4097);
            assert_eq!(cap, 1024);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
}

#[test]
fn partial_result_roundtrips_bit_exactly() {
    use eqasm_runtime::{LatencyStats, PartialResult, TenantId};
    let mut histogram = Histogram::new();
    histogram.add(
        BitString {
            measured: 0b11,
            bits: 0b01,
        },
        17,
    );
    let mut stats = eqasm_microarch::RunStats::default();
    stats.classical_cycles = 12345;
    stats.measurements = 99;
    let snapshot = PartialResult {
        name: "snap".to_owned(),
        tenant: TenantId::new("cal-team"),
        shots_done: 24,
        shots_total: 96,
        batches_done: 3,
        batches_total: 12,
        histogram,
        stats,
        mean_prob1: vec![0.25, f64::from_bits(0x7ff8_dead_beef_0002), -0.0],
        latency: LatencyStats {
            p50_ns: 1,
            p95_ns: 2,
            p99_ns: 3,
            mean_ns: 4,
            max_ns: 5,
        },
        non_halted: 1,
        done: false,
        failed: Some("partial failure".to_owned()),
        queue_wait: std::time::Duration::from_millis(7),
        active: std::time::Duration::from_micros(9),
    };
    let bytes = wire::encode_partial_result(&snapshot);
    let decoded = wire::decode_partial_result(&bytes).expect("decodes");
    assert_eq!(decoded.name, snapshot.name);
    assert_eq!(decoded.tenant, snapshot.tenant);
    assert_eq!(decoded.shots_done, snapshot.shots_done);
    assert_eq!(decoded.batches_done, snapshot.batches_done);
    assert_eq!(decoded.histogram, snapshot.histogram);
    assert_eq!(decoded.stats, snapshot.stats);
    assert_eq!(decoded.latency, snapshot.latency);
    assert_eq!(decoded.failed, snapshot.failed);
    assert_eq!(decoded.queue_wait, snapshot.queue_wait);
    assert_eq!(decoded.active, snapshot.active);
    let ours: Vec<u64> = snapshot.mean_prob1.iter().map(|p| p.to_bits()).collect();
    let theirs: Vec<u64> = decoded.mean_prob1.iter().map(|p| p.to_bits()).collect();
    assert_eq!(ours, theirs, "mean P(1) must cross by bit pattern");
    // Canonical bytes.
    assert_eq!(bytes, wire::encode_partial_result(&decoded));
}

#[test]
fn job_result_roundtrips_from_a_real_run() {
    use eqasm_runtime::ShotEngine;
    let (inst, program) = eqasm_runtime::WorkloadKind::ActiveReset { init_cycles: 20 }
        .build()
        .expect("builds");
    let job = Job::new("jr", inst, program).with_shots(16).with_seed(3);
    let result = ShotEngine::serial().run_job(&job).expect("runs");
    let bytes = wire::encode_job_result(&result);
    let decoded = wire::decode_job_result(&bytes).expect("decodes");
    assert_eq!(decoded.name, result.name);
    assert_eq!(decoded.shots, result.shots);
    assert_eq!(decoded.histogram, result.histogram);
    assert_eq!(decoded.stats, result.stats);
    assert_eq!(decoded.mean_prob1, result.mean_prob1);
    assert_eq!(decoded.latency, result.latency);
    assert_eq!(decoded.non_halted, result.non_halted);
    assert_eq!(decoded.first_failure, result.first_failure);
    assert_eq!(bytes, wire::encode_job_result(&decoded), "canonical bytes");
}

#[test]
fn submission_roundtrips_jobs_and_specs() {
    use eqasm_runtime::{Submission, WorkloadKind, WorkloadSpec};
    let job = Job::new(
        "sub-job",
        Instantiation::paper_two_qubit(),
        vec![Instruction::Stop],
    )
    .with_shots(32)
    .with_seed(9);
    let as_job = Submission::job("tenant-a", job.clone());
    let decoded = wire::decode_submission(&wire::encode_submission(&as_job).unwrap()).unwrap();
    assert_eq!(decoded.tenant().as_str(), "tenant-a");

    let spec = WorkloadSpec::new(
        "rb-sweep",
        WorkloadKind::Rb {
            k: 16,
            interval_cycles: 2,
            sequence_seed: 0x5eed,
        },
        400,
    )
    .with_weight(3)
    .with_seed(77);
    let as_spec = Submission::workload("tenant-b", spec);
    let bytes = wire::encode_submission(&as_spec).unwrap();
    let decoded = wire::decode_submission(&bytes).unwrap();
    assert_eq!(decoded.tenant().as_str(), "tenant-b");
    // Canonical: re-encoding the decoded submission yields the bytes.
    assert_eq!(bytes, wire::encode_submission(&decoded).unwrap());

    let mut corrupt = bytes.clone();
    corrupt.push(0xff);
    assert!(wire::decode_submission(&corrupt).is_err());
}

#[test]
fn submit_ack_roundtrips() {
    let ack = wire::SubmitAck {
        jobs: vec![
            wire::RemoteJobInfo {
                job_id: 1,
                name: "a".to_owned(),
                shots: 100,
            },
            wire::RemoteJobInfo {
                job_id: 2,
                name: "b".to_owned(),
                shots: 200,
            },
        ],
    };
    assert_eq!(wire::SubmitAck::decode(&ack.encode()).unwrap(), ack);
    assert_eq!(wire::decode_job_id(&wire::encode_job_id(7)).unwrap(), 7);
    assert!(wire::decode_job_id(&[1, 2, 3]).is_err());
}

// ---------------------------------------------------------------------
// v4: incremental framing (FrameReader / FrameWriter) and resume codec
// ---------------------------------------------------------------------

/// Every frame shape the protocol ships, as one stream: the full auth
/// transcript, a compressed `LoadJob`, v3 and v4 subscribes, inline
/// and by-id run requests, snapshots and typed errors. The incremental
/// reader must decode this stream identically to the blocking reader
/// however the bytes are chopped up.
fn frame_corpus() -> Vec<(u8, Vec<u8>)> {
    let job = Job::new(
        "corpus",
        Instantiation::paper_two_qubit(),
        vec![Instruction::Stop; 8],
    )
    .with_shots(64)
    .with_seed(11);
    let job_bytes = encode_job(&job).unwrap();
    // A highly repetitive program compresses, so encode_parts_auto
    // emits the flagged-compressed LoadJob form.
    let repetitive = encode_job(&Job::new(
        "compressible",
        Instantiation::paper(),
        vec![Instruction::Nop; 512],
    ))
    .unwrap();
    let compressed_load = wire::LoadJob::encode_parts_auto(9, &repetitive);
    assert!(
        wire::LoadJob::decode(&compressed_load).is_ok(),
        "corpus must include a decodable compressed LoadJob"
    );
    vec![
        (
            wire::tag::HELLO,
            wire::Hello {
                version: wire::PROTOCOL_VERSION,
            }
            .encode(),
        ),
        (
            wire::tag::HELLO_ACK,
            wire::HelloAck {
                version: wire::PROTOCOL_VERSION,
                capacity: 8,
                name: "corpus-server".to_owned(),
            }
            .encode(),
        ),
        (
            wire::tag::AUTH_CHALLENGE,
            wire::AuthChallenge {
                server_nonce: (0..32u8).collect(),
            }
            .encode(),
        ),
        (
            wire::tag::AUTH_RESPONSE,
            wire::AuthResponse {
                client_nonce: (32..64u8).collect(),
                proof: vec![0xaa; 32],
            }
            .encode(),
        ),
        (
            wire::tag::AUTH_OK,
            wire::AuthOk {
                proof: vec![0x55; 32],
            }
            .encode(),
        ),
        (wire::tag::LOAD_JOB, compressed_load),
        (
            wire::tag::RUN_RANGE,
            wire::RunRange {
                start: 0,
                end: 64,
                job_bytes,
            }
            .encode(),
        ),
        (
            wire::tag::RUN_RANGE_BY_ID,
            wire::RunRangeById {
                job_id: 9,
                start: 0,
                end: 64,
            }
            .encode(),
        ),
        (
            wire::tag::SUBSCRIBE,
            wire::encode_subscribe(&wire::Subscribe {
                job_id: 3,
                resume_after: None,
            }),
        ),
        (
            wire::tag::SUBSCRIBE,
            wire::encode_subscribe(&wire::Subscribe {
                job_id: 3,
                resume_after: Some(17),
            }),
        ),
        (wire::tag::PING, Vec::new()),
        (
            wire::tag::ERROR,
            wire::ErrorMsg {
                kind: wire::ErrorKind::Budget,
                version: wire::PROTOCOL_VERSION,
                message: "corpus error".to_owned(),
            }
            .encode(),
        ),
    ]
}

/// The corpus as one contiguous byte stream, plus the frames the
/// blocking reader extracts from it (the baseline).
fn corpus_stream() -> (Vec<u8>, Vec<(u8, Vec<u8>)>) {
    let frames = frame_corpus();
    let mut stream = Vec::new();
    for (tag, payload) in &frames {
        stream.extend(wire::encode_frame(*tag, payload).unwrap());
    }
    let mut cursor = stream.as_slice();
    let mut blocking = Vec::new();
    while !cursor.is_empty() {
        blocking.push(wire::read_frame(&mut cursor).expect("blocking reader decodes corpus"));
    }
    assert_eq!(blocking.len(), frames.len());
    (stream, blocking)
}

#[test]
fn frame_reader_decodes_byte_at_a_time() {
    let (stream, blocking) = corpus_stream();
    let mut reader = wire::FrameReader::new(wire::MAX_FRAME_LEN);
    let mut incremental = Vec::new();
    for byte in &stream {
        reader.extend(std::slice::from_ref(byte));
        while let Some(frame) = reader.next_frame().expect("incremental decode") {
            incremental.push(frame);
        }
    }
    assert_eq!(incremental, blocking);
    assert_eq!(reader.pending(), 0, "no bytes left over");
}

proptest! {
    /// Chop the corpus stream at arbitrary points — the incremental
    /// reader must reassemble exactly what the blocking reader sees,
    /// regardless of where `EWOULDBLOCK` would have landed.
    #[test]
    fn frame_reader_decodes_any_split(cuts in prop::collection::vec(1usize..257, 1..64)) {
        let (stream, blocking) = corpus_stream();
        let mut reader = wire::FrameReader::new(wire::MAX_FRAME_LEN);
        let mut incremental = Vec::new();
        let mut pos = 0;
        let mut cut = 0;
        while pos < stream.len() {
            let take = cuts[cut % cuts.len()].min(stream.len() - pos);
            cut += 1;
            reader.extend(&stream[pos..pos + take]);
            pos += take;
            while let Some(frame) = reader.next_frame().expect("incremental decode") {
                incremental.push(frame);
            }
        }
        prop_assert_eq!(incremental, blocking);
        prop_assert_eq!(reader.pending(), 0);
    }

    /// The outbound path: frames drained through a FrameWriter in
    /// arbitrarily small write windows produce the identical byte
    /// stream `write_frame` would have produced on a blocking socket.
    #[test]
    fn frame_writer_matches_blocking_writer(window in 1usize..97) {
        struct Window {
            out: Vec<u8>,
            cap: usize,
        }
        impl std::io::Write for Window {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                let n = buf.len().min(self.cap);
                self.out.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let (stream, _) = corpus_stream();
        let mut writer = wire::FrameWriter::new(usize::MAX);
        for (tag, payload) in frame_corpus() {
            let frame = wire::encode_frame(tag, &payload).unwrap();
            prop_assert!(writer.enqueue(std::sync::Arc::new(frame)));
        }
        let mut sink = Window { out: Vec::new(), cap: window };
        prop_assert!(writer.flush_into(&mut sink).expect("drains"));
        prop_assert!(!writer.has_pending());
        prop_assert_eq!(sink.out, stream, "byte-identical to the blocking writer");
    }
}

#[test]
fn subscribe_codec_v3_and_v4_forms() {
    // The plain form is byte-identical to a v3 job-id payload — a v4
    // server needs no version sniffing to accept v3 subscribers.
    let plain = wire::encode_subscribe(&wire::Subscribe {
        job_id: 5,
        resume_after: None,
    });
    assert_eq!(plain, wire::encode_job_id(5));
    let decoded = wire::decode_subscribe(&plain).unwrap();
    assert_eq!(decoded.job_id, 5);
    assert_eq!(decoded.resume_after, None);

    // The resume form appends the last-seen prefix; both fields
    // round-trip.
    let resume = wire::encode_subscribe(&wire::Subscribe {
        job_id: 5,
        resume_after: Some(7),
    });
    assert_eq!(resume.len(), 16);
    let decoded = wire::decode_subscribe(&resume).unwrap();
    assert_eq!(decoded.job_id, 5);
    assert_eq!(decoded.resume_after, Some(7));

    // Anything else is malformed: truncated resume field, trailing
    // garbage, empty payload.
    assert!(wire::decode_subscribe(&resume[..12]).is_err());
    let mut trailing = resume.clone();
    trailing.push(0);
    assert!(wire::decode_subscribe(&trailing).is_err());
    assert!(wire::decode_subscribe(&[]).is_err());
}
