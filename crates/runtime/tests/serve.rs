//! Service-level contracts of the `serve` job queue: final results
//! bit-identical to the engine, mid-run snapshots that are exact
//! prefixes of the final merge, weighted-fair tenant scheduling,
//! quota enforcement, program-cache behaviour and failure isolation.

use std::time::{Duration, Instant};

use eqasm_core::{Bundle, BundleOp, Instantiation, OpTarget, QOpcode, Qubit, Topology};
use eqasm_microarch::{BackendSelect, SimConfig};
use eqasm_quantum::{NoiseModel, ReadoutModel};
use eqasm_runtime::{
    Job, JobQueue, RuntimeError, ServeConfig, ShotEngine, Submission, WorkloadKind, WorkloadSpec,
};

/// A noisy RB job whose shots genuinely consume randomness, so any
/// scheduling or seed leak in the queue shows up in the histogram.
fn noisy_rb_job(name: &str, shots: u64, base_seed: u64) -> Job {
    let inst = Instantiation::paper().with_topology(Topology::linear(1));
    let (program, _) =
        eqasm_workloads::rb_program(&inst, Qubit::new(0), 12, 1, 0xfeed).expect("rb emits");
    let mut config = SimConfig::default()
        .with_noise(NoiseModel::with_coherence(20_000.0, 15_000.0).with_gate_error(0.002, 0.0))
        .with_readout(ReadoutModel::symmetric(0.05));
    config.backend = BackendSelect::Pure;
    Job::new(name, inst, program)
        .with_config(config)
        .with_shots(shots)
        .with_seed(base_seed)
}

#[test]
fn queued_final_result_is_bit_identical_to_engine() {
    let job = noisy_rb_job("served", 96, 4242);
    let queue = JobQueue::new(ServeConfig::default().with_workers(3).with_batch_size(8));
    let handles = queue
        .submit(Submission::job("tenant-a", job.clone()))
        .expect("submits");
    let served = handles[0].wait().expect("completes");

    let engine_result = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("runs");
    assert_eq!(served.histogram, engine_result.histogram);
    assert_eq!(served.stats, engine_result.stats);
    assert_eq!(served.mean_prob1, engine_result.mean_prob1);
    assert_eq!(served.shots, 96);
    assert_eq!(served.non_halted, 0);
}

#[test]
fn mid_run_snapshots_are_exact_prefixes_of_the_final_merge() {
    // 12 batches of 8 shots on one worker: snapshots advance batch by
    // batch, and every mid-run snapshot must equal a *serial run of
    // just its first k batches* — bit-identical histogram, stats and
    // mean P(1), not an approximation.
    let job = noisy_rb_job("prefix", 96, 777);
    let queue = JobQueue::new(ServeConfig::default().with_workers(1).with_batch_size(8));
    let handles = queue
        .submit(Submission::job("tenant-a", job.clone()))
        .expect("submits");
    let handle = &handles[0];

    let mut observed = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snap = handle.snapshot();
        if snap.shots_done > 0
            && !snap.done
            && observed
                .iter()
                .all(|s: &eqasm_runtime::PartialResult| s.shots_done != snap.shots_done)
        {
            observed.push(snap.clone());
        }
        if snap.done || Instant::now() > deadline {
            break;
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    let final_result = handle.wait().expect("completes");

    // Every snapshot exposes whole batches only.
    for snap in &observed {
        assert_eq!(snap.shots_done % 8, 0, "snapshots expose whole batches");
        assert_eq!(snap.shots_done, 8 * snap.batches_done as u64);
        assert_eq!(snap.batches_total, 12);

        // The acceptance check: snapshot-at-k == serial run of the
        // first k batches. Same program, same base seed, same batch
        // size, shot count truncated to the prefix.
        let prefix_job = job.clone().with_shots(snap.shots_done);
        let prefix = ShotEngine::serial()
            .with_batch_size(8)
            .run_job(&prefix_job)
            .expect("prefix runs");
        assert_eq!(
            snap.histogram, prefix.histogram,
            "prefix histogram diverged"
        );
        assert_eq!(snap.stats, prefix.stats, "prefix stats diverged");
        assert_eq!(
            snap.mean_prob1, prefix.mean_prob1,
            "prefix mean P(1) diverged"
        );
        assert_eq!(snap.non_halted, prefix.non_halted);
    }
    assert_eq!(final_result.histogram.total(), 96);
}

#[test]
fn fairness_tracks_tenant_weights_under_backlog() {
    // One worker, two backlogged tenants at weights 3:1. While both
    // have pending work, completed shots must track the weights: the
    // heavy tenant owns ~75% of completed shots at any mid-run sample.
    let queue = JobQueue::new(ServeConfig::default().with_workers(1).with_batch_size(8));
    queue.register_tenant("heavy", 3, u64::MAX);
    queue.register_tenant("light", 1, u64::MAX);

    let mut handles = Vec::new();
    for i in 0..2 {
        handles.extend(
            queue
                .submit(Submission::job(
                    "heavy",
                    noisy_rb_job(&format!("h{i}"), 320, i * 1000),
                ))
                .expect("submits"),
        );
        handles.extend(
            queue
                .submit(Submission::job(
                    "light",
                    noisy_rb_job(&format!("l{i}"), 320, 90_000 + i * 1000),
                ))
                .expect("submits"),
        );
    }
    let total: u64 = 4 * 320;

    // Sample completed shots while the queue is mid-backlog.
    let mut mid_samples = Vec::new();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let progress = queue.tenant_progress();
        let done: u64 = progress.iter().map(|(_, shots)| shots).sum();
        if done >= total || Instant::now() > deadline {
            break;
        }
        if done >= total / 4 && done <= 3 * total / 4 {
            mid_samples.push(progress);
        }
        std::thread::sleep(Duration::from_micros(200));
    }
    for handle in &handles {
        handle.wait().expect("completes");
    }

    assert!(
        !mid_samples.is_empty(),
        "expected at least one mid-backlog sample"
    );
    // Check the last mid-run sample (most averaged-out).
    let sample = mid_samples.last().expect("nonempty");
    let heavy = sample
        .iter()
        .find(|(id, _)| id.as_str() == "heavy")
        .expect("heavy tenant")
        .1;
    let light = sample
        .iter()
        .find(|(id, _)| id.as_str() == "light")
        .expect("light tenant")
        .1;
    let share = heavy as f64 / (heavy + light) as f64;
    assert!(
        (share - 0.75).abs() <= 0.10,
        "weight-3 tenant had {share:.3} of completed shots mid-run, expected 0.75 ± 0.10"
    );
}

#[test]
fn quota_throttling_still_drains_the_queue() {
    // A quota *below* one batch's cost serializes the tenant's work
    // but must never deadlock or corrupt results (quota binds only
    // while shots are in flight).
    let queue = JobQueue::new(ServeConfig::default().with_workers(4).with_batch_size(8));
    queue.register_tenant("throttled", 1, 3);
    let job = noisy_rb_job("throttled-job", 64, 5);
    let handles = queue
        .submit(Submission::job("throttled", job.clone()))
        .expect("submits");
    let served = handles[0].wait().expect("completes despite quota");
    let reference = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("runs");
    assert_eq!(served.histogram, reference.histogram);
    assert_eq!(served.stats, reference.stats);
}

#[test]
fn program_cache_hits_on_repeated_workload_kinds() {
    let queue = JobQueue::new(ServeConfig::default().with_workers(2));
    let kind = WorkloadKind::Rb {
        k: 4,
        interval_cycles: 1,
        sequence_seed: 9,
    };
    // Three instances of one spec: one build, stamped three times.
    let spec_a = WorkloadSpec::new("rb-a", kind.clone(), 16).with_weight(3);
    let a = queue
        .submit(Submission::workload("tenant-a", spec_a))
        .expect("submits");
    assert_eq!(a.len(), 3, "weight-3 spec expands to three instances");
    let after_first = queue.cache_stats();
    assert_eq!(after_first.misses, 1);
    assert_eq!(after_first.hits, 0);
    assert_eq!(after_first.entries, 1);

    // The same kind again (another tenant, another seed): a cache hit.
    let spec_b = WorkloadSpec::new("rb-b", kind, 16).with_seed(999);
    let b = queue
        .submit(Submission::workload("tenant-b", spec_b))
        .expect("submits");
    let after_second = queue.cache_stats();
    assert_eq!(after_second.misses, 1, "identical kind must not rebuild");
    assert_eq!(after_second.hits, 1);

    // A different kind is a miss.
    let other = WorkloadSpec::new("reset", WorkloadKind::ActiveReset { init_cycles: 30 }, 16);
    queue
        .submit(Submission::workload("tenant-a", other))
        .expect("submits");
    assert_eq!(queue.cache_stats().misses, 2);

    for handle in a.iter().chain(&b) {
        handle.wait().expect("completes");
    }
}

#[test]
fn load_failure_fails_the_job_without_poisoning_the_queue() {
    let queue = JobQueue::new(ServeConfig::default().with_workers(2).with_batch_size(4));
    // A bundle with an unconfigured opcode fails machine validation.
    let inst = Instantiation::paper_two_qubit();
    let bad_program = vec![
        eqasm_core::Instruction::Bundle(Bundle::new(vec![BundleOp {
            opcode: QOpcode::new(0x1ff),
            target: OpTarget::None,
        }])),
        eqasm_core::Instruction::Stop,
    ];
    let bad = Job::new("bad", inst, bad_program).with_shots(32);
    let good = noisy_rb_job("good", 32, 3);

    let bad_handles = queue
        .submit(Submission::job("tenant-a", bad))
        .expect("submission itself is accepted");
    let good_handles = queue
        .submit(Submission::job("tenant-a", good))
        .expect("submits");

    match bad_handles[0].wait() {
        Err(RuntimeError::Service(msg)) => {
            assert!(msg.contains("bad"), "error names the job: {msg}")
        }
        other => panic!("expected a service error, got {other:?}"),
    }
    let snap = bad_handles[0].snapshot();
    assert!(snap.done);
    assert!(snap.failed.is_some());

    // The queue keeps serving other jobs after the failure.
    let good_result = good_handles[0].wait().expect("unaffected job completes");
    assert_eq!(good_result.histogram.total(), 32);
}

#[test]
fn snapshot_reports_queue_wait_and_progress() {
    let queue = JobQueue::new(ServeConfig::default().with_workers(1));
    let handles = queue
        .submit(Submission::job("t", noisy_rb_job("timed", 32, 1)))
        .expect("submits");
    let result = handles[0].wait().expect("completes");
    assert_eq!(result.shots, 32);
    let snap = handles[0].snapshot();
    assert!(snap.done);
    assert_eq!(snap.progress(), 1.0);
    assert!(snap.active > Duration::ZERO, "active span covers the run");
    assert_eq!(snap.tenant.as_str(), "t");
}
