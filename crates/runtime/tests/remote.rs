//! Cross-host execution integration tests: a mixed local + remote
//! backend pool must reproduce `ShotEngine::run_job` bit-exactly —
//! final aggregates *and* streaming partial prefixes — and must
//! survive a worker dying mid-job by re-dispatching its ranges.
//!
//! By default each test spawns an in-process loopback worker. When
//! `EQASM_REMOTE_ADDR` is set (CI starts a real `eqasm-cli worker`
//! process and points the suite at it), the tests additionally run
//! against that external daemon — same assertions, real process
//! boundary.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eqasm_core::{Instantiation, Qubit, Topology};
use eqasm_microarch::{RunStats, SimConfig};
use eqasm_quantum::{NoiseModel, ReadoutModel};
use eqasm_runtime::serve::{JobQueue, ServeConfig, SlotState, Submission};
use eqasm_runtime::{
    spawn_worker, ExecBackend, Histogram, Job, LocalBackend, PoolSupervisor, RemoteBackend,
    RuntimeError, ShotEngine, SupervisorConfig, WorkerConfig, WorkerHandle,
};

/// A noisy RB job on the stochastic trajectory backend: every shot
/// consumes randomness, so any seed or fold divergence between local
/// and remote execution shows up in the aggregates.
fn noisy_job(name: &str, shots: u64, base_seed: u64) -> Job {
    let inst = Instantiation::paper().with_topology(Topology::linear(1));
    let (program, _) =
        eqasm_workloads::rb_program(&inst, Qubit::new(0), 10, 1, 0xfeed).expect("rb emits");
    let mut config = SimConfig::default()
        .with_noise(NoiseModel::with_coherence(20_000.0, 15_000.0).with_gate_error(0.002, 0.0))
        .with_readout(ReadoutModel::symmetric(0.05));
    config.density_backend = false;
    Job::new(name, inst, program)
        .with_config(config)
        .with_shots(shots)
        .with_seed(base_seed)
}

fn loopback_worker(capacity: usize) -> WorkerHandle {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    spawn_worker(
        listener,
        WorkerConfig::default()
            .with_name("loopback")
            .with_capacity(capacity),
    )
    .expect("spawn worker")
}

/// Worker addresses to exercise: the in-process loopback worker, plus
/// the external daemon when CI provides one.
fn remote_backends(worker: &WorkerHandle, count: usize) -> Vec<Box<dyn ExecBackend>> {
    let mut backends: Vec<Box<dyn ExecBackend>> = (0..count)
        .map(|_| {
            Box::new(RemoteBackend::connect(worker.addr().to_string()).expect("connect loopback"))
                as Box<dyn ExecBackend>
        })
        .collect();
    if let Ok(addr) = std::env::var("EQASM_REMOTE_ADDR") {
        backends.push(Box::new(
            RemoteBackend::connect(addr).expect("connect external worker from EQASM_REMOTE_ADDR"),
        ));
    }
    backends
}

/// Serial per-prefix references for a `batch`-sized batching of `job`:
/// entry `k` holds the histogram, machine stats and mean-`P(|1⟩)` of
/// the first `k` batches, computed by folding `LocalBackend` ranges in
/// batch order — exactly what any `PartialResult` with
/// `batches_done == k` must match **bit-identically**, no matter what
/// pool churn produced it.
fn prefix_references(job: &Job, batch: u64) -> Vec<(Histogram, RunStats, Vec<f64>)> {
    let num_qubits = job.inst.topology().num_qubits();
    let mut backend = LocalBackend::new(0);
    let mut histogram = Histogram::new();
    let mut stats = RunStats::default();
    let mut prob1_sum = vec![0.0f64; num_qubits];
    let mut shots_done = 0u64;
    let mut prefixes = vec![(histogram.clone(), stats, prob1_sum.clone())];
    let mut start = 0u64;
    while start < job.shots {
        let end = (start + batch).min(job.shots);
        let out = backend.run_range(job, start..end).expect("reference range");
        histogram.merge(&out.histogram);
        stats.merge(&out.stats);
        for (acc, s) in prob1_sum.iter_mut().zip(&out.prob1_sum) {
            *acc += s;
        }
        shots_done += end - start;
        let mean: Vec<f64> = prob1_sum.iter().map(|s| s / shots_done as f64).collect();
        prefixes.push((histogram.clone(), stats, mean));
        start = end;
    }
    prefixes
}

/// Polls `condition` until it holds or `deadline` elapses; panics with
/// `what` on timeout. Keeps churn tests bounded instead of hanging CI.
fn wait_until(deadline: Duration, what: &str, mut condition: impl FnMut() -> bool) {
    let started = Instant::now();
    while !condition() {
        assert!(started.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The acceptance criterion: a job through a mixed pool (1 local +
/// ≥1 loopback remote) folds to bit-identical aggregates — histogram,
/// `RunStats`, mean-`P(|1⟩)` — against `ShotEngine::run_job`, and
/// every mid-run `PartialResult` is an exact prefix of that answer.
#[test]
fn mixed_pool_bit_identical_with_prefix_snapshots() {
    let job = noisy_job("mixed", 96, 4242);
    let reference = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("serial reference");

    let worker = loopback_worker(2);
    let mut backends: Vec<Box<dyn ExecBackend>> = vec![Box::new(LocalBackend::new(0))];
    backends.extend(remote_backends(&worker, 2));

    let queue = JobQueue::with_backends(ServeConfig::default().with_batch_size(8), backends);
    let handles = queue
        .submit(Submission::job("tenant", job.clone()))
        .expect("submits");
    let handle = &handles[0];

    // Poll while running: every snapshot must be an exact prefix of
    // the serial reference — same contiguous shot count, and the
    // histogram totals can never exceed the folded prefix.
    let mut seen_partial = false;
    loop {
        let snap = handle.snapshot();
        assert_eq!(snap.shots_total, 96);
        assert_eq!(snap.histogram.total(), snap.shots_done, "prefix-exact fold");
        assert_eq!(snap.shots_done % 8, 0, "prefixes advance in whole batches");
        if snap.shots_done > 0 && !snap.done {
            seen_partial = true;
        }
        if snap.done {
            break;
        }
        std::thread::yield_now();
    }
    let _ = seen_partial; // timing-dependent on 1-CPU hosts; asserted best-effort

    let result = handle.wait().expect("completes");
    assert_eq!(
        result.histogram, reference.histogram,
        "bit-identical histogram"
    );
    assert_eq!(result.stats, reference.stats, "bit-identical RunStats");
    assert_eq!(
        result.mean_prob1, reference.mean_prob1,
        "bit-identical mean P(1) (f64)"
    );
    assert_eq!(result.non_halted, reference.non_halted);

    let final_snap = handle.snapshot();
    assert!(final_snap.done);
    assert_eq!(final_snap.histogram, reference.histogram);
    assert_eq!(final_snap.mean_prob1, reference.mean_prob1);
}

/// Determinism across pool compositions: all-local, all-remote and
/// mixed pools must agree bit-exactly with each other (same fold, any
/// placement), at the worker counts CI pins via `EQASM_TEST_WORKERS`.
#[test]
fn pool_composition_is_invisible_to_results() {
    let job = noisy_job("composed", 64, 77);
    let reference = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("serial reference");

    type PoolFactory = Box<dyn Fn() -> Vec<Box<dyn ExecBackend>>>;
    let compositions: Vec<(&str, PoolFactory)> = vec![
        (
            "all-local",
            Box::new(|| {
                (0..3)
                    .map(|i| Box::new(LocalBackend::new(i)) as Box<dyn ExecBackend>)
                    .collect()
            }),
        ),
        (
            "all-remote",
            Box::new(|| {
                let worker = loopback_worker(3);
                let backends = remote_backends(&worker, 3);
                // Leak the handle so the worker outlives the closure;
                // the queue needs it alive for the whole run.
                std::mem::forget(worker);
                backends
            }),
        ),
        (
            "mixed",
            Box::new(|| {
                let worker = loopback_worker(1);
                let mut backends: Vec<Box<dyn ExecBackend>> = vec![Box::new(LocalBackend::new(0))];
                backends.extend(remote_backends(&worker, 1));
                std::mem::forget(worker);
                backends
            }),
        ),
    ];

    for (label, make) in compositions {
        let queue = JobQueue::with_backends(ServeConfig::default().with_batch_size(8), make());
        let handles = queue
            .submit(Submission::job("tenant", job.clone()))
            .expect("submits");
        let result = handles[0].wait().expect("completes");
        assert_eq!(result.histogram, reference.histogram, "{label}: histogram");
        assert_eq!(result.stats, reference.stats, "{label}: stats");
        assert_eq!(
            result.mean_prob1, reference.mean_prob1,
            "{label}: mean P(1)"
        );
    }
}

/// Killing a worker mid-job triggers range re-dispatch to the
/// surviving local backend — and still converges to the bit-identical
/// final result.
#[test]
fn killed_worker_mid_job_converges_identically() {
    let job = noisy_job("failover", 128, 9001);
    let reference = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("serial reference");

    let worker = loopback_worker(2);
    let mut backends: Vec<Box<dyn ExecBackend>> = vec![Box::new(LocalBackend::new(0))];
    backends.extend(remote_backends(&worker, 2));
    let queue = JobQueue::with_backends(
        ServeConfig::default()
            .with_batch_size(8)
            .with_max_batch_retries(4),
        backends,
    );

    let handles = queue
        .submit(Submission::job("tenant", job.clone()))
        .expect("submits");
    let handle = &handles[0];

    // Let the pool make some progress, then kill the worker while
    // batches are (very likely) in flight on its connections.
    while handle.snapshot().shots_done == 0 && !handle.is_done() {
        std::thread::yield_now();
    }
    worker.kill();

    let result = handle
        .wait()
        .expect("job must converge via re-dispatch to the local backend");
    assert_eq!(result.shots, 128);
    assert_eq!(result.histogram, reference.histogram, "failover histogram");
    assert_eq!(result.stats, reference.stats, "failover stats");
    assert_eq!(
        result.mean_prob1, reference.mean_prob1,
        "failover mean P(1)"
    );
}

/// With *only* remote backends and the worker dead, the pool retires
/// every slot and fails the job with a typed service error instead of
/// hanging `wait()` forever.
#[test]
fn all_backends_dead_fails_instead_of_hanging() {
    let worker = loopback_worker(1);
    let backend = RemoteBackend::connect(worker.addr().to_string()).expect("connects");
    let queue = JobQueue::with_backends(
        ServeConfig::default()
            .with_batch_size(8)
            .with_max_batch_retries(1),
        vec![Box::new(backend)],
    );
    worker.kill();

    let handles = queue
        .submit(Submission::job("tenant", noisy_job("doomed", 32, 1)))
        .expect("submission is accepted; failure is runtime");
    let err = handles[0].wait().expect_err("must fail, not hang");
    assert!(matches!(err, RuntimeError::Service(_)), "{err}");
}

/// Admission control (the runaway-client regression): a tenant whose
/// queued-but-not-started shots would exceed the pending cap gets a
/// typed rejection carrying the ledger numbers, while other tenants
/// are unaffected; capacity freed by execution re-admits the client.
#[test]
fn admission_cap_rejects_runaway_client() {
    // One slow-ish slot and huge batches: submissions stay pending.
    let queue = JobQueue::new(
        ServeConfig::default()
            .with_workers(1)
            .with_batch_size(64)
            .with_pending_cap(200),
    );

    // 3 × 64 = 192 shots pending fits the 200-shot cap (some may
    // dispatch immediately; dispatch only *lowers* pending).
    let mut handles = Vec::new();
    for i in 0..3 {
        handles.extend(
            queue
                .submit(Submission::job("runaway", noisy_job("ok", 64, i)))
                .expect("under the cap"),
        );
    }

    // The runaway fourth submission must be rejected with the typed
    // error — unless execution already drained the queue under it, in
    // which case admission correctly re-admits (both are valid
    // interleavings on a fast machine; the deterministic variant is
    // covered by the serve unit tests).
    match queue.submit(Submission::job("runaway", noisy_job("burst", 64, 99))) {
        Err(RuntimeError::AdmissionRejected {
            tenant,
            requested_shots,
            cap,
            ..
        }) => {
            assert_eq!(tenant, "runaway");
            assert_eq!(requested_shots, 64);
            assert_eq!(cap, 200);
        }
        Ok(extra) => handles.extend(extra),
        Err(other) => panic!("wrong error: {other}"),
    }

    // An unrelated tenant is not collateral damage.
    let other = queue
        .submit(Submission::job("polite", noisy_job("small", 8, 5)))
        .expect("other tenants admit fine");
    handles.extend(other);

    // Everything admitted completes; the queue drains.
    for handle in &handles {
        handle.wait().expect("admitted jobs complete");
    }

    // With the backlog drained, the once-rejected tenant is admitted.
    let readmitted = queue
        .submit(Submission::job("runaway", noisy_job("retry", 64, 123)))
        .expect("drained queue re-admits");
    readmitted[0].wait().expect("completes");
}

/// `shutdown(&self)`: a queue shared behind an `Arc` (no exclusive
/// ownership anywhere) can be shut down from one handle while another
/// still polls — the signature regression this PR fixes.
#[test]
fn shutdown_through_shared_reference() {
    let queue = std::sync::Arc::new(JobQueue::new(
        ServeConfig::default().with_workers(1).with_batch_size(8),
    ));
    let handles = queue
        .submit(Submission::job("t", noisy_job("interrupted", 100_000, 3)))
        .expect("submits");

    let poller = {
        let queue2 = std::sync::Arc::clone(&queue);
        std::thread::spawn(move || {
            // Shut down from a *shared* reference on another thread.
            queue2.shutdown();
        })
    };
    poller.join().expect("shutdown thread");

    // The interrupted job reports a service error, not a hang.
    match handles[0].wait() {
        Err(RuntimeError::Service(msg)) => {
            assert!(msg.contains("shut down"), "unexpected message: {msg}")
        }
        Ok(r) => panic!("100k-shot job cannot have finished: {} shots", r.shots),
        Err(other) => panic!("wrong error kind: {other}"),
    }
    // Idempotent: calling again via &self is a no-op.
    queue.shutdown();
}

/// The capacity handshake: `connect_pool` opens one slot per
/// advertised worker slot, and the pooled backends all execute.
#[test]
fn connect_pool_executes_on_every_slot() {
    let worker = loopback_worker(3);
    let pool = RemoteBackend::connect_pool(worker.addr().to_string()).expect("pools");
    assert_eq!(pool.len(), 3);

    let job = noisy_job("pooled", 48, 7);
    let reference = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("reference");
    let queue = JobQueue::with_backends(
        ServeConfig::default().with_batch_size(8),
        pool.into_iter()
            .map(|b| Box::new(b) as Box<dyn ExecBackend>)
            .collect(),
    );
    let handles = queue.submit(Submission::job("t", job)).expect("submits");
    let result = handles[0].wait().expect("completes");
    assert_eq!(result.histogram, reference.histogram);
    assert_eq!(result.stats, reference.stats);
}

// ---------------------------------------------------------------------
// Churn determinism suite: live pool membership under attach / detach /
// kill-and-reattach must be invisible to results — final aggregates
// and every streamed `PartialResult` prefix bit-identical to a serial
// run.
// ---------------------------------------------------------------------

/// Mid-run attach and detach: a job starts on one local slot, gains a
/// remote worker and a second local slot mid-run, loses its original
/// slot to a clean drain — and every single snapshot along the way,
/// plus the final result, is bit-identical to the serial per-prefix
/// references.
#[test]
fn attach_detach_churn_preserves_exact_prefixes() {
    let job = noisy_job("churn", 160, 31337);
    let prefixes = prefix_references(&job, 8);
    let reference = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("serial reference");

    let queue = JobQueue::with_backends(
        ServeConfig::default().with_batch_size(8),
        vec![Box::new(LocalBackend::new(0))],
    );
    assert_eq!(queue.workers(), 1);
    let handles = queue
        .submit(Submission::job("tenant", job.clone()))
        .expect("submits");
    let handle = &handles[0];

    // Let the degraded pool make some progress, then churn: attach a
    // remote worker and a fresh local slot, and drain the original.
    wait_until(Duration::from_secs(60), "first folded batch", || {
        handle.snapshot().shots_done > 0 || handle.is_done()
    });
    let worker = loopback_worker(1);
    let remote_slot = queue
        .attach_backend(Box::new(
            RemoteBackend::connect(worker.addr().to_string()).expect("connect loopback"),
        ))
        .expect("attaches remote slot");
    let local_slot = queue
        .attach_backend(Box::new(LocalBackend::new(1)))
        .expect("attaches local slot");
    assert_eq!(remote_slot, 1, "slot ids are attach-ordered");
    assert_eq!(local_slot, 2);
    // When CI provides a real external daemon, churn across a genuine
    // process boundary too: its slots join the same fold.
    if let Ok(addr) = std::env::var("EQASM_REMOTE_ADDR") {
        queue
            .attach_backend(Box::new(
                RemoteBackend::connect(addr).expect("connect external worker"),
            ))
            .expect("attaches external slot");
    }
    queue.detach_backend(0).expect("drains the original slot");
    assert!(
        queue.detach_backend(0).is_err(),
        "double detach is rejected"
    );

    // Every snapshot through the churn window must be an exact
    // serial prefix.
    loop {
        let snap = handle.snapshot();
        let (histogram, stats, mean_prob1) = &prefixes[snap.batches_done];
        assert_eq!(&snap.histogram, histogram, "prefix histogram");
        assert_eq!(&snap.stats, stats, "prefix stats");
        assert_eq!(&snap.mean_prob1, mean_prob1, "prefix mean P(1)");
        if snap.done {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let result = handle.wait().expect("completes");
    assert_eq!(result.histogram, reference.histogram, "churn histogram");
    assert_eq!(result.stats, reference.stats, "churn stats");
    assert_eq!(result.mean_prob1, reference.mean_prob1, "churn mean P(1)");

    // The drained slot retires; the attached slots carried the job.
    wait_until(Duration::from_secs(30), "slot 0 retirement", || {
        queue.pool_status()[0].state == SlotState::Retired
    });
    let external = usize::from(std::env::var("EQASM_REMOTE_ADDR").is_ok());
    let status = queue.pool_status();
    assert_eq!(status.len(), 3 + external);
    assert_eq!(status[1].state, SlotState::Active);
    assert_eq!(status[2].state, SlotState::Active);
    assert!(
        status.iter().map(|s| s.batches_completed).sum::<u64>() >= 20,
        "all 20 batches were completed by pool slots"
    );
    assert_eq!(
        queue.workers(),
        2 + external,
        "attached slots live after the drain"
    );
}

/// Detaching the *last* slot of a fail-fast pool (no
/// `hold_when_empty`) fails outstanding jobs instead of hanging their
/// pollers — the drain path reaches the same total-pool-loss handling
/// as failure-driven retirement.
#[test]
fn draining_last_slot_fails_outstanding_jobs() {
    let queue = JobQueue::with_backends(
        ServeConfig::default().with_batch_size(8),
        vec![Box::new(LocalBackend::new(0))],
    );
    let handles = queue
        .submit(Submission::job("t", noisy_job("stranded", 100_000, 5)))
        .expect("submits");
    queue.detach_backend(0).expect("detaches");
    match handles[0].wait() {
        Err(RuntimeError::Service(msg)) => {
            assert!(msg.contains("backend"), "unexpected message: {msg}")
        }
        Ok(r) => {
            // Legal only if the whole job somehow finished before the
            // drain landed — impossible at this shot count on any
            // realistic host.
            panic!(
                "100k-shot job finished before a detach could land: {}",
                r.shots
            )
        }
        Err(other) => panic!("wrong error kind: {other}"),
    }
}

/// The supervisor acceptance test: a remote-only pool loses its worker
/// mid-run (kill), the fleet restarts it on the same address, and the
/// supervisor re-handshakes and attaches fresh slots — the job
/// converges with bit-identical aggregates, no coordinator
/// intervention.
#[test]
fn supervisor_reattaches_restarted_worker_bit_identically() {
    let job = noisy_job("elastic", 160, 777);
    let reference = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("serial reference");

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let worker = spawn_worker(
        listener,
        WorkerConfig::default().with_name("gen1").with_capacity(1),
    )
    .expect("spawn worker");

    let io_timeout = Some(Duration::from_secs(2));
    let backend = RemoteBackend::connect_with_timeout(addr.to_string(), io_timeout)
        .expect("connects to gen1");
    // Remote-only pool: hold through the empty window between the kill
    // and the supervisor's reattach.
    let queue = Arc::new(JobQueue::with_backends(
        ServeConfig::default()
            .with_batch_size(8)
            .with_hold_when_empty(true),
        vec![Box::new(backend)],
    ));
    // When CI provides a real external daemon, supervise it too: the
    // reattach story then also runs across a genuine process boundary.
    let mut supervised = vec![addr.to_string()];
    if let Ok(external) = std::env::var("EQASM_REMOTE_ADDR") {
        supervised.push(external);
    }
    let supervisor = PoolSupervisor::spawn(
        Arc::clone(&queue),
        supervised,
        SupervisorConfig::default()
            .with_probe_interval(Duration::from_millis(50))
            .with_max_backoff(Duration::from_millis(200))
            .with_io_timeout(io_timeout),
    );

    let handles = queue
        .submit(Submission::job("tenant", job.clone()))
        .expect("submits");
    let handle = &handles[0];
    wait_until(Duration::from_secs(60), "progress on gen1", || {
        handle.snapshot().shots_done > 0 || handle.is_done()
    });

    // The fleet event: the worker host dies...
    worker.kill();
    drop(worker);
    // ...and its replacement comes up on the same address (bounded
    // rebind retry: the old listener's port may take a moment to
    // free).
    let listener2 = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpListener::bind(addr) {
                Ok(l) => break l,
                Err(e) => {
                    assert!(Instant::now() < deadline, "cannot rebind {addr}: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    };
    let worker2 = spawn_worker(
        listener2,
        WorkerConfig::default().with_name("gen2").with_capacity(2),
    )
    .expect("spawn replacement worker");

    // No coordinator involvement from here: the supervisor must
    // notice, re-handshake and attach.
    let result = handle.wait().expect("job converges through the restart");
    assert_eq!(result.histogram, reference.histogram, "restart histogram");
    assert_eq!(result.stats, reference.stats, "restart stats");
    assert_eq!(result.mean_prob1, reference.mean_prob1, "restart mean P(1)");

    let attached: u64 = supervisor.status().iter().map(|w| w.attached_total).sum();
    assert!(
        attached >= 1,
        "the supervisor attached at least one replacement slot"
    );
    supervisor.shutdown();
    drop(worker2);
}

/// Registry-driven membership: a worker listed in the registry file is
/// discovered and attached (a pool can even *start* empty); unlisting
/// it drains its slots cleanly.
#[test]
fn registry_file_drives_attach_and_detach() {
    let worker = loopback_worker(1);
    let path = std::env::temp_dir().join(format!(
        "eqasm-registry-{}-{:?}.txt",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, format!("# fleet roster\n{}\n", worker.addr())).expect("write registry");

    // An intentionally empty pool: every slot this queue will ever
    // have comes from discovery.
    let queue = Arc::new(JobQueue::with_backends(
        ServeConfig::default()
            .with_batch_size(8)
            .with_hold_when_empty(true),
        Vec::new(),
    ));
    assert_eq!(queue.workers(), 0);
    let supervisor = PoolSupervisor::spawn(
        Arc::clone(&queue),
        Vec::new(),
        SupervisorConfig::default()
            .with_probe_interval(Duration::from_millis(50))
            .with_registry(&path),
    );

    wait_until(Duration::from_secs(30), "registry discovery", || {
        queue.workers() == 1
    });
    let status = supervisor.status();
    assert_eq!(status.len(), 1);
    assert!(status[0].from_registry);

    // Work runs on purely discovered capacity, bit-identically.
    let job = noisy_job("discovered", 32, 12);
    let reference = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("serial reference");
    let handles = queue
        .submit(Submission::job("tenant", job))
        .expect("submits");
    let result = handles[0].wait().expect("completes");
    assert_eq!(result.histogram, reference.histogram);
    assert_eq!(result.stats, reference.stats);

    // Unlist the worker: its slots drain and the address is forgotten.
    std::fs::write(&path, "# fleet roster (empty)\n").expect("rewrite registry");
    wait_until(Duration::from_secs(30), "registry drain", || {
        queue.workers() == 0
    });
    wait_until(Duration::from_secs(30), "address forgotten", || {
        supervisor.status().is_empty()
    });

    supervisor.shutdown();
    let _ = std::fs::remove_file(&path);
}
