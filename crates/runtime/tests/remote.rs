//! Cross-host execution integration tests: a mixed local + remote
//! backend pool must reproduce `ShotEngine::run_job` bit-exactly —
//! final aggregates *and* streaming partial prefixes — and must
//! survive a worker dying mid-job by re-dispatching its ranges.
//!
//! By default each test spawns an in-process loopback worker. When
//! `EQASM_REMOTE_ADDR` is set (CI starts a real `eqasm-cli worker`
//! process and points the suite at it), the tests additionally run
//! against that external daemon — same assertions, real process
//! boundary.

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eqasm_core::{Instantiation, Qubit, Topology};
use eqasm_microarch::{BackendSelect, RunStats, SimConfig};
use eqasm_quantum::{NoiseModel, ReadoutModel};
use eqasm_runtime::serve::{JobQueue, ServeConfig, SlotState, Submission};
use eqasm_runtime::{
    spawn_worker, ExecBackend, Histogram, Job, LocalBackend, PoolSupervisor, RemoteBackend,
    RuntimeError, ShotEngine, SupervisorConfig, WorkerConfig, WorkerHandle,
};

/// A noisy RB job on the stochastic trajectory backend: every shot
/// consumes randomness, so any seed or fold divergence between local
/// and remote execution shows up in the aggregates.
fn noisy_job(name: &str, shots: u64, base_seed: u64) -> Job {
    let inst = Instantiation::paper().with_topology(Topology::linear(1));
    let (program, _) =
        eqasm_workloads::rb_program(&inst, Qubit::new(0), 10, 1, 0xfeed).expect("rb emits");
    let mut config = SimConfig::default()
        .with_noise(NoiseModel::with_coherence(20_000.0, 15_000.0).with_gate_error(0.002, 0.0))
        .with_readout(ReadoutModel::symmetric(0.05));
    config.backend = BackendSelect::Pure;
    Job::new(name, inst, program)
        .with_config(config)
        .with_shots(shots)
        .with_seed(base_seed)
}

fn loopback_worker(capacity: usize) -> WorkerHandle {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    spawn_worker(
        listener,
        WorkerConfig::default()
            .with_name("loopback")
            .with_capacity(capacity),
    )
    .expect("spawn worker")
}

/// Worker addresses to exercise: the in-process loopback worker, plus
/// the external daemon when CI provides one.
fn remote_backends(worker: &WorkerHandle, count: usize) -> Vec<Box<dyn ExecBackend>> {
    let mut backends: Vec<Box<dyn ExecBackend>> = (0..count)
        .map(|_| {
            Box::new(RemoteBackend::connect(worker.addr().to_string()).expect("connect loopback"))
                as Box<dyn ExecBackend>
        })
        .collect();
    if let Ok(addr) = std::env::var("EQASM_REMOTE_ADDR") {
        backends.push(Box::new(
            RemoteBackend::connect(addr).expect("connect external worker from EQASM_REMOTE_ADDR"),
        ));
    }
    backends
}

/// Serial per-prefix references for a `batch`-sized batching of `job`:
/// entry `k` holds the histogram, machine stats and mean-`P(|1⟩)` of
/// the first `k` batches, computed by folding `LocalBackend` ranges in
/// batch order — exactly what any `PartialResult` with
/// `batches_done == k` must match **bit-identically**, no matter what
/// pool churn produced it.
fn prefix_references(job: &Job, batch: u64) -> Vec<(Histogram, RunStats, Vec<f64>)> {
    let num_qubits = job.inst.topology().num_qubits();
    let mut backend = LocalBackend::new(0);
    let mut histogram = Histogram::new();
    let mut stats = RunStats::default();
    let mut prob1_sum = vec![0.0f64; num_qubits];
    let mut shots_done = 0u64;
    let mut prefixes = vec![(histogram.clone(), stats, prob1_sum.clone())];
    let mut start = 0u64;
    while start < job.shots {
        let end = (start + batch).min(job.shots);
        let out = backend.run_range(job, start..end).expect("reference range");
        histogram.merge(&out.histogram);
        stats.merge(&out.stats);
        for (acc, s) in prob1_sum.iter_mut().zip(&out.prob1_sum) {
            *acc += s;
        }
        shots_done += end - start;
        let mean: Vec<f64> = prob1_sum.iter().map(|s| s / shots_done as f64).collect();
        prefixes.push((histogram.clone(), stats, mean));
        start = end;
    }
    prefixes
}

/// Polls `condition` until it holds or `deadline` elapses; panics with
/// `what` on timeout. Keeps churn tests bounded instead of hanging CI.
fn wait_until(deadline: Duration, what: &str, mut condition: impl FnMut() -> bool) {
    let started = Instant::now();
    while !condition() {
        assert!(started.elapsed() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The acceptance criterion: a job through a mixed pool (1 local +
/// ≥1 loopback remote) folds to bit-identical aggregates — histogram,
/// `RunStats`, mean-`P(|1⟩)` — against `ShotEngine::run_job`, and
/// every mid-run `PartialResult` is an exact prefix of that answer.
#[test]
fn mixed_pool_bit_identical_with_prefix_snapshots() {
    let job = noisy_job("mixed", 96, 4242);
    let reference = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("serial reference");

    let worker = loopback_worker(2);
    let mut backends: Vec<Box<dyn ExecBackend>> = vec![Box::new(LocalBackend::new(0))];
    backends.extend(remote_backends(&worker, 2));

    let queue = JobQueue::with_backends(ServeConfig::default().with_batch_size(8), backends);
    let handles = queue
        .submit(Submission::job("tenant", job.clone()))
        .expect("submits");
    let handle = &handles[0];

    // Poll while running: every snapshot must be an exact prefix of
    // the serial reference — same contiguous shot count, and the
    // histogram totals can never exceed the folded prefix.
    let mut seen_partial = false;
    loop {
        let snap = handle.snapshot();
        assert_eq!(snap.shots_total, 96);
        assert_eq!(snap.histogram.total(), snap.shots_done, "prefix-exact fold");
        assert_eq!(snap.shots_done % 8, 0, "prefixes advance in whole batches");
        if snap.shots_done > 0 && !snap.done {
            seen_partial = true;
        }
        if snap.done {
            break;
        }
        std::thread::yield_now();
    }
    let _ = seen_partial; // timing-dependent on 1-CPU hosts; asserted best-effort

    let result = handle.wait().expect("completes");
    assert_eq!(
        result.histogram, reference.histogram,
        "bit-identical histogram"
    );
    assert_eq!(result.stats, reference.stats, "bit-identical RunStats");
    assert_eq!(
        result.mean_prob1, reference.mean_prob1,
        "bit-identical mean P(1) (f64)"
    );
    assert_eq!(result.non_halted, reference.non_halted);

    let final_snap = handle.snapshot();
    assert!(final_snap.done);
    assert_eq!(final_snap.histogram, reference.histogram);
    assert_eq!(final_snap.mean_prob1, reference.mean_prob1);
}

/// Determinism across pool compositions: all-local, all-remote and
/// mixed pools must agree bit-exactly with each other (same fold, any
/// placement), at the worker counts CI pins via `EQASM_TEST_WORKERS`.
#[test]
fn pool_composition_is_invisible_to_results() {
    let job = noisy_job("composed", 64, 77);
    let reference = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("serial reference");

    type PoolFactory = Box<dyn Fn() -> Vec<Box<dyn ExecBackend>>>;
    let compositions: Vec<(&str, PoolFactory)> = vec![
        (
            "all-local",
            Box::new(|| {
                (0..3)
                    .map(|i| Box::new(LocalBackend::new(i)) as Box<dyn ExecBackend>)
                    .collect()
            }),
        ),
        (
            "all-remote",
            Box::new(|| {
                let worker = loopback_worker(3);
                let backends = remote_backends(&worker, 3);
                // Leak the handle so the worker outlives the closure;
                // the queue needs it alive for the whole run.
                std::mem::forget(worker);
                backends
            }),
        ),
        (
            "mixed",
            Box::new(|| {
                let worker = loopback_worker(1);
                let mut backends: Vec<Box<dyn ExecBackend>> = vec![Box::new(LocalBackend::new(0))];
                backends.extend(remote_backends(&worker, 1));
                std::mem::forget(worker);
                backends
            }),
        ),
    ];

    for (label, make) in compositions {
        let queue = JobQueue::with_backends(ServeConfig::default().with_batch_size(8), make());
        let handles = queue
            .submit(Submission::job("tenant", job.clone()))
            .expect("submits");
        let result = handles[0].wait().expect("completes");
        assert_eq!(result.histogram, reference.histogram, "{label}: histogram");
        assert_eq!(result.stats, reference.stats, "{label}: stats");
        assert_eq!(
            result.mean_prob1, reference.mean_prob1,
            "{label}: mean P(1)"
        );
    }
}

/// Killing a worker mid-job triggers range re-dispatch to the
/// surviving local backend — and still converges to the bit-identical
/// final result.
#[test]
fn killed_worker_mid_job_converges_identically() {
    let job = noisy_job("failover", 128, 9001);
    let reference = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("serial reference");

    let worker = loopback_worker(2);
    let mut backends: Vec<Box<dyn ExecBackend>> = vec![Box::new(LocalBackend::new(0))];
    backends.extend(remote_backends(&worker, 2));
    let queue = JobQueue::with_backends(
        ServeConfig::default()
            .with_batch_size(8)
            .with_max_batch_retries(4),
        backends,
    );

    let handles = queue
        .submit(Submission::job("tenant", job.clone()))
        .expect("submits");
    let handle = &handles[0];

    // Let the pool make some progress, then kill the worker while
    // batches are (very likely) in flight on its connections.
    while handle.snapshot().shots_done == 0 && !handle.is_done() {
        std::thread::yield_now();
    }
    worker.kill();

    let result = handle
        .wait()
        .expect("job must converge via re-dispatch to the local backend");
    assert_eq!(result.shots, 128);
    assert_eq!(result.histogram, reference.histogram, "failover histogram");
    assert_eq!(result.stats, reference.stats, "failover stats");
    assert_eq!(
        result.mean_prob1, reference.mean_prob1,
        "failover mean P(1)"
    );
}

/// With *only* remote backends and the worker dead, the pool retires
/// every slot and fails the job with a typed service error instead of
/// hanging `wait()` forever.
#[test]
fn all_backends_dead_fails_instead_of_hanging() {
    let worker = loopback_worker(1);
    let backend = RemoteBackend::connect(worker.addr().to_string()).expect("connects");
    let queue = JobQueue::with_backends(
        ServeConfig::default()
            .with_batch_size(8)
            .with_max_batch_retries(1),
        vec![Box::new(backend)],
    );
    worker.kill();

    let handles = queue
        .submit(Submission::job("tenant", noisy_job("doomed", 32, 1)))
        .expect("submission is accepted; failure is runtime");
    let err = handles[0].wait().expect_err("must fail, not hang");
    assert!(matches!(err, RuntimeError::Service(_)), "{err}");
}

/// Admission control (the runaway-client regression): a tenant whose
/// queued-but-not-started shots would exceed the pending cap gets a
/// typed rejection carrying the ledger numbers, while other tenants
/// are unaffected; capacity freed by execution re-admits the client.
#[test]
fn admission_cap_rejects_runaway_client() {
    // One slow-ish slot and huge batches: submissions stay pending.
    let queue = JobQueue::new(
        ServeConfig::default()
            .with_workers(1)
            .with_batch_size(64)
            .with_pending_cap(200),
    );

    // 3 × 64 = 192 shots pending fits the 200-shot cap (some may
    // dispatch immediately; dispatch only *lowers* pending).
    let mut handles = Vec::new();
    for i in 0..3 {
        handles.extend(
            queue
                .submit(Submission::job("runaway", noisy_job("ok", 64, i)))
                .expect("under the cap"),
        );
    }

    // The runaway fourth submission must be rejected with the typed
    // error — unless execution already drained the queue under it, in
    // which case admission correctly re-admits (both are valid
    // interleavings on a fast machine; the deterministic variant is
    // covered by the serve unit tests).
    match queue.submit(Submission::job("runaway", noisy_job("burst", 64, 99))) {
        Err(RuntimeError::AdmissionRejected {
            tenant,
            requested_shots,
            cap,
            ..
        }) => {
            assert_eq!(tenant, "runaway");
            assert_eq!(requested_shots, 64);
            assert_eq!(cap, 200);
        }
        Ok(extra) => handles.extend(extra),
        Err(other) => panic!("wrong error: {other}"),
    }

    // An unrelated tenant is not collateral damage.
    let other = queue
        .submit(Submission::job("polite", noisy_job("small", 8, 5)))
        .expect("other tenants admit fine");
    handles.extend(other);

    // Everything admitted completes; the queue drains.
    for handle in &handles {
        handle.wait().expect("admitted jobs complete");
    }

    // With the backlog drained, the once-rejected tenant is admitted.
    let readmitted = queue
        .submit(Submission::job("runaway", noisy_job("retry", 64, 123)))
        .expect("drained queue re-admits");
    readmitted[0].wait().expect("completes");
}

/// `shutdown(&self)`: a queue shared behind an `Arc` (no exclusive
/// ownership anywhere) can be shut down from one handle while another
/// still polls — the signature regression this PR fixes.
#[test]
fn shutdown_through_shared_reference() {
    let queue = std::sync::Arc::new(JobQueue::new(
        ServeConfig::default().with_workers(1).with_batch_size(8),
    ));
    let handles = queue
        .submit(Submission::job("t", noisy_job("interrupted", 100_000, 3)))
        .expect("submits");

    let poller = {
        let queue2 = std::sync::Arc::clone(&queue);
        std::thread::spawn(move || {
            // Shut down from a *shared* reference on another thread.
            queue2.shutdown();
        })
    };
    poller.join().expect("shutdown thread");

    // The interrupted job reports a service error, not a hang.
    match handles[0].wait() {
        Err(RuntimeError::Service(msg)) => {
            assert!(msg.contains("shut down"), "unexpected message: {msg}")
        }
        Ok(r) => panic!("100k-shot job cannot have finished: {} shots", r.shots),
        Err(other) => panic!("wrong error kind: {other}"),
    }
    // Idempotent: calling again via &self is a no-op.
    queue.shutdown();
}

/// The capacity handshake: `connect_pool` opens one slot per
/// advertised worker slot, and the pooled backends all execute.
#[test]
fn connect_pool_executes_on_every_slot() {
    let worker = loopback_worker(3);
    let pool = RemoteBackend::connect_pool(worker.addr().to_string()).expect("pools");
    assert_eq!(pool.len(), 3);

    let job = noisy_job("pooled", 48, 7);
    let reference = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("reference");
    let queue = JobQueue::with_backends(
        ServeConfig::default().with_batch_size(8),
        pool.into_iter()
            .map(|b| Box::new(b) as Box<dyn ExecBackend>)
            .collect(),
    );
    let handles = queue.submit(Submission::job("t", job)).expect("submits");
    let result = handles[0].wait().expect("completes");
    assert_eq!(result.histogram, reference.histogram);
    assert_eq!(result.stats, reference.stats);
}

// ---------------------------------------------------------------------
// Churn determinism suite: live pool membership under attach / detach /
// kill-and-reattach must be invisible to results — final aggregates
// and every streamed `PartialResult` prefix bit-identical to a serial
// run.
// ---------------------------------------------------------------------

/// Mid-run attach and detach: a job starts on one local slot, gains a
/// remote worker and a second local slot mid-run, loses its original
/// slot to a clean drain — and every single snapshot along the way,
/// plus the final result, is bit-identical to the serial per-prefix
/// references.
#[test]
fn attach_detach_churn_preserves_exact_prefixes() {
    let job = noisy_job("churn", 160, 31337);
    let prefixes = prefix_references(&job, 8);
    let reference = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("serial reference");

    let queue = JobQueue::with_backends(
        ServeConfig::default().with_batch_size(8),
        vec![Box::new(LocalBackend::new(0))],
    );
    assert_eq!(queue.workers(), 1);
    let handles = queue
        .submit(Submission::job("tenant", job.clone()))
        .expect("submits");
    let handle = &handles[0];

    // Let the degraded pool make some progress, then churn: attach a
    // remote worker and a fresh local slot, and drain the original.
    wait_until(Duration::from_secs(60), "first folded batch", || {
        handle.snapshot().shots_done > 0 || handle.is_done()
    });
    let worker = loopback_worker(1);
    let remote_slot = queue
        .attach_backend(Box::new(
            RemoteBackend::connect(worker.addr().to_string()).expect("connect loopback"),
        ))
        .expect("attaches remote slot");
    let local_slot = queue
        .attach_backend(Box::new(LocalBackend::new(1)))
        .expect("attaches local slot");
    assert_eq!(remote_slot, 1, "slot ids are attach-ordered");
    assert_eq!(local_slot, 2);
    // When CI provides a real external daemon, churn across a genuine
    // process boundary too: its slots join the same fold.
    if let Ok(addr) = std::env::var("EQASM_REMOTE_ADDR") {
        queue
            .attach_backend(Box::new(
                RemoteBackend::connect(addr).expect("connect external worker"),
            ))
            .expect("attaches external slot");
    }
    queue.detach_backend(0).expect("drains the original slot");
    assert!(
        queue.detach_backend(0).is_err(),
        "double detach is rejected"
    );

    // Every snapshot through the churn window must be an exact
    // serial prefix.
    loop {
        let snap = handle.snapshot();
        let (histogram, stats, mean_prob1) = &prefixes[snap.batches_done];
        assert_eq!(&snap.histogram, histogram, "prefix histogram");
        assert_eq!(&snap.stats, stats, "prefix stats");
        assert_eq!(&snap.mean_prob1, mean_prob1, "prefix mean P(1)");
        if snap.done {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }

    let result = handle.wait().expect("completes");
    assert_eq!(result.histogram, reference.histogram, "churn histogram");
    assert_eq!(result.stats, reference.stats, "churn stats");
    assert_eq!(result.mean_prob1, reference.mean_prob1, "churn mean P(1)");

    // The drained slot retires; the attached slots carried the job.
    wait_until(Duration::from_secs(30), "slot 0 retirement", || {
        queue.pool_status()[0].state == SlotState::Retired
    });
    let external = usize::from(std::env::var("EQASM_REMOTE_ADDR").is_ok());
    let status = queue.pool_status();
    assert_eq!(status.len(), 3 + external);
    assert_eq!(status[1].state, SlotState::Active);
    assert_eq!(status[2].state, SlotState::Active);
    assert!(
        status.iter().map(|s| s.batches_completed).sum::<u64>() >= 20,
        "all 20 batches were completed by pool slots"
    );
    assert_eq!(
        queue.workers(),
        2 + external,
        "attached slots live after the drain"
    );
}

/// Detaching the *last* slot of a fail-fast pool (no
/// `hold_when_empty`) fails outstanding jobs instead of hanging their
/// pollers — the drain path reaches the same total-pool-loss handling
/// as failure-driven retirement.
#[test]
fn draining_last_slot_fails_outstanding_jobs() {
    let queue = JobQueue::with_backends(
        ServeConfig::default().with_batch_size(8),
        vec![Box::new(LocalBackend::new(0))],
    );
    let handles = queue
        .submit(Submission::job("t", noisy_job("stranded", 100_000, 5)))
        .expect("submits");
    queue.detach_backend(0).expect("detaches");
    match handles[0].wait() {
        Err(RuntimeError::Service(msg)) => {
            assert!(msg.contains("backend"), "unexpected message: {msg}")
        }
        Ok(r) => {
            // Legal only if the whole job somehow finished before the
            // drain landed — impossible at this shot count on any
            // realistic host.
            panic!(
                "100k-shot job finished before a detach could land: {}",
                r.shots
            )
        }
        Err(other) => panic!("wrong error kind: {other}"),
    }
}

/// The supervisor acceptance test: a remote-only pool loses its worker
/// mid-run (kill), the fleet restarts it on the same address, and the
/// supervisor re-handshakes and attaches fresh slots — the job
/// converges with bit-identical aggregates, no coordinator
/// intervention.
#[test]
fn supervisor_reattaches_restarted_worker_bit_identically() {
    let job = noisy_job("elastic", 160, 777);
    let reference = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("serial reference");

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let worker = spawn_worker(
        listener,
        WorkerConfig::default().with_name("gen1").with_capacity(1),
    )
    .expect("spawn worker");

    let io_timeout = Some(Duration::from_secs(2));
    let backend = RemoteBackend::connect_with_timeout(addr.to_string(), io_timeout)
        .expect("connects to gen1");
    // Remote-only pool: hold through the empty window between the kill
    // and the supervisor's reattach.
    let queue = Arc::new(JobQueue::with_backends(
        ServeConfig::default()
            .with_batch_size(8)
            .with_hold_when_empty(true),
        vec![Box::new(backend)],
    ));
    // When CI provides a real external daemon, supervise it too: the
    // reattach story then also runs across a genuine process boundary.
    let mut supervised = vec![addr.to_string()];
    if let Ok(external) = std::env::var("EQASM_REMOTE_ADDR") {
        supervised.push(external);
    }
    let supervisor = PoolSupervisor::spawn(
        Arc::clone(&queue),
        supervised,
        SupervisorConfig::default()
            .with_probe_interval(Duration::from_millis(50))
            .with_max_backoff(Duration::from_millis(200))
            .with_io_timeout(io_timeout),
    );

    let handles = queue
        .submit(Submission::job("tenant", job.clone()))
        .expect("submits");
    let handle = &handles[0];
    wait_until(Duration::from_secs(60), "progress on gen1", || {
        handle.snapshot().shots_done > 0 || handle.is_done()
    });

    // The fleet event: the worker host dies...
    worker.kill();
    drop(worker);
    // ...and its replacement comes up on the same address (bounded
    // rebind retry: the old listener's port may take a moment to
    // free).
    let listener2 = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpListener::bind(addr) {
                Ok(l) => break l,
                Err(e) => {
                    assert!(Instant::now() < deadline, "cannot rebind {addr}: {e}");
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    };
    let worker2 = spawn_worker(
        listener2,
        WorkerConfig::default().with_name("gen2").with_capacity(2),
    )
    .expect("spawn replacement worker");

    // No coordinator involvement from here: the supervisor must
    // notice, re-handshake and attach.
    let result = handle.wait().expect("job converges through the restart");
    assert_eq!(result.histogram, reference.histogram, "restart histogram");
    assert_eq!(result.stats, reference.stats, "restart stats");
    assert_eq!(result.mean_prob1, reference.mean_prob1, "restart mean P(1)");

    let attached: u64 = supervisor.status().iter().map(|w| w.attached_total).sum();
    assert!(
        attached >= 1,
        "the supervisor attached at least one replacement slot"
    );
    supervisor.shutdown();
    drop(worker2);
}

/// Registry-driven membership: a worker listed in the registry file is
/// discovered and attached (a pool can even *start* empty); unlisting
/// it drains its slots cleanly.
#[test]
fn registry_file_drives_attach_and_detach() {
    let worker = loopback_worker(1);
    let path = std::env::temp_dir().join(format!(
        "eqasm-registry-{}-{:?}.txt",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, format!("# fleet roster\n{}\n", worker.addr())).expect("write registry");

    // An intentionally empty pool: every slot this queue will ever
    // have comes from discovery.
    let queue = Arc::new(JobQueue::with_backends(
        ServeConfig::default()
            .with_batch_size(8)
            .with_hold_when_empty(true),
        Vec::new(),
    ));
    assert_eq!(queue.workers(), 0);
    let supervisor = PoolSupervisor::spawn(
        Arc::clone(&queue),
        Vec::new(),
        SupervisorConfig::default()
            .with_probe_interval(Duration::from_millis(50))
            .with_registry(&path),
    );

    wait_until(Duration::from_secs(30), "registry discovery", || {
        queue.workers() == 1
    });
    let status = supervisor.status();
    assert_eq!(status.len(), 1);
    assert!(status[0].from_registry);

    // Work runs on purely discovered capacity, bit-identically.
    let job = noisy_job("discovered", 32, 12);
    let reference = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("serial reference");
    let handles = queue
        .submit(Submission::job("tenant", job))
        .expect("submits");
    let result = handles[0].wait().expect("completes");
    assert_eq!(result.histogram, reference.histogram);
    assert_eq!(result.stats, reference.stats);

    // Unlist the worker: its slots drain and the address is forgotten.
    std::fs::write(&path, "# fleet roster (empty)\n").expect("rewrite registry");
    wait_until(Duration::from_secs(30), "registry drain", || {
        queue.workers() == 0
    });
    wait_until(Duration::from_secs(30), "address forgotten", || {
        supervisor.status().is_empty()
    });

    supervisor.shutdown();
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Wire v2: negotiation, the job registry, auth and budgets
// ---------------------------------------------------------------------

use eqasm_runtime::{wire, ConnectOptions, Psk};

/// A worker pinned to v1 via its protocol cap: the v2 coordinator
/// must *negotiate* down and keep getting bit-identical ranges over
/// the inline `RunRange` path.
#[test]
fn v2_coordinator_negotiates_down_to_v1_worker() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let worker = spawn_worker(
        listener,
        WorkerConfig::default()
            .with_name("v1-pinned")
            .with_capacity(1)
            .with_protocol_cap(1),
    )
    .expect("spawn worker");

    let job = noisy_job("downgrade", 32, 77);
    let mut remote = RemoteBackend::connect(worker.addr().to_string()).expect("connects");
    assert_eq!(remote.protocol(), 1, "negotiated down to v1");
    let mut local = LocalBackend::new(0);
    for range in [0..16u64, 16..32] {
        let r = remote.run_range(&job, range.clone()).expect("remote runs");
        let l = local.run_range(&job, range).expect("local runs");
        assert_eq!(r.histogram, l.histogram);
        assert_eq!(r.stats, l.stats);
        assert_eq!(r.prob1_sum, l.prob1_sum);
    }
    let traffic = remote.traffic();
    assert_eq!(traffic.load_requests, 0, "v1 never sends LoadJob");
    assert!(traffic.range_request_bytes > 0);
}

/// A *legacy* v1 worker predates negotiation entirely: it rejects any
/// unfamiliar version with a typed error naming v1, then closes. This
/// thread speaks exactly that dialect; the v2 client must fall back
/// and still serve bit-identical ranges.
fn spawn_legacy_v1_worker() -> std::net::SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        // Serve a few connections, one at a time (the fallback costs
        // one rejected connection before the v1 one).
        for _ in 0..8 {
            let Ok((mut stream, _)) = listener.accept() else {
                return;
            };
            let Ok((tag, payload)) = wire::read_frame(&mut stream) else {
                continue;
            };
            assert_eq!(tag, wire::tag::HELLO);
            let hello = wire::Hello::decode(&payload).expect("valid hello");
            if hello.version != 1 {
                // Verbatim PR 3-era behaviour: typed rejection naming
                // the only version the worker speaks, then close.
                let msg = wire::ErrorMsg {
                    kind: wire::ErrorKind::Version,
                    version: 1,
                    message: format!("worker speaks v1, client sent v{}", hello.version),
                };
                let _ = wire::write_frame(&mut stream, wire::tag::ERROR, &msg.encode());
                continue;
            }
            let ack = wire::HelloAck {
                version: 1,
                capacity: 1,
                name: "legacy-v1".to_owned(),
            };
            if wire::write_frame(&mut stream, wire::tag::HELLO_ACK, &ack.encode()).is_err() {
                continue;
            }
            // v1 request loop: inline ranges only.
            let mut backend = LocalBackend::named("legacy-exec");
            while let Ok((tag, payload)) = wire::read_frame(&mut stream) {
                match tag {
                    wire::tag::PING => {
                        let _ = wire::write_frame(&mut stream, wire::tag::PONG, &[]);
                    }
                    wire::tag::RUN_RANGE => {
                        let request = wire::RunRange::decode(&payload).expect("valid request");
                        let job = wire::decode_job(&request.job_bytes).expect("valid job");
                        let out = backend
                            .run_range(&job, request.start..request.end)
                            .expect("range runs");
                        let _ = wire::write_frame(
                            &mut stream,
                            wire::tag::BATCH,
                            &wire::encode_batch_out(&out),
                        );
                    }
                    _ => break,
                }
            }
        }
    });
    addr
}

#[test]
fn v2_client_falls_back_to_legacy_v1_worker() {
    let addr = spawn_legacy_v1_worker();
    let job = noisy_job("legacy", 24, 123);
    let mut remote = RemoteBackend::connect(addr.to_string()).expect("fallback handshake");
    assert_eq!(remote.protocol(), 1);
    assert_eq!(remote.worker_name(), "legacy-v1");
    let r = remote.run_range(&job, 0..24).expect("remote runs");
    let l = LocalBackend::new(0).run_range(&job, 0..24).expect("local");
    assert_eq!(r.histogram, l.histogram);
    assert_eq!(r.stats, l.stats);
    assert_eq!(r.prob1_sum, l.prob1_sum);
}

/// A mixed pool — local slots, a v1-pinned worker and a v2 worker —
/// must still fold bit-identically with exact prefixes: protocol skew
/// inside the pool is invisible to results.
#[test]
fn mixed_v1_v2_pool_stays_bit_identical() {
    let job = noisy_job("mixed-versions", 96, 4242);
    let batch = 8u64;
    let reference = ShotEngine::serial()
        .with_batch_size(batch)
        .run_job(&job)
        .expect("reference");
    let prefixes = prefix_references(&job, batch);

    let v1_listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let v1_worker = spawn_worker(
        v1_listener,
        WorkerConfig::default()
            .with_name("pool-v1")
            .with_capacity(1)
            .with_protocol_cap(1),
    )
    .expect("spawn v1");
    let v2_worker = loopback_worker(1);

    let v1_backend =
        RemoteBackend::connect(v1_worker.addr().to_string()).expect("connect v1-pinned");
    assert_eq!(v1_backend.protocol(), 1);
    let v2_backend = RemoteBackend::connect(v2_worker.addr().to_string()).expect("connect v2");
    assert_eq!(v2_backend.protocol(), eqasm_runtime::wire::PROTOCOL_VERSION);

    let backends: Vec<Box<dyn ExecBackend>> = vec![
        Box::new(LocalBackend::new(0)),
        Box::new(v1_backend),
        Box::new(v2_backend),
    ];
    let queue = JobQueue::with_backends(ServeConfig::default().with_batch_size(batch), backends);
    let handle = queue
        .submit(Submission::job("tenant", job))
        .expect("submits")
        .remove(0);

    // Sample snapshots while the pool runs: every one must be an
    // exact prefix whatever protocol served which range.
    let mut seen = 0usize;
    loop {
        let snap = handle.snapshot();
        let (h, s, m) = &prefixes[snap.batches_done];
        assert_eq!(&snap.histogram, h, "prefix {} histogram", snap.batches_done);
        assert_eq!(&snap.stats, s);
        assert_eq!(&snap.mean_prob1, m);
        seen += 1;
        if snap.done {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(seen > 0);
    let result = handle.wait().expect("completes");
    assert_eq!(result.histogram, reference.histogram);
    assert_eq!(result.stats, reference.stats);
    assert_eq!(result.mean_prob1, reference.mean_prob1);
}

/// A worker whose job cache holds exactly one job: alternating two
/// jobs on one connection forces eviction, the typed `JobNotLoaded`
/// miss, and the transparent re-load — results stay bit-identical and
/// the client records the recoveries.
#[test]
fn job_cache_eviction_recovers_transparently() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let worker = spawn_worker(
        listener,
        WorkerConfig::default()
            .with_name("tiny-cache")
            .with_capacity(1)
            .with_job_cache_capacity(1),
    )
    .expect("spawn worker");

    let job_a = noisy_job("evict-a", 16, 1);
    let job_b = noisy_job("evict-b", 16, 2);
    let mut remote = RemoteBackend::connect(worker.addr().to_string()).expect("connects");
    assert_eq!(remote.protocol(), eqasm_runtime::wire::PROTOCOL_VERSION);

    let mut local = LocalBackend::new(0);
    // A loads, B loads (evicting A), then A again: the client still
    // believes A is loaded → JobNotLoaded → transparent re-load.
    for (job, range) in [
        (&job_a, 0..8u64),
        (&job_b, 0..8),
        (&job_a, 8..16),
        (&job_b, 8..16),
    ] {
        let r = remote.run_range(job, range.clone()).expect("remote runs");
        let l = local.run_range(job, range).expect("local runs");
        assert_eq!(r.histogram, l.histogram);
        assert_eq!(r.stats, l.stats);
        assert_eq!(r.prob1_sum, l.prob1_sum);
    }
    let traffic = remote.traffic();
    assert!(
        traffic.reloads >= 2,
        "expected JobNotLoaded recoveries, saw {}",
        traffic.reloads
    );
    // Job bytes travelled only in LoadJob frames; by-id range
    // requests are constant-size.
    assert_eq!(
        traffic.range_request_bytes,
        (traffic.range_requests) * (24 + 5),
        "v2 range requests must not carry job bytes"
    );
}

/// v2 vs v1 per-range request bytes on the same job — the measured
/// version of the bandwidth claim (also recorded in
/// BENCH_runtime.json by the throughput bin).
#[test]
fn run_range_by_id_reduces_per_range_request_bytes() {
    let worker_v2 = loopback_worker(1);
    let v1_listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let worker_v1 = spawn_worker(
        v1_listener,
        WorkerConfig::default()
            .with_capacity(1)
            .with_protocol_cap(1),
    )
    .expect("spawn v1");

    let job = noisy_job("bandwidth", 64, 5);
    let ranges: Vec<std::ops::Range<u64>> = (0..8).map(|i| i * 8..(i + 1) * 8).collect();

    let mut v2 = RemoteBackend::connect(worker_v2.addr().to_string()).expect("v2 connects");
    let mut v1 = RemoteBackend::connect(worker_v1.addr().to_string()).expect("v1 connects");
    for range in &ranges {
        let a = v2.run_range(&job, range.clone()).expect("v2 runs");
        let b = v1.run_range(&job, range.clone()).expect("v1 runs");
        assert_eq!(a.histogram, b.histogram);
    }
    let t2 = v2.traffic();
    let t1 = v1.traffic();
    let per_range_v2 = t2.range_request_bytes / t2.range_requests;
    let per_range_v1 = t1.range_request_bytes / t1.range_requests;
    assert!(
        per_range_v2 * 10 < per_range_v1,
        "v2 per-range bytes ({per_range_v2}) must be far below v1 ({per_range_v1})"
    );
    // Even counting the one-time LoadJob, the total request bytes for
    // 8 ranges must beat v1's 8 full-job shipments.
    assert!(t2.total_request_bytes() < t1.total_request_bytes());
}

/// Job-bytes compression is a v3 capability: a worker capped at v2
/// does not know [`wire::COMPRESSED_JOB_ID_FLAG`], so the coordinator
/// must ship it the plain `LoadJob` encoding (a flagged load would be
/// undecodable there), while a current worker gets the compressed
/// form — and both produce bit-identical results.
#[test]
fn load_job_compression_is_gated_on_negotiated_version() {
    let v2_listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let v2_worker = spawn_worker(
        v2_listener,
        WorkerConfig::default()
            .with_name("v2-capped")
            .with_capacity(1)
            .with_protocol_cap(2),
    )
    .expect("spawn v2-capped");
    let v3_worker = loopback_worker(1);

    let job = noisy_job("gated-compression", 32, 6);
    let job_bytes = wire::encode_job(&job).expect("job encodes");
    // Frame overhead is tag + u32 length = 5 bytes; both LoadJob
    // encodings carry a fixed-width id, so length is id-independent.
    let plain_len = wire::LoadJob::encode_parts(0, &job_bytes).len() as u64 + 5;
    let auto_len = wire::LoadJob::encode_parts_auto(0, &job_bytes).len() as u64 + 5;
    assert!(
        auto_len < plain_len,
        "the fixed-width job encoding must actually compress"
    );

    let mut v2 = RemoteBackend::connect(v2_worker.addr().to_string()).expect("v2 connects");
    assert_eq!(v2.protocol(), 2, "capped worker pins the conversation");
    let mut v3 = RemoteBackend::connect(v3_worker.addr().to_string()).expect("v3 connects");
    assert_eq!(v3.protocol(), wire::PROTOCOL_VERSION);

    let a = v2.run_range(&job, 0..32).expect("v2 worker runs");
    let b = v3.run_range(&job, 0..32).expect("v3 worker runs");
    assert_eq!(a.histogram, b.histogram);
    assert_eq!(a.stats, b.stats);

    assert_eq!(
        v2.traffic().load_request_bytes,
        plain_len,
        "a v2 conversation must carry the plain job bytes"
    );
    assert_eq!(
        v3.traffic().load_request_bytes,
        auto_len,
        "a v3 conversation ships the compressed form"
    );
}

#[test]
fn psk_handshake_authenticates_and_serves() {
    let psk = Psk::new(b"fleet-key".to_vec()).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let worker = spawn_worker(
        listener,
        WorkerConfig::default()
            .with_name("authed")
            .with_capacity(1)
            .with_psk(psk.clone()),
    )
    .expect("spawn worker");
    let addr = worker.addr().to_string();

    // Right key: full service, bit-identical results.
    let job = noisy_job("authed-job", 16, 9);
    let mut remote = RemoteBackend::connect_opts(
        addr.clone(),
        ConnectOptions::default().with_psk(psk.clone()),
    )
    .expect("authenticated connect");
    let r = remote.run_range(&job, 0..16).expect("runs");
    let l = LocalBackend::new(0).run_range(&job, 0..16).expect("local");
    assert_eq!(r.histogram, l.histogram);

    // Wrong key: typed auth failure, not a transport error.
    let wrong = Psk::new(b"not-the-key".to_vec()).unwrap();
    let err = RemoteBackend::connect_opts(addr.clone(), ConnectOptions::default().with_psk(wrong))
        .expect_err("wrong key must fail");
    assert!(
        matches!(err, RuntimeError::Auth(_)),
        "expected Auth, got {err}"
    );

    // No key at all: the client refuses to even try.
    let err = RemoteBackend::connect(addr).expect_err("keyless connect must fail");
    assert!(
        matches!(err, RuntimeError::Auth(_)),
        "expected Auth, got {err}"
    );
}

/// A captured proof replayed on a new connection is rejected: the
/// proof binds the *server's* per-connection nonce, which a replay
/// cannot know in advance.
#[test]
fn replayed_auth_proof_is_rejected() {
    use std::net::TcpStream;
    let psk = Psk::new(b"replay-key".to_vec()).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let worker = spawn_worker(
        listener,
        WorkerConfig::default()
            .with_capacity(1)
            .with_psk(psk.clone()),
    )
    .expect("spawn worker");

    // Session 1: a legitimate handshake, transcript captured.
    let mut first = TcpStream::connect(worker.addr()).expect("connects");
    let hello = wire::Hello {
        version: wire::PROTOCOL_VERSION,
    };
    wire::write_frame(&mut first, wire::tag::HELLO, &hello.encode()).unwrap();
    let (tag, payload) = wire::read_frame(&mut first).expect("challenge");
    assert_eq!(tag, wire::tag::AUTH_CHALLENGE);
    let challenge = wire::AuthChallenge::decode(&payload).unwrap();
    let client_nonce = [7u8; 32];
    let captured = wire::AuthResponse {
        client_nonce: client_nonce.to_vec(),
        proof: psk
            .client_proof(&challenge.server_nonce, &client_nonce)
            .to_vec(),
    };
    wire::write_frame(&mut first, wire::tag::AUTH_RESPONSE, &captured.encode()).unwrap();
    let (tag, _) = wire::read_frame(&mut first).expect("auth ok");
    assert_eq!(tag, wire::tag::AUTH_OK, "the genuine session authenticates");

    // Session 2: replay the captured response against a *fresh*
    // challenge — the server's new nonce makes the old proof stale.
    let mut replay = TcpStream::connect(worker.addr()).expect("connects");
    wire::write_frame(&mut replay, wire::tag::HELLO, &hello.encode()).unwrap();
    let (tag, _) = wire::read_frame(&mut replay).expect("fresh challenge");
    assert_eq!(tag, wire::tag::AUTH_CHALLENGE);
    wire::write_frame(&mut replay, wire::tag::AUTH_RESPONSE, &captured.encode()).unwrap();
    let (tag, payload) = wire::read_frame(&mut replay).expect("rejection");
    assert_eq!(tag, wire::tag::ERROR);
    let msg = wire::ErrorMsg::decode(&payload).expect("typed error");
    assert_eq!(msg.kind, wire::ErrorKind::AuthFailed);
}

#[test]
fn frame_size_budget_rejects_with_typed_error() {
    use std::net::TcpStream;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let worker = spawn_worker(
        listener,
        WorkerConfig::default()
            .with_capacity(1)
            .with_max_frame_len(2048),
    )
    .expect("spawn worker");

    let mut stream = TcpStream::connect(worker.addr()).expect("connects");
    let hello = wire::Hello {
        version: wire::PROTOCOL_VERSION,
    };
    wire::write_frame(&mut stream, wire::tag::HELLO, &hello.encode()).unwrap();
    let (tag, _) = wire::read_frame(&mut stream).expect("ack");
    assert_eq!(tag, wire::tag::HELLO_ACK);

    // An 8 KiB frame against a 2 KiB budget: typed Budget rejection.
    wire::write_frame(&mut stream, wire::tag::RUN_RANGE, &vec![0u8; 8192]).unwrap();
    let (tag, payload) = wire::read_frame(&mut stream).expect("rejection");
    assert_eq!(tag, wire::tag::ERROR);
    let msg = wire::ErrorMsg::decode(&payload).expect("typed error");
    assert_eq!(msg.kind, wire::ErrorKind::Budget);
    assert!(msg.message.contains("2048"), "{}", msg.message);
}

#[test]
fn request_rate_budget_rejects_with_typed_error() {
    use std::net::TcpStream;
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let worker = spawn_worker(
        listener,
        WorkerConfig::default()
            .with_capacity(1)
            .with_max_requests_per_sec(Some(4)),
    )
    .expect("spawn worker");

    let mut stream = TcpStream::connect(worker.addr()).expect("connects");
    let hello = wire::Hello {
        version: wire::PROTOCOL_VERSION,
    };
    wire::write_frame(&mut stream, wire::tag::HELLO, &hello.encode()).unwrap();
    let (tag, _) = wire::read_frame(&mut stream).expect("ack");
    assert_eq!(tag, wire::tag::HELLO_ACK);

    // Burst capacity is 4: the flood must hit the budget within a few
    // requests, as a typed Budget error (never a hang or a panic).
    let mut rejected = None;
    for _ in 0..32 {
        if wire::write_frame(&mut stream, wire::tag::PING, &[]).is_err() {
            break;
        }
        match wire::read_frame(&mut stream) {
            Ok((wire::tag::PONG, _)) => continue,
            Ok((wire::tag::ERROR, payload)) => {
                rejected = Some(wire::ErrorMsg::decode(&payload).expect("typed error"));
                break;
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }
    let msg = rejected.expect("the flood must be rejected");
    assert_eq!(msg.kind, wire::ErrorKind::Budget);
}

/// The registry-parse bugfix: a corrupted registry file must NOT read
/// as an empty roster (which would drain every supervised slot). The
/// supervisor keeps the last good address list in force and surfaces
/// a warning; a repaired file clears it.
#[test]
fn corrupt_registry_keeps_last_good_roster_and_warns() {
    let worker = loopback_worker(1);
    let path = std::env::temp_dir().join(format!(
        "eqasm-registry-corrupt-{}-{:?}.txt",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, format!("{}\n", worker.addr())).expect("write registry");

    let queue = Arc::new(JobQueue::with_backends(
        ServeConfig::default()
            .with_batch_size(8)
            .with_hold_when_empty(true),
        Vec::new(),
    ));
    let supervisor = PoolSupervisor::spawn(
        Arc::clone(&queue),
        Vec::new(),
        SupervisorConfig::default()
            .with_probe_interval(Duration::from_millis(50))
            .with_registry(&path),
    );
    wait_until(Duration::from_secs(30), "registry discovery", || {
        queue.workers() == 1
    });
    assert!(supervisor.registry_warning().is_none());

    // Corrupt the file (a truncated write, say). The old behaviour
    // parsed this as "no valid workers" and drained the fleet; now
    // the last good roster stays in force and the warning surfaces.
    std::fs::write(&path, "th!s is not / an address\n").expect("corrupt registry");
    wait_until(Duration::from_secs(30), "registry warning", || {
        supervisor.registry_warning().is_some()
    });
    let warning = supervisor.registry_warning().expect("warned");
    assert!(warning.contains("not host:port"), "{warning}");
    // Capacity is untouched — and keeps serving, bit-identically.
    assert_eq!(queue.workers(), 1, "corrupt registry must not drain slots");
    let job = noisy_job("through-corruption", 24, 77);
    let reference = ShotEngine::serial()
        .with_batch_size(8)
        .run_job(&job)
        .expect("serial reference");
    let handles = queue
        .submit(Submission::job("tenant", job))
        .expect("submits");
    let result = handles[0].wait().expect("completes");
    assert_eq!(result.histogram, reference.histogram);

    // Repairing the file clears the warning; the roster still holds.
    std::fs::write(&path, format!("{}\n", worker.addr())).expect("repair registry");
    wait_until(Duration::from_secs(30), "warning clears", || {
        supervisor.registry_warning().is_none()
    });
    assert_eq!(queue.workers(), 1);

    supervisor.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Regression: a typed `Version` rejection must reach a
/// PSK-configured client as a version error, not be masked as
/// "server did not request authentication" (the downgrade check now
/// fires only on a successful unauthenticated ack).
#[test]
fn version_rejection_not_masked_by_configured_psk() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    std::thread::spawn(move || {
        let Ok((mut stream, _)) = listener.accept() else {
            return;
        };
        let _ = wire::read_frame(&mut stream);
        // A hypothetical peer that speaks only an unsupported version
        // (0 is below the floor, so no fallback re-offer applies).
        let msg = wire::ErrorMsg {
            kind: wire::ErrorKind::Version,
            version: 0,
            message: "speaks nothing we do".to_owned(),
        };
        let _ = wire::write_frame(&mut stream, wire::tag::ERROR, &msg.encode());
    });
    let err = RemoteBackend::connect_opts(
        addr.to_string(),
        ConnectOptions::default().with_psk(Psk::new(b"key".to_vec()).unwrap()),
    )
    .expect_err("no common version");
    assert!(
        !matches!(err, RuntimeError::Auth(_)),
        "version skew must not be reported as an auth failure: {err}"
    );
    assert!(
        err.to_string().contains("version"),
        "the version information must survive: {err}"
    );
}

/// A PSK-configured client against a server that never authenticates
/// (a legacy v1 worker): the version fallback still runs, and the
/// refusal is the typed no-downgrade auth error.
#[test]
fn configured_psk_refuses_unauthenticated_legacy_server() {
    let addr = spawn_legacy_v1_worker();
    let err = RemoteBackend::connect_opts(
        addr.to_string(),
        ConnectOptions::default().with_psk(Psk::new(b"key".to_vec()).unwrap()),
    )
    .expect_err("keyless legacy server refused");
    assert!(matches!(err, RuntimeError::Auth(_)), "{err}");
    assert!(
        err.to_string().contains("did not request authentication"),
        "{err}"
    );
}
