//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this path crate
//! provides the subset of proptest the workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` / `prop_filter` /
//!   `prop_filter_map` combinators;
//! * range, tuple, [`Just`], [`any`], regex-subset string strategies;
//! * `prop::collection::{vec, btree_set}` and `prop::option::of`;
//! * the [`proptest!`], [`prop_oneof!`] and `prop_assert*` macros;
//! * [`ProptestConfig`] with `with_cases`.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test RNG and failures are **not shrunk** — the
//! failing input is printed as-is. That keeps the vendored crate small
//! while preserving the tests' semantics (random exploration of the
//! input space with reproducible failures).

use std::fmt::Debug;

pub use config::ProptestConfig;

/// The RNG driving test-case generation.
pub type TestRng = rand::rngs::StdRng;

/// Configuration types.
pub mod config {
    /// How many cases each property runs, mirroring
    /// `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Test-runner helpers used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::TestRng;
    use rand::SeedableRng;

    /// A deterministic RNG for one property, derived from the test
    /// name so every property explores a different stream but each
    /// `cargo test` run is reproducible.
    pub fn new_rng(test_name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::seed_from_u64(h)
    }

    /// Prints the failing input when a property panics: the guard is
    /// alive for the duration of one case and notices unwinding.
    pub struct CaseGuard {
        rendered: Option<String>,
        case: u32,
    }

    impl CaseGuard {
        /// Arms a guard for case number `case` with the pre-rendered
        /// input description.
        pub fn new(rendered: String, case: u32) -> Self {
            CaseGuard {
                rendered: Some(rendered),
                case,
            }
        }

        /// Disarms the guard (the case passed).
        pub fn disarm(&mut self) {
            self.rendered = None;
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if let Some(r) = self.rendered.take() {
                if std::thread::panicking() {
                    eprintln!("proptest: case #{} failed with input: {}", self.case, r);
                }
            }
        }
    }
}

/// The strategy trait and combinators.
pub mod strategy {
    use super::{Debug, TestRng};
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values where `f` returns `true`.
        fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason,
                f,
            }
        }

        /// Maps values through `f`, regenerating while `f` returns
        /// `None`.
        fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> Option<O>,
        {
            FilterMap {
                inner: self,
                reason,
                f,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Maximum regeneration attempts before a filter gives up.
    const MAX_FILTER_TRIES: u32 = 10_000;

    /// See [`Strategy::prop_filter`].
    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_FILTER_TRIES {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter({:?}) rejected every candidate", self.reason);
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        reason: &'static str,
        f: F,
    }

    impl<S, O, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> Option<O>,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            for _ in 0..MAX_FILTER_TRIES {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "prop_filter_map({:?}) rejected every candidate",
                self.reason
            );
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed alternatives (built by
    /// [`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<Rc<dyn Strategy<Value = V>>>,
    }

    impl<V> Union<V> {
        /// Builds a union over `options` (must be nonempty).
        pub fn new(options: Vec<Rc<dyn Strategy<Value = V>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            use rand::RngExt;
            let idx = rng.random_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::RngExt;
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    use rand::RngExt;
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            use rand::RngExt;
            rng.random_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    /// A value drawn from the whole domain of `T`.
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: rand::StandardDist + Debug> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            use rand::RngExt;
            rng.random()
        }
    }

    /// Mirrors `proptest::arbitrary::any`: the full-domain strategy
    /// for `T`.
    pub fn any<T: rand::StandardDist + Debug>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    // ---------------------------------------------------------------
    // Regex-subset string strategies
    // ---------------------------------------------------------------

    /// One parsed pattern atom: a set of char ranges plus a repeat
    /// count.
    #[derive(Clone, Debug)]
    struct Atom {
        ranges: Vec<(char, char)>,
        min: u32,
        max: u32,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<(char, char)> {
        let mut out = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = chars.next().expect("unterminated [class] in pattern");
            let lit = match c {
                ']' => {
                    if let Some(p) = pending {
                        out.push((p, p));
                    }
                    return out;
                }
                '\\' => match chars.next().expect("dangling escape in pattern") {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                },
                '-' if pending.is_some() && chars.peek() != Some(&']') => {
                    let lo = pending.take().expect("checked");
                    let hi = match chars.next().expect("unterminated range") {
                        '\\' => match chars.next().expect("dangling escape") {
                            'n' => '\n',
                            't' => '\t',
                            other => other,
                        },
                        other => other,
                    };
                    out.push((lo, hi));
                    continue;
                }
                other => other,
            };
            if let Some(p) = pending.replace(lit) {
                out.push((p, p));
            }
        }
    }

    fn parse_pattern(pattern: &str) -> Vec<Atom> {
        let mut chars = pattern.chars().peekable();
        let mut atoms: Vec<Atom> = Vec::new();
        while let Some(c) = chars.next() {
            match c {
                '.' => atoms.push(Atom {
                    // Printable ASCII, a tab, plus a couple of
                    // non-ASCII code points so `.` exercises unicode
                    // handling like real proptest does.
                    ranges: vec![
                        (' ', '~'),
                        ('\t', '\t'),
                        ('\u{e9}', '\u{e9}'),
                        ('\u{4e2d}', '\u{4e2d}'),
                    ],
                    min: 1,
                    max: 1,
                }),
                '[' => atoms.push(Atom {
                    ranges: parse_class(&mut chars),
                    min: 1,
                    max: 1,
                }),
                '{' => {
                    let mut spec = String::new();
                    for d in chars.by_ref() {
                        if d == '}' {
                            break;
                        }
                        spec.push(d);
                    }
                    let atom = atoms.last_mut().expect("quantifier without atom");
                    match spec.split_once(',') {
                        Some((lo, hi)) => {
                            atom.min = lo.trim().parse().expect("bad {m,n} bound");
                            atom.max = hi.trim().parse().expect("bad {m,n} bound");
                        }
                        None => {
                            let n: u32 = spec.trim().parse().expect("bad {n} bound");
                            atom.min = n;
                            atom.max = n;
                        }
                    }
                }
                '\\' => {
                    let lit = match chars.next().expect("dangling escape in pattern") {
                        'n' => '\n',
                        't' => '\t',
                        other => other,
                    };
                    atoms.push(Atom {
                        ranges: vec![(lit, lit)],
                        min: 1,
                        max: 1,
                    });
                }
                lit => atoms.push(Atom {
                    ranges: vec![(lit, lit)],
                    min: 1,
                    max: 1,
                }),
            }
        }
        atoms
    }

    /// `&str` patterns act as regex-subset string strategies, like in
    /// real proptest. Supported: literal chars, `.`, `[...]` classes
    /// with ranges and `\n`-style escapes, and `{m}` / `{m,n}`
    /// quantifiers.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            use rand::RngExt;
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for atom in &atoms {
                let count = rng.random_range(atom.min..=atom.max);
                for _ in 0..count {
                    let (lo, hi) = atom.ranges[rng.random_range(0..atom.ranges.len())];
                    let span = hi as u32 - lo as u32 + 1;
                    let c = char::from_u32(lo as u32 + rng.random_range(0..span)).unwrap_or(lo);
                    out.push(c);
                }
            }
            out
        }
    }
}

/// The `prop::` namespace (`prop::collection`, `prop::option`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::TestRng;
        use rand::RngExt;
        use std::collections::BTreeSet;
        use std::fmt::Debug;
        use std::ops::Range;

        /// See [`vec`].
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// A `Vec` of values from `element` with a length drawn from
        /// `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.random_range(self.size.clone());
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// See [`btree_set`].
        #[derive(Clone)]
        pub struct BTreeSetStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// A `BTreeSet` built from up to `size` drawn values
        /// (duplicates collapse, like in real proptest).
        pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord,
        {
            BTreeSetStrategy { element, size }
        }

        impl<S> Strategy for BTreeSetStrategy<S>
        where
            S: Strategy,
            S::Value: Ord + Debug,
        {
            type Value = BTreeSet<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
                let len = rng.random_range(self.size.clone());
                let mut out = BTreeSet::new();
                for _ in 0..len.max(self.size.start) {
                    out.insert(self.element.generate(rng));
                }
                out
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::strategy::Strategy;
        use crate::TestRng;
        use rand::RngExt;
        use std::fmt::Debug;

        /// See [`of`].
        #[derive(Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        /// `Some(value)` three times out of four, `None` otherwise.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }

        impl<S: Strategy> Strategy for OptionStrategy<S>
        where
            S::Value: Debug,
        {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.random_range(0..4usize) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }
    }
}

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::config::ProptestConfig;
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property, reporting the failing input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "prop_assert failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*); };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b); };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*); };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(std::rc::Rc::new($strat) as std::rc::Rc<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!{ @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::new_rng(stringify!($name));
            for case in 0..config.cases {
                let case_values = ( $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+ );
                let mut guard = $crate::test_runner::CaseGuard::new(
                    format!("{:?}", case_values),
                    case,
                );
                let ( $($arg,)+ ) = case_values;
                { $body }
                guard.disarm();
            }
        }
        $crate::proptest!{ @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!{ @with_config ($crate::config::ProptestConfig::default()) $($rest)* }
    };
}
