//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this path crate
//! implements the benchmarking surface the workspace's `benches/` use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! `throughput`/`sample_size`, [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each `bench_function` first sizes the iteration
//! count so one sample takes roughly [`TARGET_SAMPLE_NANOS`], then
//! takes `sample_size` samples and reports the median, mean, sample
//! standard deviation, min and max time per iteration (plus derived
//! throughput when configured). That is deliberately simpler than
//! real criterion — no warm-up phases, outlier classification or HTML
//! reports — but produces stable, comparable ns/iter numbers for
//! trend tracking.
//!
//! ## Machine-readable output for regression gating
//!
//! Besides the human line, every benchmark **appends** one JSON object
//! (per line) to `target/bench.json` (override the path with the
//! `EQASM_BENCH_JSON` environment variable, disable with
//! `EQASM_BENCH_JSON=0`):
//!
//! ```json
//! {"id":"group/name","median_ns":123.4,"mean_ns":125.0,"stddev_ns":2.1,
//!  "min_ns":120.9,"max_ns":130.2,"iters":100,"samples":10}
//! ```
//!
//! Append semantics let one `cargo bench` run (many bench binaries,
//! many processes) accumulate into a single file; CI deletes the file
//! before a run and diffs the collected lines against the previous
//! run's to gate regressions (`jq -s` turns the lines into an array).

use std::io::Write;
use std::time::{Duration, Instant};

/// Rough wall-clock budget of a single sample, in nanoseconds.
const TARGET_SAMPLE_NANOS: u64 = 25_000_000;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, 10, None, f);
        self
    }
}

/// A named group of benchmarks sharing sample-count and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is
    /// incremental).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the
/// routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` runs of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(id: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: find an iteration count that makes one sample land
    // near the target time.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.as_nanos().max(1) as u64;
    let iters = (TARGET_SAMPLE_NANOS / per_iter).clamp(1, 10_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    // Sample (n-1) standard deviation: the regression gate wants to
    // know whether a median shift is noise or signal, which needs the
    // run-to-run spread, not the population formula's underestimate.
    let stddev = if samples.len() > 1 {
        (samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (samples.len() - 1) as f64)
            .sqrt()
    } else {
        0.0
    };

    let rate = |ns_per_iter: f64, n: u64| n as f64 / (ns_per_iter * 1e-9);
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.3e} elem/s)", rate(median, n))
        }
        Some(Throughput::Bytes(n)) => format!("  ({:.3e} B/s)", rate(median, n)),
        None => String::new(),
    };
    println!(
        "bench: {id:<48} {median:>14.1} ns/iter (mean {mean:.1} ± {stddev:.1}, min {lo:.1}, max {hi:.1}, {iters} iters x {sample_size} samples){extra}"
    );
    record_json(
        id,
        &BenchRecord {
            median,
            mean,
            stddev,
            min: lo,
            max: hi,
            iters,
            samples: sample_size,
        },
    );
}

/// One benchmark's measured figures, as written to `target/bench.json`.
struct BenchRecord {
    median: f64,
    mean: f64,
    stddev: f64,
    min: f64,
    max: f64,
    iters: u64,
    samples: usize,
}

/// Appends this benchmark's figures as one JSON line to the bench
/// trajectory file. Failures are reported to stderr but never fail
/// the benchmark — measurement beats bookkeeping.
fn record_json(id: &str, r: &BenchRecord) {
    let path = match std::env::var("EQASM_BENCH_JSON") {
        Ok(p) if p == "0" => return,
        Ok(p) => std::path::PathBuf::from(p),
        Err(_) => default_bench_json_path(),
    };
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() && std::fs::create_dir_all(parent).is_err() {
            eprintln!(
                "bench: cannot create {} — skipping JSON record",
                parent.display()
            );
            return;
        }
    }
    // Benchmark ids come from string literals in this workspace, but
    // escape the JSON-significant characters anyway.
    let escaped: String = id
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"id\":\"{escaped}\",\"median_ns\":{:.1},\"mean_ns\":{:.1},\"stddev_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"iters\":{},\"samples\":{}}}\n",
        r.median, r.mean, r.stddev, r.min, r.max, r.iters, r.samples
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if written.is_err() {
        eprintln!(
            "bench: cannot append to {} — skipping JSON record",
            path.display()
        );
    }
}

/// The default trajectory path: `<workspace>/target/bench.json`.
///
/// Cargo runs bench binaries with the *package* directory as CWD, so
/// a bare `target/` would scatter per-crate files. Walk up from the
/// package to the first ancestor holding a `Cargo.lock` (the
/// workspace root) so every bench binary of one run appends to the
/// same file; honor `CARGO_TARGET_DIR` when the operator moved the
/// target directory.
fn default_bench_json_path() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return std::path::PathBuf::from(dir).join("bench.json");
    }
    let start = std::env::var("CARGO_MANIFEST_DIR")
        .map(std::path::PathBuf::from)
        .or_else(|_| std::env::current_dir())
        .unwrap_or_else(|_| std::path::PathBuf::from("."));
    let mut dir = start.as_path();
    loop {
        if dir.join("Cargo.lock").exists() {
            return dir.join("target").join("bench.json");
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return std::path::PathBuf::from("target").join("bench.json"),
        }
    }
}

/// Declares a function that runs a list of benchmark functions, like
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
