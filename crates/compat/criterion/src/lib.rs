//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this path crate
//! implements the benchmarking surface the workspace's `benches/` use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! `throughput`/`sample_size`, [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: each `bench_function` first sizes the iteration
//! count so one sample takes roughly [`TARGET_SAMPLE_NANOS`], then
//! takes `sample_size` samples and reports the median, min and max
//! time per iteration (plus derived throughput when configured). That
//! is deliberately simpler than real criterion — no warm-up phases,
//! outlier classification or HTML reports — but produces stable,
//! comparable ns/iter numbers for trend tracking.

use std::time::{Duration, Instant};

/// Rough wall-clock budget of a single sample, in nanoseconds.
const TARGET_SAMPLE_NANOS: u64 = 25_000_000;

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, 10, None, f);
        self
    }
}

/// A named group of benchmarks sharing sample-count and throughput
/// settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is
    /// incremental).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the
/// routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` runs of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(id: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: find an iteration count that makes one sample land
    // near the target time.
    let mut calib = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut calib);
    let per_iter = calib.elapsed.as_nanos().max(1) as u64;
    let iters = (TARGET_SAMPLE_NANOS / per_iter).clamp(1, 10_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);

    let rate = |ns_per_iter: f64, n: u64| n as f64 / (ns_per_iter * 1e-9);
    let extra = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  ({:.3e} elem/s)", rate(median, n))
        }
        Some(Throughput::Bytes(n)) => format!("  ({:.3e} B/s)", rate(median, n)),
        None => String::new(),
    };
    println!(
        "bench: {id:<48} {median:>14.1} ns/iter (min {lo:.1}, max {hi:.1}, {iters} iters x {sample_size} samples){extra}"
    );
}

/// Declares a function that runs a list of benchmark functions, like
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
