//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace
//! ships the slice of the `rand` API it actually uses as a path crate:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded
//!   through SplitMix64 (the workspace only ever constructs it via
//!   [`SeedableRng::seed_from_u64`], so stability across platforms is
//!   guaranteed by this crate alone);
//! * [`SeedableRng`] — `seed_from_u64`;
//! * [`RngExt`] — `random::<T>()` and `random_range(range)`, the
//!   post-0.9-style method names the simulator code was written
//!   against (this pin is the reconciliation of the nonstandard
//!   `rand::RngExt` import: the trait is defined here, once, instead
//!   of drifting between `Rng`/`RngExt` across rand versions).
//!
//! Everything is `no_std`-free plain Rust with no transitive
//! dependencies, which keeps the workspace building fully offline.

/// A source of uniformly distributed 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a pure function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling of a type from the "standard" distribution (uniform over
/// the value domain; `[0, 1)` for floats).
pub trait StandardDist: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// A range that knows how to sample a uniform value from itself.
pub trait SampleRange<T> {
    /// Draws one value from `rng`, uniform over the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The convenience methods the workspace calls on any RNG.
pub trait RngExt: RngCore {
    /// Draws a value of type `T` from the standard distribution
    /// (uniform bits for integers/bools, uniform `[0, 1)` for floats).
    fn random<T: StandardDist>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

impl StandardDist for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardDist for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardDist for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl StandardDist for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardDist for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

/// Uniform integer in `[0, width)` by rejection sampling (no modulo
/// bias). `width` must be nonzero.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, width: u128) -> u128 {
    debug_assert!(width > 0);
    if width.is_power_of_two() {
        return u128::sample(rng) & (width - 1);
    }
    let zone = u128::MAX - (u128::MAX % width + 1) % width;
    loop {
        let v = u128::sample(rng);
        if v <= zone {
            return v % width;
        }
    }
}

/// Types with a uniform sampler over half-open / closed intervals.
/// One blanket [`SampleRange`] impl per range shape keeps integer
/// literal inference working exactly like the real `rand` crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: $t,
                hi: $t,
                inclusive: bool,
            ) -> $t {
                let width = (hi as i128 - lo as i128 + inclusive as i128) as u128;
                assert!(width > 0, "cannot sample empty range");
                (lo as i128 + uniform_below(rng, width) as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: f64,
        hi: f64,
        _inclusive: bool,
    ) -> f64 {
        assert!(lo < hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, *self.start(), *self.end(), true)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ state seeded through
    /// SplitMix64. Deterministic, portable, and fast; not
    /// cryptographically secure (nothing here needs that).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.random()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.random()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 15];
        for _ in 0..10_000 {
            let k = rng.random_range(1..16usize);
            assert!((1..16).contains(&k));
            seen[k - 1] = true;
            let v = rng.random_range(3..=7u64);
            assert!((3..=7).contains(&v));
            let q = rng.random_range(0..24u8);
            assert!(q < 24);
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn float_range_uniformish() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        let n = 20_000;
        for _ in 0..n {
            sum += rng.random_range(-10.0f64..10.0);
        }
        assert!((sum / n as f64).abs() < 0.2);
    }
}
