//! Instruction-count analysis — the Fig. 7 design-space exploration.
//!
//! Counts how many instructions a timed circuit needs under a given
//! architecture configuration: timing-specification method (ts1/ts2/ts3),
//! PI field width, SOMQ on/off and VLIW width. Matches the paper's
//! methodology (§4.2): target registers are assumed to always provide
//! the required qubit (pair) list, so `SMIS`/`SMIT` setup is excluded —
//! the numbers show the theoretical maximum benefit of SOMQ.

use std::collections::BTreeMap;

use crate::schedule::Schedule;

/// The timing-specification methods compared in §4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingSpec {
    /// The QuMIS fashion: every timing point is specified by a separate
    /// `QWAIT` instruction.
    Ts1,
    /// `QWAIT` may occupy a VLIW slot inside a bundle instruction
    /// (requires width ≥ 2).
    Ts2,
    /// A PI field of `pi_bits` bits encodes short intervals; longer
    /// waits fall back to separate `QWAIT`s. The paper's instantiation
    /// uses `pi_bits = 3`.
    Ts3 {
        /// Width of the PI field in bits.
        pi_bits: u32,
    },
}

impl TimingSpec {
    /// The largest interval the PI field can encode (0 for ts1/ts2).
    pub fn max_pi(&self) -> u64 {
        match self {
            TimingSpec::Ts3 { pi_bits } => (1u64 << pi_bits) - 1,
            _ => 0,
        }
    }
}

/// One architecture configuration of the Fig. 7 exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodegenConfig {
    /// Timing-specification method.
    pub timing: TimingSpec,
    /// Single-operation-multiple-qubit execution enabled.
    pub somq: bool,
    /// VLIW width (operations per bundle instruction word).
    pub vliw_width: usize,
}

impl CodegenConfig {
    /// The configuration the paper instantiates: Config 9 with w = 2
    /// (ts3, 3-bit PI, SOMQ).
    pub const fn paper() -> Self {
        CodegenConfig {
            timing: TimingSpec::Ts3 { pi_bits: 3 },
            somq: true,
            vliw_width: 2,
        }
    }

    /// The numbered configurations of Fig. 7 (1–10) at a given VLIW
    /// width.
    ///
    /// | Config | timing | w_PI | SOMQ |
    /// |---|---|---|---|
    /// | 1 | ts1 | – | no |
    /// | 2 | ts2 | – | no |
    /// | 3–6 | ts3 | 1–4 | no |
    /// | 7–10 | ts3 | 1–4 | yes |
    ///
    /// # Panics
    ///
    /// Panics for configuration numbers outside 1..=10.
    pub fn fig7(config: u32, vliw_width: usize) -> Self {
        let (timing, somq) = match config {
            1 => (TimingSpec::Ts1, false),
            2 => (TimingSpec::Ts2, false),
            3..=6 => (
                TimingSpec::Ts3 {
                    pi_bits: config - 2,
                },
                false,
            ),
            7..=10 => (
                TimingSpec::Ts3 {
                    pi_bits: config - 6,
                },
                true,
            ),
            other => panic!("Fig. 7 configurations are numbered 1..=10, got {other}"),
        };
        CodegenConfig {
            timing,
            somq,
            vliw_width,
        }
    }
}

impl Default for CodegenConfig {
    fn default() -> Self {
        CodegenConfig::paper()
    }
}

/// The instruction counts for one (workload, configuration) pair.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub struct CountReport {
    /// Total instructions = `wait_instructions + bundle_words`.
    pub instructions: u64,
    /// Separate `QWAIT` instructions.
    pub wait_instructions: u64,
    /// Quantum bundle instruction words.
    pub bundle_words: u64,
    /// Gate operations in the schedule (pre-SOMQ).
    pub operations: u64,
    /// Operation slots after SOMQ merging.
    pub slots: u64,
    /// Timing points.
    pub timing_points: u64,
}

impl CountReport {
    /// Effective quantum operations per bundle word (the §4.2 metric
    /// reported for Config 9).
    pub fn effective_ops_per_bundle(&self) -> f64 {
        if self.bundle_words == 0 {
            0.0
        } else {
            self.slots as f64 / self.bundle_words as f64
        }
    }

    /// Relative instruction-count reduction versus a baseline
    /// configuration (positive = fewer instructions).
    pub fn reduction_vs(&self, baseline: &CountReport) -> f64 {
        if baseline.instructions == 0 {
            0.0
        } else {
            1.0 - self.instructions as f64 / baseline.instructions as f64
        }
    }
}

/// Counts the instructions a schedule needs under a configuration.
///
/// # Examples
///
/// ```
/// use eqasm_compiler::{count_instructions, schedule_asap, Circuit, CodegenConfig, GateDurations};
///
/// let mut c = Circuit::new(2);
/// c.single("X", 0)?;
/// c.single("X", 1)?;
/// let s = schedule_asap(&c, GateDurations::paper())?;
/// // Baseline (Config 1, w = 1): 1 QWAIT + 2 single-op words.
/// let base = count_instructions(&s, &CodegenConfig::fig7(1, 1));
/// assert_eq!(base.instructions, 3);
/// // Config 9 (paper): both X's SOMQ-merge into one slot, PI covers the
/// // wait: a single instruction.
/// let paper = count_instructions(&s, &CodegenConfig::paper());
/// assert_eq!(paper.instructions, 1);
/// # Ok::<(), eqasm_compiler::CompileError>(())
/// ```
pub fn count_instructions(schedule: &Schedule, cfg: &CodegenConfig) -> CountReport {
    let w = cfg.vliw_width.max(1) as u64;
    let mut report = CountReport::default();
    let mut prev_start: Option<u64> = None;

    for (start, gates) in schedule.points() {
        report.timing_points += 1;
        report.operations += gates.len() as u64;

        // SOMQ merging: one slot per distinct (name, arity) at a point.
        // Pairs at the same point are disjoint by construction (a qubit
        // is never in two simultaneous gates), so merging by name is
        // always mask-valid.
        let slots: u64 = if cfg.somq {
            let mut groups: BTreeMap<(&str, bool), u64> = BTreeMap::new();
            for g in &gates {
                *groups
                    .entry((g.gate.name.as_str(), g.gate.is_two_qubit()))
                    .or_insert(0) += 1;
            }
            groups.len() as u64
        } else {
            gates.len() as u64
        };
        report.slots += slots;

        // Interval from the previous point; the first point is reached
        // with an interval of start + 1 from the implicit origin.
        let interval = match prev_start {
            None => start + 1,
            Some(p) => start - p,
        };
        prev_start = Some(start);

        match cfg.timing {
            TimingSpec::Ts1 => {
                report.wait_instructions += 1;
                report.bundle_words += slots.div_ceil(w);
            }
            TimingSpec::Ts2 => {
                // The wait occupies one slot inside the bundle words.
                report.bundle_words += (slots + 1).div_ceil(w);
            }
            TimingSpec::Ts3 { .. } => {
                if interval > cfg.timing.max_pi() {
                    report.wait_instructions += 1;
                }
                report.bundle_words += slots.div_ceil(w);
            }
        }
    }
    report.instructions = report.wait_instructions + report.bundle_words;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Circuit, GateDurations};
    use crate::schedule::schedule_asap;

    /// A dense RB-like schedule: `n` qubits, each with a gate every
    /// cycle for `len` cycles, all with distinct names (worst case for
    /// SOMQ).
    fn dense_distinct(n: usize, len: u64) -> Schedule {
        let mut c = Circuit::new(n);
        for _t in 0..len {
            for q in 0..n {
                c.single(format!("G{q}"), q as u8).unwrap();
            }
        }
        schedule_asap(&c, GateDurations::paper()).unwrap()
    }

    /// Same but every qubit plays the *same* gate each cycle (best case
    /// for SOMQ).
    fn dense_shared(n: usize, len: u64) -> Schedule {
        let mut c = Circuit::new(n);
        for t in 0..len {
            for q in 0..n {
                c.single(format!("L{t}"), q as u8).unwrap();
            }
        }
        schedule_asap(&c, GateDurations::paper()).unwrap()
    }

    #[test]
    fn fig7_config_table() {
        assert_eq!(CodegenConfig::fig7(1, 1).timing, TimingSpec::Ts1);
        assert_eq!(CodegenConfig::fig7(2, 2).timing, TimingSpec::Ts2);
        assert_eq!(
            CodegenConfig::fig7(5, 2).timing,
            TimingSpec::Ts3 { pi_bits: 3 }
        );
        assert!(!CodegenConfig::fig7(5, 2).somq);
        assert_eq!(
            CodegenConfig::fig7(9, 2).timing,
            TimingSpec::Ts3 { pi_bits: 3 }
        );
        assert!(CodegenConfig::fig7(9, 2).somq);
        assert_eq!(CodegenConfig::fig7(9, 2), CodegenConfig::paper());
    }

    #[test]
    #[should_panic(expected = "1..=10")]
    fn fig7_rejects_config_eleven() {
        let _ = CodegenConfig::fig7(11, 1);
    }

    #[test]
    fn ts1_counts_one_wait_per_point() {
        let s = dense_distinct(7, 10);
        let r = count_instructions(&s, &CodegenConfig::fig7(1, 1));
        // 10 points * (1 QWAIT + 7 ops).
        assert_eq!(r.wait_instructions, 10);
        assert_eq!(r.bundle_words, 70);
        assert_eq!(r.instructions, 80);
        assert_eq!(r.operations, 70);
    }

    #[test]
    fn wider_vliw_reduces_rb_like_by_62_percent() {
        // The paper: "By increasing w from 1 to 4, the number of
        // instructions can be reduced up to 62% (RB)."
        let s = dense_distinct(7, 50);
        let base = count_instructions(&s, &CodegenConfig::fig7(1, 1));
        let w4 = count_instructions(&s, &CodegenConfig::fig7(1, 4));
        let red = w4.reduction_vs(&base);
        assert!((red - 0.625).abs() < 0.01, "reduction {red}");
    }

    #[test]
    fn ts2_packs_wait_into_slots() {
        let s = dense_distinct(7, 10);
        // w = 2: ceil((7+1)/2) = 4 words/point vs ts1's 1 + ceil(7/2) = 5.
        let ts2 = count_instructions(&s, &CodegenConfig::fig7(2, 2));
        let ts1 = count_instructions(&s, &CodegenConfig::fig7(1, 2));
        assert_eq!(ts2.instructions, 40);
        assert_eq!(ts1.instructions, 50);
        assert!((ts2.reduction_vs(&ts1) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn ts3_removes_waits_for_short_intervals() {
        let s = dense_distinct(7, 10);
        // All intervals are 1 cycle: any PI width covers them.
        let r = count_instructions(&s, &CodegenConfig::fig7(3, 1));
        assert_eq!(r.wait_instructions, 0);
        assert_eq!(r.instructions, 70);
    }

    #[test]
    fn ts3_falls_back_to_qwait_for_long_intervals() {
        // Sequential measurements: interval 15 cycles > max PI of 7.
        let mut c = Circuit::new(1);
        for _ in 0..5 {
            c.measure(0).unwrap();
        }
        let s = schedule_asap(&c, GateDurations::paper()).unwrap();
        let r = count_instructions(&s, &CodegenConfig::fig7(5, 1));
        // First point interval 1 fits PI; the other 4 need QWAITs.
        assert_eq!(r.wait_instructions, 4);
        assert_eq!(r.bundle_words, 5);
    }

    #[test]
    fn pi_width_matters_for_medium_intervals() {
        // Two-cycle intervals: a 1-bit PI (max 1) needs QWAITs, a 2-bit
        // PI (max 3) does not.
        let mut c = Circuit::new(2);
        for _ in 0..10 {
            c.two("CZ", 0, 1).unwrap();
        }
        let s = schedule_asap(&c, GateDurations::paper()).unwrap();
        let narrow = count_instructions(&s, &CodegenConfig::fig7(3, 1));
        let wide = count_instructions(&s, &CodegenConfig::fig7(4, 1));
        assert_eq!(narrow.wait_instructions, 9);
        assert_eq!(wide.wait_instructions, 0);
    }

    #[test]
    fn somq_merges_shared_names() {
        let s = dense_shared(7, 10);
        let plain = count_instructions(&s, &CodegenConfig::fig7(5, 1));
        let somq = count_instructions(&s, &CodegenConfig::fig7(9, 1));
        assert_eq!(plain.slots, 70);
        assert_eq!(somq.slots, 10, "7 same-name ops merge into 1 slot");
        assert!(somq.instructions < plain.instructions);
    }

    #[test]
    fn somq_useless_for_distinct_names() {
        let s = dense_distinct(7, 10);
        let plain = count_instructions(&s, &CodegenConfig::fig7(5, 2));
        let somq = count_instructions(&s, &CodegenConfig::fig7(9, 2));
        assert_eq!(plain.instructions, somq.instructions);
    }

    #[test]
    fn effective_ops_per_bundle_bounded_by_width() {
        let s = dense_distinct(7, 10);
        for w in 1..=4 {
            let r = count_instructions(&s, &CodegenConfig::fig7(9, w));
            let eff = r.effective_ops_per_bundle();
            assert!(eff <= w as f64 + 1e-9, "w={w}: eff={eff}");
            assert!(eff > 0.0);
        }
    }

    #[test]
    fn empty_schedule_counts_zero() {
        let c = Circuit::new(2);
        let s = schedule_asap(&c, GateDurations::paper()).unwrap();
        let r = count_instructions(&s, &CodegenConfig::paper());
        assert_eq!(r.instructions, 0);
        assert_eq!(r.effective_ops_per_bundle(), 0.0);
    }
}
