//! The emitting code generator: timed circuit → runnable eQASM.
//!
//! Unlike the counting analysis (Fig. 7), this generator produces real
//! executable instructions for a concrete instantiation: it allocates
//! single- and two-qubit target registers (with LRU reuse of the 32 + 32
//! register files), emits `SMIS`/`SMIT` setup, merges same-named
//! operations at a timing point (SOMQ), encodes short intervals in the
//! PI field and long ones as `QWAIT`s, splits bundles to the VLIW width
//! and appends `STOP`.

use std::collections::BTreeMap;

use eqasm_core::{Bundle, BundleOp, Instantiation, Instruction, OpArity, SReg, TReg};

use crate::error::CompileError;
use crate::ir::GateKind;
use crate::schedule::Schedule;

/// Options controlling emission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmitOptions {
    /// A `QWAIT` prepended before the first gate — the paper's programs
    /// idle 10000 cycles (200 µs) to (re-)initialise qubits by
    /// relaxation.
    pub init_wait: u32,
    /// A trailing `QWAIT` after the last gate (e.g. to let a measurement
    /// finish before `STOP`, as in Fig. 3).
    pub final_wait: u32,
    /// Append a `STOP` instruction.
    pub append_stop: bool,
}

impl EmitOptions {
    /// The paper's experiment shape: 10000-cycle initialisation, a
    /// 50-cycle trailing wait and a final `STOP`.
    pub const fn experiment() -> Self {
        EmitOptions {
            init_wait: 10_000,
            final_wait: 50,
            append_stop: true,
        }
    }

    /// Bare emission: no extra waits, with `STOP`.
    pub const fn bare() -> Self {
        EmitOptions {
            init_wait: 0,
            final_wait: 0,
            append_stop: true,
        }
    }
}

impl Default for EmitOptions {
    fn default() -> Self {
        EmitOptions::experiment()
    }
}

/// An LRU allocator over one target-register file.
#[derive(Debug)]
struct RegAlloc {
    /// mask currently held by each register (`None` = never written).
    held: Vec<Option<u32>>,
    /// Last-use stamp per register.
    stamp: Vec<u64>,
    clock: u64,
}

impl RegAlloc {
    fn new(count: usize) -> Self {
        RegAlloc {
            held: vec![None; count],
            stamp: vec![0; count],
            clock: 0,
        }
    }

    /// Returns the register holding `mask`, emitting a set-mask
    /// instruction through `write` when a (re)load is needed.
    fn get(&mut self, mask: u32, mut write: impl FnMut(usize, u32)) -> usize {
        self.clock += 1;
        if let Some(idx) = self.held.iter().position(|&h| h == Some(mask)) {
            self.stamp[idx] = self.clock;
            return idx;
        }
        // Free register first, else evict the least recently used.
        let idx = match self.held.iter().position(|h| h.is_none()) {
            Some(free) => free,
            None => {
                let (idx, _) = self
                    .stamp
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, &s)| s)
                    .expect("register file is non-empty");
                idx
            }
        };
        self.held[idx] = Some(mask);
        self.stamp[idx] = self.clock;
        write(idx, mask);
        idx
    }
}

/// Emits `QWAIT`s covering an arbitrary interval (respecting the 20-bit
/// immediate).
fn emit_waits(out: &mut Vec<Instruction>, mut cycles: u64, max_imm: u32) {
    while cycles > 0 {
        let chunk = cycles.min(max_imm as u64) as u32;
        out.push(Instruction::QWait { cycles: chunk });
        cycles -= chunk as u64;
    }
}

/// Generates runnable eQASM for a timed circuit on an instantiation.
///
/// Operation names are resolved against the instantiation's operation
/// configuration (§3.2); two-qubit gates must use allowed pairs of the
/// topology.
///
/// # Errors
///
/// Returns [`CompileError::UnknownOperation`] for unconfigured names and
/// [`CompileError::DisallowedPair`] for pairs the chip cannot couple.
///
/// # Examples
///
/// ```
/// use eqasm_compiler::{emit, schedule_asap, Circuit, EmitOptions, GateDurations};
/// use eqasm_core::Instantiation;
///
/// let inst = Instantiation::paper();
/// let mut c = Circuit::new(7);
/// c.single("Y", 0)?;
/// c.single("Y", 2)?;
/// c.measure(0)?;
/// let s = schedule_asap(&c, GateDurations::paper())?;
/// let program = emit(&s, &inst, &EmitOptions::experiment())?;
/// assert!(program.len() >= 4); // SMIS + QWAIT + bundles + STOP
/// # Ok::<(), eqasm_compiler::CompileError>(())
/// ```
pub fn emit(
    schedule: &Schedule,
    inst: &Instantiation,
    opts: &EmitOptions,
) -> Result<Vec<Instruction>, CompileError> {
    let params = inst.params();
    let topo = inst.topology();
    let w = params.vliw_width;
    let max_pi = params.max_pi() as u64;
    let max_qwait = params.max_qwait();

    let mut out: Vec<Instruction> = Vec::new();
    let mut s_alloc = RegAlloc::new(params.num_sregs);
    let mut t_alloc = RegAlloc::new(params.num_tregs);

    emit_waits(&mut out, opts.init_wait as u64, max_qwait);

    let mut prev_start: Option<u64> = None;
    for (start, gates) in schedule.points() {
        // Group by (name, arity) for SOMQ; BTreeMap keeps output
        // deterministic.
        let mut singles: BTreeMap<String, Vec<u8>> = BTreeMap::new();
        let mut twos: BTreeMap<String, Vec<eqasm_core::QubitPair>> = BTreeMap::new();
        for g in &gates {
            match &g.gate.kind {
                GateKind::Single { qubit } | GateKind::Measure { qubit } => {
                    singles
                        .entry(g.gate.name.to_ascii_uppercase())
                        .or_default()
                        .push(qubit.raw());
                }
                GateKind::Two { pair } => {
                    twos.entry(g.gate.name.to_ascii_uppercase())
                        .or_default()
                        .push(*pair);
                }
            }
        }

        // Resolve names and build bundle slots, emitting SMIS/SMIT for
        // masks not already held in a register.
        let mut slots: Vec<BundleOp> = Vec::new();
        for (name, qubits) in &singles {
            let def = inst
                .ops()
                .by_name(name)
                .map_err(|_| CompileError::UnknownOperation { name: name.clone() })?;
            if def.arity() != OpArity::SingleQubit {
                return Err(CompileError::UnknownOperation {
                    name: format!("{name} (configured as two-qubit)"),
                });
            }
            let mask = topo.single_mask(
                &qubits
                    .iter()
                    .map(|&q| eqasm_core::Qubit::new(q))
                    .collect::<Vec<_>>(),
            )?;
            let reg = s_alloc.get(mask, |idx, m| {
                out.push(Instruction::Smis {
                    sd: SReg::new(idx as u8),
                    mask: m,
                });
            });
            slots.push(BundleOp::single(def.opcode(), SReg::new(reg as u8)));
        }
        for (name, pairs) in &twos {
            let def = inst
                .ops()
                .by_name(name)
                .map_err(|_| CompileError::UnknownOperation { name: name.clone() })?;
            if def.arity() != OpArity::TwoQubit {
                return Err(CompileError::UnknownOperation {
                    name: format!("{name} (configured as single-qubit)"),
                });
            }
            for pair in pairs {
                if !topo.is_allowed(*pair) {
                    return Err(CompileError::DisallowedPair {
                        name: name.clone(),
                        pair: (pair.source(), pair.target()),
                    });
                }
            }
            let mask = topo.pair_mask(pairs)?;
            let reg = t_alloc.get(mask, |idx, m| {
                out.push(Instruction::Smit {
                    td: TReg::new(idx as u8),
                    mask: m,
                });
            });
            slots.push(BundleOp::two(def.opcode(), TReg::new(reg as u8)));
        }

        // Interval handling (ts3 with the instantiation's PI width).
        let interval = match prev_start {
            None => start + 1,
            Some(p) => start - p,
        };
        prev_start = Some(start);
        let first_pi = if interval > max_pi {
            emit_waits(&mut out, interval, max_qwait);
            0u8
        } else {
            interval as u8
        };

        // Split to VLIW width, PI on the first word, 0 on continuations,
        // QNOP padding on the last (§3.4.2).
        for (chunk_idx, chunk) in slots.chunks(w).enumerate() {
            let mut ops = chunk.to_vec();
            while ops.len() < w {
                ops.push(BundleOp::QNOP);
            }
            let pi = if chunk_idx == 0 { first_pi } else { 0 };
            out.push(Instruction::Bundle(Bundle::with_pre_interval(pi, ops)));
        }
    }

    emit_waits(&mut out, opts.final_wait as u64, max_qwait);
    if opts.append_stop {
        out.push(Instruction::Stop);
    }
    Ok(out)
}

/// Renders emitted instructions as re-assemblable text (quantum
/// operation names resolved through the instantiation).
pub fn program_text(instructions: &[Instruction], inst: &Instantiation) -> String {
    let mut out = String::new();
    for i in instructions {
        out.push_str(&i.pretty(inst.ops()));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Circuit, GateDurations};
    use crate::schedule::schedule_asap;

    fn emit_simple(c: &Circuit, opts: &EmitOptions) -> Vec<Instruction> {
        let inst = Instantiation::paper();
        let s = schedule_asap(c, GateDurations::paper()).unwrap();
        emit(&s, &inst, opts).unwrap()
    }

    #[test]
    fn somq_merges_into_one_mask() {
        let mut c = Circuit::new(7);
        c.single("X", 0).unwrap();
        c.single("X", 2).unwrap();
        c.single("X", 5).unwrap();
        let program = emit_simple(&c, &EmitOptions::bare());
        // One SMIS with the merged mask, one bundle, one STOP.
        let smis: Vec<&Instruction> = program
            .iter()
            .filter(|i| matches!(i, Instruction::Smis { .. }))
            .collect();
        assert_eq!(smis.len(), 1);
        assert!(matches!(smis[0], Instruction::Smis { mask: 0b100101, .. }));
        let bundles = program
            .iter()
            .filter(|i| matches!(i, Instruction::Bundle(_)))
            .count();
        assert_eq!(bundles, 1);
    }

    #[test]
    fn registers_are_reused_for_repeated_masks() {
        let mut c = Circuit::new(7);
        for _ in 0..10 {
            c.single("X", 0).unwrap();
        }
        let program = emit_simple(&c, &EmitOptions::bare());
        let smis = program
            .iter()
            .filter(|i| matches!(i, Instruction::Smis { .. }))
            .count();
        assert_eq!(smis, 1, "the same mask must not be re-loaded");
    }

    #[test]
    fn lru_eviction_under_pressure() {
        // 40 distinct masks through a 32-entry file: the first 32 take
        // free registers, the rest evict the least recently used; a
        // repeated mask is reused without a write.
        let mut alloc = RegAlloc::new(32);
        let mut writes = Vec::new();
        for mask in 0..40u32 {
            alloc.get(mask + 1, |idx, m| writes.push((idx, m)));
        }
        assert_eq!(writes.len(), 40, "every distinct mask needs one write");
        // Mask 40 is resident; mask 1 was evicted (LRU) and reloads.
        let before = writes.len();
        alloc.get(40, |idx, m| writes.push((idx, m)));
        assert_eq!(writes.len(), before, "resident mask must not reload");
        alloc.get(1, |idx, m| writes.push((idx, m)));
        assert_eq!(writes.len(), before + 1, "evicted mask must reload");
    }

    #[test]
    fn long_interval_uses_qwait_short_uses_pi() {
        let mut c = Circuit::new(7);
        c.single("X", 0).unwrap();
        c.measure(0).unwrap(); // starts at 1, interval 1 -> PI
        c.single("Y", 0).unwrap(); // starts at 16, interval 15 -> QWAIT
        let program = emit_simple(&c, &EmitOptions::bare());
        let qwaits: Vec<u32> = program
            .iter()
            .filter_map(|i| match i {
                Instruction::QWait { cycles } => Some(*cycles),
                _ => None,
            })
            .collect();
        assert_eq!(qwaits, vec![15]);
    }

    #[test]
    fn huge_wait_split_across_qwaits() {
        let mut out = Vec::new();
        emit_waits(&mut out, 3_000_000, (1 << 20) - 1);
        assert_eq!(out.len(), 3);
        let total: u64 = out
            .iter()
            .map(|i| match i {
                Instruction::QWait { cycles } => *cycles as u64,
                _ => 0,
            })
            .sum();
        assert_eq!(total, 3_000_000);
    }

    #[test]
    fn bundles_split_to_width_two() {
        // Three distinct ops at one point: 2 bundle words, second with
        // PI 0 and a QNOP pad.
        let mut c = Circuit::new(7);
        c.single("X", 0).unwrap();
        c.single("Y", 2).unwrap();
        c.single("X90", 5).unwrap();
        let program = emit_simple(&c, &EmitOptions::bare());
        let bundles: Vec<&Bundle> = program
            .iter()
            .filter_map(|i| match i {
                Instruction::Bundle(b) => Some(b),
                _ => None,
            })
            .collect();
        assert_eq!(bundles.len(), 2);
        assert_eq!(bundles[0].ops.len(), 2);
        assert_eq!(bundles[1].pre_interval, 0);
        assert!(bundles[1].ops[1].is_qnop());
    }

    #[test]
    fn unknown_operation_rejected() {
        let inst = Instantiation::paper();
        let mut c = Circuit::new(7);
        c.single("FROBNICATE", 0).unwrap();
        let s = schedule_asap(&c, GateDurations::paper()).unwrap();
        let err = emit(&s, &inst, &EmitOptions::bare()).unwrap_err();
        assert!(matches!(err, CompileError::UnknownOperation { .. }));
    }

    #[test]
    fn disallowed_pair_rejected() {
        let inst = Instantiation::paper();
        let mut c = Circuit::new(7);
        c.two("CZ", 0, 1).unwrap(); // 0-1 not coupled on surface7
        let s = schedule_asap(&c, GateDurations::paper()).unwrap();
        let err = emit(&s, &inst, &EmitOptions::bare()).unwrap_err();
        assert!(matches!(err, CompileError::DisallowedPair { .. }));
    }

    #[test]
    fn init_and_final_waits_emitted() {
        let mut c = Circuit::new(7);
        c.single("X", 0).unwrap();
        let program = emit_simple(&c, &EmitOptions::experiment());
        assert!(matches!(program[0], Instruction::QWait { cycles: 10_000 }));
        assert!(matches!(program.last(), Some(Instruction::Stop)));
        let penult = &program[program.len() - 2];
        assert!(matches!(penult, Instruction::QWait { cycles: 50 }));
    }

    #[test]
    fn emitted_text_reassembles() {
        let inst = Instantiation::paper();
        let mut c = Circuit::new(7);
        c.single("Y", 0).unwrap();
        c.single("Y", 2).unwrap();
        c.two("CZ", 2, 0).unwrap();
        c.measure(0).unwrap();
        let s = schedule_asap(&c, GateDurations::paper()).unwrap();
        let program = emit(&s, &inst, &EmitOptions::experiment()).unwrap();
        let text = program_text(&program, &inst);
        let reassembled = eqasm_asm::assemble(&text, &inst).unwrap();
        assert_eq!(reassembled.instructions(), program.as_slice());
    }
}
