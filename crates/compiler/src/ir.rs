//! The gate-level circuit intermediate representation.
//!
//! This is the compiler's input: a hardware-independent list of named
//! gates on qubits, equivalent to the QASM stage of the paper's
//! compilation model (Fig. 1). Gate *names* are resolved against the
//! compile-time operation configuration only at emission time (§3.2), so
//! workload generators can use arbitrary operation names (calibration
//! pulses, parameterised rotations) as the paper intends.

use eqasm_core::{Qubit, QubitPair};

use crate::error::CompileError;

/// What a gate acts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateKind {
    /// A single-qubit operation.
    Single {
        /// Target qubit.
        qubit: Qubit,
    },
    /// A two-qubit operation on a directed pair.
    Two {
        /// The directed (source, target) pair.
        pair: QubitPair,
    },
    /// A computational-basis measurement.
    Measure {
        /// Measured qubit.
        qubit: Qubit,
    },
}

/// One named gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Gate {
    /// The operation name (matched case-insensitively at emission).
    pub name: String,
    /// Operands.
    pub kind: GateKind,
}

impl Gate {
    /// The qubits this gate occupies.
    pub fn qubits(&self) -> Vec<Qubit> {
        match &self.kind {
            GateKind::Single { qubit } | GateKind::Measure { qubit } => vec![*qubit],
            GateKind::Two { pair } => vec![pair.source(), pair.target()],
        }
    }

    /// Returns `true` for two-qubit gates.
    pub fn is_two_qubit(&self) -> bool {
        matches!(self.kind, GateKind::Two { .. })
    }

    /// Returns `true` for measurements.
    pub fn is_measurement(&self) -> bool {
        matches!(self.kind, GateKind::Measure { .. })
    }
}

/// Gate durations, in quantum cycles, used by the scheduler.
///
/// The paper's target chip (§4.2): single-qubit gates 1 cycle, two-qubit
/// gates 2 cycles, measurement 15 cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateDurations {
    /// Single-qubit gate duration.
    pub single: u32,
    /// Two-qubit gate duration.
    pub two: u32,
    /// Measurement duration.
    pub measure: u32,
}

impl GateDurations {
    /// The paper's durations (§4.2).
    pub const fn paper() -> Self {
        GateDurations {
            single: 1,
            two: 2,
            measure: 15,
        }
    }

    /// The duration of a gate.
    pub fn of(&self, gate: &Gate) -> u32 {
        match gate.kind {
            GateKind::Single { .. } => self.single,
            GateKind::Two { .. } => self.two,
            GateKind::Measure { .. } => self.measure,
        }
    }
}

impl Default for GateDurations {
    fn default() -> Self {
        GateDurations::paper()
    }
}

/// A gate-level circuit.
///
/// # Examples
///
/// ```
/// use eqasm_compiler::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.single("X90", 0)?;
/// c.two("CZ", 0, 1)?;
/// c.measure_all();
/// assert_eq!(c.len(), 4);
/// assert_eq!(c.two_qubit_fraction(), 0.25);
/// # Ok::<(), eqasm_compiler::CompileError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` when the circuit has no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    fn check_qubit(&self, q: u8) -> Result<Qubit, CompileError> {
        let qubit = Qubit::new(q);
        if qubit.index() >= self.num_qubits {
            return Err(CompileError::QubitOutOfRange {
                qubit,
                num_qubits: self.num_qubits,
            });
        }
        Ok(qubit)
    }

    /// Appends a single-qubit gate.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::QubitOutOfRange`] for bad operands.
    pub fn single(
        &mut self,
        name: impl Into<String>,
        qubit: u8,
    ) -> Result<&mut Self, CompileError> {
        let qubit = self.check_qubit(qubit)?;
        self.gates.push(Gate {
            name: name.into(),
            kind: GateKind::Single { qubit },
        });
        Ok(self)
    }

    /// Appends a two-qubit gate on the directed pair `(source, target)`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::QubitOutOfRange`] for bad operands and
    /// [`CompileError::DisallowedPair`] when source and target coincide.
    pub fn two(
        &mut self,
        name: impl Into<String>,
        source: u8,
        target: u8,
    ) -> Result<&mut Self, CompileError> {
        let s = self.check_qubit(source)?;
        let t = self.check_qubit(target)?;
        if s == t {
            return Err(CompileError::DisallowedPair {
                name: name.into(),
                pair: (s, t),
            });
        }
        self.gates.push(Gate {
            name: name.into(),
            kind: GateKind::Two {
                pair: QubitPair::new(s, t),
            },
        });
        Ok(self)
    }

    /// Appends a measurement (operation name `MEASZ`).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::QubitOutOfRange`] for bad operands.
    pub fn measure(&mut self, qubit: u8) -> Result<&mut Self, CompileError> {
        let qubit = self.check_qubit(qubit)?;
        self.gates.push(Gate {
            name: "MEASZ".to_owned(),
            kind: GateKind::Measure { qubit },
        });
        Ok(self)
    }

    /// Measures every qubit.
    pub fn measure_all(&mut self) -> &mut Self {
        for q in 0..self.num_qubits as u8 {
            self.measure(q).expect("qubit in range by construction");
        }
        self
    }

    /// The fraction of gates that are two-qubit gates (the workload
    /// metric of §4.2: IM < 1 %, SR ≈ 39 %).
    pub fn two_qubit_fraction(&self) -> f64 {
        if self.gates.is_empty() {
            return 0.0;
        }
        self.gates.iter().filter(|g| g.is_two_qubit()).count() as f64 / self.gates.len() as f64
    }

    /// Appends all gates of another circuit.
    pub fn extend(&mut self, other: &Circuit) {
        self.gates.extend(other.gates.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_counts() {
        let mut c = Circuit::new(3);
        c.single("X", 0).unwrap();
        c.single("Y", 1).unwrap();
        c.two("CZ", 0, 1).unwrap();
        c.measure(2).unwrap();
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
        assert!((c.two_qubit_fraction() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut c = Circuit::new(2);
        assert!(matches!(
            c.single("X", 2),
            Err(CompileError::QubitOutOfRange { .. })
        ));
        assert!(c.two("CZ", 0, 3).is_err());
        assert!(c.measure(9).is_err());
    }

    #[test]
    fn gate_qubits() {
        let mut c = Circuit::new(3);
        c.two("CZ", 2, 0).unwrap();
        let g = &c.gates()[0];
        assert_eq!(g.qubits(), vec![Qubit::new(2), Qubit::new(0)]);
        assert!(g.is_two_qubit());
        assert!(!g.is_measurement());
    }

    #[test]
    fn measure_all_adds_n_measurements() {
        let mut c = Circuit::new(4);
        c.measure_all();
        assert_eq!(c.len(), 4);
        assert!(c.gates().iter().all(|g| g.is_measurement()));
    }

    #[test]
    fn durations_match_paper() {
        let d = GateDurations::paper();
        let mut c = Circuit::new(2);
        c.single("X", 0).unwrap();
        c.two("CZ", 0, 1).unwrap();
        c.measure(0).unwrap();
        assert_eq!(d.of(&c.gates()[0]), 1);
        assert_eq!(d.of(&c.gates()[1]), 2);
        assert_eq!(d.of(&c.gates()[2]), 15);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = Circuit::new(2);
        a.single("X", 0).unwrap();
        let mut b = Circuit::new(2);
        b.single("Y", 1).unwrap();
        a.extend(&b);
        assert_eq!(a.len(), 2);
    }
}
