//! Lifting executable eQASM back to timing-free circuit semantics.
//!
//! The paper's conclusion observes: "by removing the timing information
//! in the eQASM description, the quantum semantics of the program can be
//! kept and further converted into another executable format targeting
//! another hardware platform." This module implements that
//! retargeting path: [`lift_program`] walks an executable instruction
//! stream, tracks the target-register file contents, expands SOMQ masks
//! and reconstructs the gate-level [`Circuit`] — which can then be
//! re-scheduled and re-emitted for a different instantiation.

use eqasm_core::{Instantiation, Instruction, OpArity, OpTarget};

use crate::error::CompileError;
use crate::ir::Circuit;

/// Lifts an executable program back into a hardware-independent
/// circuit, dropping all timing (waits and pre-intervals) and classical
/// control instructions.
///
/// Control flow is not followed: the instruction stream is interpreted
/// linearly, as the paper's "removing the timing information" transform
/// implies for feed-forward-free code.
///
/// # Errors
///
/// Returns [`CompileError::UnknownOperation`] if a bundle references an
/// opcode missing from the instantiation, or mask-validation errors
/// from the ISA model.
///
/// # Examples
///
/// ```
/// use eqasm_compiler::{emit, lift_program, schedule_asap, Circuit, EmitOptions, GateDurations};
/// use eqasm_core::Instantiation;
///
/// let inst = Instantiation::paper();
/// let mut c = Circuit::new(7);
/// c.single("Y90", 0)?;
/// c.two("CZ", 2, 0)?;
/// c.measure(0)?;
/// let schedule = schedule_asap(&c, GateDurations::paper())?;
/// let program = emit(&schedule, &inst, &EmitOptions::experiment())?;
///
/// // Round trip: the lifted circuit has the same gates.
/// let lifted = lift_program(&program, &inst)?;
/// assert_eq!(lifted.len(), c.len());
/// # Ok::<(), eqasm_compiler::CompileError>(())
/// ```
pub fn lift_program(
    program: &[Instruction],
    inst: &Instantiation,
) -> Result<Circuit, CompileError> {
    let topo = inst.topology();
    let params = inst.params();
    let mut sregs = vec![0u32; params.num_sregs];
    let mut tregs = vec![0u32; params.num_tregs];
    let mut circuit = Circuit::new(topo.num_qubits());

    for instruction in program {
        match instruction {
            Instruction::Smis { sd, mask } => {
                topo.check_single_mask(*mask)?;
                sregs[sd.index()] = *mask;
            }
            Instruction::Smit { td, mask } => {
                topo.check_pair_mask(*mask)?;
                tregs[td.index()] = *mask;
            }
            Instruction::Bundle(bundle) => {
                for op in &bundle.ops {
                    if op.is_qnop() {
                        continue;
                    }
                    let def = inst.ops().by_opcode(op.opcode).map_err(|_| {
                        CompileError::UnknownOperation {
                            name: format!("opcode {:#x}", op.opcode.raw()),
                        }
                    })?;
                    match (def.arity(), op.target) {
                        (OpArity::SingleQubit, OpTarget::S(s)) => {
                            let mask = sregs[s.index()];
                            for q in topo.qubits_in_mask(mask) {
                                if def.is_measurement() {
                                    circuit.measure(q.raw())?;
                                } else {
                                    circuit.single(def.name(), q.raw())?;
                                }
                            }
                        }
                        (OpArity::TwoQubit, OpTarget::T(t)) => {
                            let mask = tregs[t.index()];
                            for pair in topo.pairs_in_mask(mask) {
                                circuit.two(
                                    def.name(),
                                    pair.source().raw(),
                                    pair.target().raw(),
                                )?;
                            }
                        }
                        _ => {
                            return Err(CompileError::UnknownOperation {
                                name: format!("{} with a mismatched target operand", def.name()),
                            })
                        }
                    }
                }
            }
            // Timing and auxiliary classical instructions carry no
            // quantum semantics.
            _ => {}
        }
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emit::{emit, EmitOptions};
    use crate::ir::{GateDurations, GateKind};
    use crate::schedule::schedule_asap;
    use eqasm_core::Topology;

    fn sample_circuit() -> Circuit {
        let mut c = Circuit::new(7);
        c.single("Y90", 0).unwrap();
        c.single("Y90", 3).unwrap();
        c.two("CZ", 0, 3).unwrap();
        c.single("YM90", 3).unwrap();
        c.measure(0).unwrap();
        c.measure(3).unwrap();
        c
    }

    #[test]
    fn lift_inverts_emit() {
        let inst = Instantiation::paper();
        let c = sample_circuit();
        let schedule = schedule_asap(&c, GateDurations::paper()).unwrap();
        let program = emit(&schedule, &inst, &EmitOptions::experiment()).unwrap();
        let lifted = lift_program(&program, &inst).unwrap();
        // Same multiset of gates (order may differ across parallel
        // groups but this circuit is sequential enough to match).
        assert_eq!(lifted.len(), c.len());
        let count = |c: &Circuit, name: &str| c.gates().iter().filter(|g| g.name == name).count();
        for name in ["Y90", "YM90", "CZ", "MEASZ"] {
            assert_eq!(count(&lifted, name), count(&c, name), "{name}");
        }
    }

    #[test]
    fn lift_expands_somq_masks() {
        let inst = Instantiation::paper();
        let program =
            eqasm_asm::assemble("SMIS S7, {0, 2, 5}\nQWAIT 10\n0, X S7\nSTOP", &inst).unwrap();
        let lifted = lift_program(program.instructions(), &inst).unwrap();
        assert_eq!(lifted.len(), 3, "one gate per selected qubit");
        assert!(lifted.gates().iter().all(|g| g.name == "X"));
    }

    #[test]
    fn lift_drops_timing_and_classical() {
        let inst = Instantiation::paper();
        let program = eqasm_asm::assemble(
            "LDI r0, 5\nQWAIT 100\nSMIS S0, {1}\nQWAITR r0\n1, Y S0\nNOP\nSTOP",
            &inst,
        )
        .unwrap();
        let lifted = lift_program(program.instructions(), &inst).unwrap();
        assert_eq!(lifted.len(), 1);
        assert_eq!(lifted.gates()[0].name, "Y");
    }

    #[test]
    fn retarget_surface7_program_to_linear_chip() {
        // The conclusion's scenario: take a program compiled for the
        // seven-qubit surface chip, strip timing, re-emit for a
        // different topology (a linear chip where (0,1) is coupled).
        let inst7 = Instantiation::paper();
        let mut c = Circuit::new(7);
        c.single("Y90", 0).unwrap();
        c.single("Y90", 1).unwrap();
        c.measure(0).unwrap();
        let schedule = schedule_asap(&c, GateDurations::paper()).unwrap();
        let program7 = emit(&schedule, &inst7, &EmitOptions::experiment()).unwrap();

        let lifted = lift_program(&program7, &inst7).unwrap();
        let linear = inst7.clone().with_topology(Topology::linear(7));
        let schedule2 = schedule_asap(&lifted, GateDurations::paper()).unwrap();
        let program_linear = emit(&schedule2, &linear, &EmitOptions::bare()).unwrap();
        assert!(!program_linear.is_empty());
        // And it lifts back to the same gates again.
        let lifted2 = lift_program(&program_linear, &linear).unwrap();
        assert_eq!(lifted2.len(), lifted.len());
    }

    #[test]
    fn lift_preserves_pair_direction() {
        let inst = Instantiation::paper();
        let program =
            eqasm_asm::assemble("SMIT T0, {(3, 1)}\nQWAIT 10\n1, CNOT T0\nSTOP", &inst).unwrap();
        let lifted = lift_program(program.instructions(), &inst).unwrap();
        match &lifted.gates()[0].kind {
            GateKind::Two { pair } => {
                assert_eq!(pair.source().index(), 3);
                assert_eq!(pair.target().index(), 1);
            }
            other => panic!("expected two-qubit gate, got {other:?}"),
        }
    }
}
