//! The ASAP list scheduler: gate-level circuit → timed circuit.
//!
//! The second compilation step of the paper's model (Fig. 1) performs
//! scheduling against hardware constraints. Here each gate starts as
//! soon as all its operand qubits are free, respecting the §4.2 gate
//! durations. The resulting [`Schedule`] is the common input of both the
//! instruction-count analysis (Fig. 7) and the emitting code generator.

use eqasm_core::Qubit;

use crate::error::CompileError;
use crate::ir::{Circuit, Gate, GateDurations};

/// A gate with its scheduled start cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TimedGate {
    /// Start cycle (quantum cycles from the schedule origin).
    pub start: u64,
    /// Duration, in cycles.
    pub duration: u32,
    /// The gate.
    pub gate: Gate,
}

/// A timed circuit, sorted by start cycle.
///
/// # Examples
///
/// ```
/// use eqasm_compiler::{schedule_asap, Circuit, GateDurations};
///
/// let mut c = Circuit::new(2);
/// c.single("X", 0)?; // cycle 0
/// c.single("Y", 0)?; // cycle 1 (same qubit)
/// c.single("X", 1)?; // cycle 0 (independent qubit)
/// let s = schedule_asap(&c, GateDurations::paper())?;
/// assert_eq!(s.makespan(), 2);
/// assert_eq!(s.num_points(), 2);
/// # Ok::<(), eqasm_compiler::CompileError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    num_qubits: usize,
    ops: Vec<TimedGate>,
    makespan: u64,
}

impl Schedule {
    /// Builds a schedule from explicitly timed gates (used by workload
    /// generators that control timing directly). Gates are sorted by
    /// start cycle; program order is preserved within a cycle.
    pub fn from_timed(num_qubits: usize, mut ops: Vec<TimedGate>) -> Self {
        ops.sort_by_key(|t| t.start);
        let makespan = ops
            .iter()
            .map(|t| t.start + t.duration as u64)
            .max()
            .unwrap_or(0);
        Schedule {
            num_qubits,
            ops,
            makespan,
        }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The timed gates, sorted by start cycle.
    pub fn ops(&self) -> &[TimedGate] {
        &self.ops
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` for an empty schedule.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Total schedule length in cycles.
    pub fn makespan(&self) -> u64 {
        self.makespan
    }

    /// Number of distinct timing points (start cycles).
    pub fn num_points(&self) -> usize {
        let mut points: Vec<u64> = self.ops.iter().map(|t| t.start).collect();
        points.dedup();
        points.len()
    }

    /// Iterates over `(start_cycle, gates)` groups in time order.
    pub fn points(&self) -> Vec<(u64, Vec<&TimedGate>)> {
        let mut out: Vec<(u64, Vec<&TimedGate>)> = Vec::new();
        for op in &self.ops {
            match out.last_mut() {
                Some((start, group)) if *start == op.start => group.push(op),
                _ => out.push((op.start, vec![op])),
            }
        }
        out
    }

    /// Average number of gates per timing point.
    pub fn avg_ops_per_point(&self) -> f64 {
        let points = self.num_points();
        if points == 0 {
            0.0
        } else {
            self.ops.len() as f64 / points as f64
        }
    }
}

/// Schedules a circuit as-soon-as-possible.
///
/// # Errors
///
/// Returns [`CompileError::QubitOutOfRange`] if a gate addresses a qubit
/// outside the circuit (only possible for hand-built [`Gate`] lists).
pub fn schedule_asap(
    circuit: &Circuit,
    durations: GateDurations,
) -> Result<Schedule, CompileError> {
    let n = circuit.num_qubits();
    let mut avail: Vec<u64> = vec![0; n];
    let mut ops = Vec::with_capacity(circuit.len());
    for gate in circuit.gates() {
        let qubits = gate.qubits();
        for &q in &qubits {
            if q.index() >= n {
                return Err(CompileError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: n,
                });
            }
        }
        let start = qubits
            .iter()
            .map(|q: &Qubit| avail[q.index()])
            .max()
            .unwrap_or(0);
        let duration = durations.of(gate);
        for &q in &qubits {
            avail[q.index()] = start + duration as u64;
        }
        ops.push(TimedGate {
            start,
            duration,
            gate: gate.clone(),
        });
    }
    Ok(Schedule::from_timed(n, ops))
}

/// Schedules a circuit as-late-as-possible against the makespan of its
/// ASAP schedule.
///
/// ALAP pushes gates towards the *end* of the program, minimising the
/// idle time between a qubit's last gate and its measurement — which
/// matters on NISQ hardware exactly as Fig. 12 demonstrates (errors
/// accumulate during idling). The ablation bench compares the two
/// policies under the calibrated noise model.
///
/// # Errors
///
/// Returns [`CompileError::QubitOutOfRange`] for invalid operands.
pub fn schedule_alap(
    circuit: &Circuit,
    durations: GateDurations,
) -> Result<Schedule, CompileError> {
    let asap = schedule_asap(circuit, durations)?;
    let makespan = asap.makespan();
    let n = circuit.num_qubits();
    // Walk backwards: each gate ends as late as its qubits allow.
    let mut deadline: Vec<u64> = vec![makespan; n];
    let mut ops: Vec<TimedGate> = Vec::with_capacity(circuit.len());
    for gate in circuit.gates().iter().rev() {
        let qubits = gate.qubits();
        for &q in &qubits {
            if q.index() >= n {
                return Err(CompileError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: n,
                });
            }
        }
        let duration = durations.of(gate);
        let end = qubits
            .iter()
            .map(|q: &Qubit| deadline[q.index()])
            .min()
            .unwrap_or(makespan);
        let start = end.saturating_sub(duration as u64);
        for &q in &qubits {
            deadline[q.index()] = start;
        }
        ops.push(TimedGate {
            start,
            duration,
            gate: gate.clone(),
        });
    }
    Ok(Schedule::from_timed(n, ops))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_qubits_run_in_parallel() {
        let mut c = Circuit::new(3);
        c.single("X", 0).unwrap();
        c.single("Y", 1).unwrap();
        c.single("X90", 2).unwrap();
        let s = schedule_asap(&c, GateDurations::paper()).unwrap();
        assert!(s.ops().iter().all(|t| t.start == 0));
        assert_eq!(s.makespan(), 1);
        assert_eq!(s.num_points(), 1);
        assert!((s.avg_ops_per_point() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn same_qubit_serialises() {
        let mut c = Circuit::new(1);
        c.single("X", 0).unwrap();
        c.single("Y", 0).unwrap();
        c.single("X", 0).unwrap();
        let s = schedule_asap(&c, GateDurations::paper()).unwrap();
        let starts: Vec<u64> = s.ops().iter().map(|t| t.start).collect();
        assert_eq!(starts, vec![0, 1, 2]);
    }

    #[test]
    fn two_qubit_gate_blocks_both_operands() {
        let mut c = Circuit::new(2);
        c.two("CZ", 0, 1).unwrap(); // 0..2
        c.single("X", 0).unwrap(); // 2
        c.single("Y", 1).unwrap(); // 2
        let s = schedule_asap(&c, GateDurations::paper()).unwrap();
        assert_eq!(s.ops()[0].start, 0);
        assert_eq!(s.ops()[1].start, 2);
        assert_eq!(s.ops()[2].start, 2);
    }

    #[test]
    fn measurement_duration_respected() {
        let mut c = Circuit::new(1);
        c.measure(0).unwrap();
        c.single("X", 0).unwrap();
        let s = schedule_asap(&c, GateDurations::paper()).unwrap();
        assert_eq!(s.ops()[1].start, 15);
        assert_eq!(s.makespan(), 16);
    }

    #[test]
    fn dependency_chain_with_two_qubit_gates() {
        // CZ(0,1) then CZ(1,2): serialised by the shared qubit.
        let mut c = Circuit::new(3);
        c.two("CZ", 0, 1).unwrap();
        c.two("CZ", 1, 2).unwrap();
        c.two("CZ", 0, 2).unwrap();
        let s = schedule_asap(&c, GateDurations::paper()).unwrap();
        let starts: Vec<u64> = s.ops().iter().map(|t| t.start).collect();
        assert_eq!(starts, vec![0, 2, 4]);
    }

    #[test]
    fn points_grouping() {
        let mut c = Circuit::new(2);
        c.single("X", 0).unwrap();
        c.single("Y", 1).unwrap();
        c.single("X90", 0).unwrap();
        let s = schedule_asap(&c, GateDurations::paper()).unwrap();
        let points = s.points();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].1.len(), 2);
        assert_eq!(points[1].1.len(), 1);
    }

    #[test]
    fn from_timed_sorts_and_computes_makespan() {
        use crate::ir::GateKind;
        let g = |start: u64| TimedGate {
            start,
            duration: 1,
            gate: Gate {
                name: "X".into(),
                kind: GateKind::Single {
                    qubit: Qubit::new(0),
                },
            },
        };
        let s = Schedule::from_timed(1, vec![g(5), g(1), g(3)]);
        let starts: Vec<u64> = s.ops().iter().map(|t| t.start).collect();
        assert_eq!(starts, vec![1, 3, 5]);
        assert_eq!(s.makespan(), 6);
    }

    #[test]
    fn empty_schedule() {
        let c = Circuit::new(2);
        let s = schedule_asap(&c, GateDurations::paper()).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.makespan(), 0);
        assert_eq!(s.avg_ops_per_point(), 0.0);
    }

    #[test]
    fn alap_pushes_gates_late() {
        // One early gate on q0, a long chain on q1: ALAP moves the q0
        // gate next to the end instead of cycle 0.
        let mut c = Circuit::new(2);
        c.single("X", 0).unwrap();
        for _ in 0..5 {
            c.single("Y", 1).unwrap();
        }
        let asap = schedule_asap(&c, GateDurations::paper()).unwrap();
        let alap = schedule_alap(&c, GateDurations::paper()).unwrap();
        assert_eq!(asap.makespan(), alap.makespan());
        let x_asap = asap
            .ops()
            .iter()
            .find(|t| t.gate.name == "X")
            .unwrap()
            .start;
        let x_alap = alap
            .ops()
            .iter()
            .find(|t| t.gate.name == "X")
            .unwrap()
            .start;
        assert_eq!(x_asap, 0);
        assert_eq!(x_alap, 4, "ALAP must defer the isolated gate");
    }

    #[test]
    fn alap_preserves_dependencies() {
        let mut c = Circuit::new(3);
        c.single("X", 0).unwrap();
        c.two("CZ", 0, 1).unwrap();
        c.single("Y", 1).unwrap();
        c.measure(2).unwrap();
        let alap = schedule_alap(&c, GateDurations::paper()).unwrap();
        let start_of = |name: &str| {
            alap.ops()
                .iter()
                .find(|t| t.gate.name == name)
                .unwrap()
                .start
        };
        assert!(start_of("X") < start_of("CZ"));
        assert!(start_of("CZ") + 2 <= start_of("Y"));
    }

    #[test]
    fn alap_equals_asap_for_sequential_chain() {
        let mut c = Circuit::new(1);
        for _ in 0..6 {
            c.single("X", 0).unwrap();
        }
        let asap = schedule_asap(&c, GateDurations::paper()).unwrap();
        let alap = schedule_alap(&c, GateDurations::paper()).unwrap();
        let a: Vec<u64> = asap.ops().iter().map(|t| t.start).collect();
        let b: Vec<u64> = alap.ops().iter().map(|t| t.start).collect();
        assert_eq!(a, b);
    }
}
