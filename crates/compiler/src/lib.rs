//! # eqasm-compiler — the eQASM compiler back end
//!
//! The second compilation step of the paper's model (Fig. 1): take a
//! hardware-independent gate-level circuit, schedule it against the
//! chip's gate durations, and either
//!
//! * **count** the instructions it needs under a configurable
//!   architecture (timing specification ts1/ts2/ts3, PI width, SOMQ,
//!   VLIW width) — the Fig. 7 design-space exploration, or
//! * **emit** runnable eQASM for a concrete instantiation, with target
//!   register allocation, SOMQ mask merging, PI/QWAIT timing and VLIW
//!   bundle packing.
//!
//! ```
//! use eqasm_compiler::{
//!     count_instructions, emit, schedule_asap, Circuit, CodegenConfig, EmitOptions,
//!     GateDurations,
//! };
//! use eqasm_core::Instantiation;
//!
//! let mut circuit = Circuit::new(7);
//! for q in 0..7 {
//!     circuit.single("Y90", q)?; // prepare superpositions everywhere
//! }
//! circuit.measure_all();
//! let schedule = schedule_asap(&circuit, GateDurations::paper())?;
//!
//! // Fig. 7-style analysis: the paper's Config 9 needs far fewer
//! // instructions than the QuMIS-style baseline.
//! let baseline = count_instructions(&schedule, &CodegenConfig::fig7(1, 1));
//! let paper = count_instructions(&schedule, &CodegenConfig::paper());
//! assert!(paper.instructions < baseline.instructions);
//!
//! // And actually runnable code for the paper's instantiation:
//! let program = emit(&schedule, &Instantiation::paper(), &EmitOptions::experiment())?;
//! assert!(!program.is_empty());
//! # Ok::<(), eqasm_compiler::CompileError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod count;
mod emit;
mod error;
mod ir;
mod lift;
mod schedule;

pub use count::{count_instructions, CodegenConfig, CountReport, TimingSpec};
pub use emit::{emit, program_text, EmitOptions};
pub use error::CompileError;
pub use ir::{Circuit, Gate, GateDurations, GateKind};
pub use lift::lift_program;
pub use schedule::{schedule_alap, schedule_asap, Schedule, TimedGate};
