//! Compiler back-end errors.

use std::error::Error;
use std::fmt;

use eqasm_core::{CoreError, Qubit};

/// Errors raised while scheduling or generating eQASM code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// A gate references a qubit outside the circuit.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: Qubit,
        /// The circuit's qubit count.
        num_qubits: usize,
    },
    /// A gate name is not present in the operation configuration used
    /// for emission.
    UnknownOperation {
        /// The unresolved name.
        name: String,
    },
    /// A two-qubit gate uses a pair the target topology does not allow.
    DisallowedPair {
        /// The operation name.
        name: String,
        /// The offending pair, as (source, target).
        pair: (Qubit, Qubit),
    },
    /// More distinct target masks are live at one timing point than the
    /// register file can hold.
    RegisterPressure {
        /// Number of masks needed simultaneously.
        needed: usize,
        /// Register-file size.
        available: usize,
    },
    /// Error bubbled up from the ISA model.
    Core(CoreError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::QubitOutOfRange { qubit, num_qubits } => {
                write!(f, "gate on {qubit} but the circuit has {num_qubits} qubits")
            }
            CompileError::UnknownOperation { name } => {
                write!(f, "operation `{name}` is not in the operation configuration")
            }
            CompileError::DisallowedPair { name, pair } => write!(
                f,
                "operation `{name}` on pair ({}, {}) which the topology does not allow",
                pair.0.index(),
                pair.1.index()
            ),
            CompileError::RegisterPressure { needed, available } => write!(
                f,
                "{needed} distinct target masks needed at one point but only {available} registers exist"
            ),
            CompileError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for CompileError {
    fn from(e: CoreError) -> Self {
        CompileError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let e = CompileError::UnknownOperation { name: "Q".into() };
        assert!(!e.to_string().is_empty());
        let e = CompileError::RegisterPressure {
            needed: 40,
            available: 32,
        };
        assert!(e.to_string().contains("40"));
    }

    #[test]
    fn error_trait() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<CompileError>();
    }
}
