//! Error type shared by the ISA-model layer.

use std::error::Error;
use std::fmt;

use crate::qubit::{PairAddr, Qubit, QubitPair};

/// Errors raised while constructing or validating ISA-model values.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A qubit address is out of range for the topology.
    InvalidQubit {
        /// The offending qubit.
        qubit: Qubit,
        /// Number of qubits the topology provides.
        num_qubits: usize,
    },
    /// A directed pair is not an allowed qubit pair of the topology.
    InvalidPair {
        /// The offending pair.
        pair: QubitPair,
    },
    /// A pair address is out of range for the topology.
    InvalidPairAddr {
        /// The offending address.
        addr: PairAddr,
        /// Number of directed edges the topology provides.
        num_pairs: usize,
    },
    /// A mask has bits set beyond the topology's qubit/pair count.
    MaskOutOfRange {
        /// The raw mask value.
        mask: u32,
        /// The number of valid bits.
        width: u32,
    },
    /// Two selected edges of a two-qubit target register share a qubit
    /// (§4.3: the assembler must reject such register values).
    TargetRegisterConflict {
        /// First selected pair.
        first: QubitPair,
        /// Second selected pair, sharing a qubit with `first`.
        second: QubitPair,
    },
    /// A quantum operation name is not present in the operation
    /// configuration.
    UnknownOperation {
        /// The unresolved name.
        name: String,
    },
    /// A quantum opcode is not present in the operation configuration.
    UnknownOpcode {
        /// The unresolved opcode value.
        opcode: u16,
    },
    /// An operation name was configured twice.
    DuplicateOperation {
        /// The duplicated name.
        name: String,
    },
    /// The opcode space of the instantiation (9 bits in the paper's
    /// instantiation) is exhausted.
    OpcodeSpaceExhausted {
        /// Number of opcodes the instantiation supports.
        capacity: usize,
    },
    /// A register index is out of range for the instantiation.
    InvalidRegister {
        /// Register-file kind, e.g. "GPR", "S", "T".
        kind: &'static str,
        /// The offending index.
        index: usize,
        /// Size of the register file.
        count: usize,
    },
    /// An immediate value does not fit the instruction field.
    ImmediateOutOfRange {
        /// Field description, e.g. "QWAIT imm".
        field: &'static str,
        /// The offending value.
        value: i64,
        /// Number of bits the field provides.
        bits: u32,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidQubit { qubit, num_qubits } => write!(
                f,
                "qubit {qubit} is out of range for a {num_qubits}-qubit topology"
            ),
            CoreError::InvalidPair { pair } => {
                write!(
                    f,
                    "pair {pair} is not an allowed qubit pair of the topology"
                )
            }
            CoreError::InvalidPairAddr { addr, num_pairs } => write!(
                f,
                "pair address {addr} is out of range for a topology with {num_pairs} directed edges"
            ),
            CoreError::MaskOutOfRange { mask, width } => write!(
                f,
                "mask {mask:#x} has bits set beyond the {width}-bit field of this topology"
            ),
            CoreError::TargetRegisterConflict { first, second } => write!(
                f,
                "invalid two-qubit target register value: pairs {first} and {second} share a qubit"
            ),
            CoreError::UnknownOperation { name } => {
                write!(f, "quantum operation `{name}` is not configured")
            }
            CoreError::UnknownOpcode { opcode } => {
                write!(f, "quantum opcode {opcode:#x} is not configured")
            }
            CoreError::DuplicateOperation { name } => {
                write!(f, "quantum operation `{name}` is configured twice")
            }
            CoreError::OpcodeSpaceExhausted { capacity } => write!(
                f,
                "opcode space exhausted: the instantiation supports {capacity} quantum opcodes"
            ),
            CoreError::InvalidRegister { kind, index, count } => write!(
                f,
                "{kind} register index {index} is out of range (register file has {count} entries)"
            ),
            CoreError::ImmediateOutOfRange { field, value, bits } => {
                write!(
                    f,
                    "value {value} does not fit in the {bits}-bit {field} field"
                )
            }
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let samples: Vec<CoreError> = vec![
            CoreError::InvalidQubit {
                qubit: Qubit::new(9),
                num_qubits: 7,
            },
            CoreError::InvalidPair {
                pair: QubitPair::from_raw(0, 4),
            },
            CoreError::TargetRegisterConflict {
                first: QubitPair::from_raw(2, 0),
                second: QubitPair::from_raw(0, 3),
            },
            CoreError::UnknownOperation {
                name: "FOO".to_owned(),
            },
            CoreError::ImmediateOutOfRange {
                field: "QWAIT imm",
                value: 1 << 30,
                bits: 20,
            },
        ];
        for e in samples {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            let first = msg.chars().next().unwrap();
            assert!(
                first.is_lowercase() || !first.is_alphabetic(),
                "error message should start lowercase: {msg}"
            );
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<CoreError>();
    }
}
