//! # eqasm-core — the eQASM ISA model
//!
//! This crate models the architecture-level concepts of **eQASM**, the
//! executable quantum instruction set architecture of Fu et al.
//! (HPCA 2019): physical qubits and chip topologies, the architectural
//! state of Fig. 2 (general purpose registers, comparison flags,
//! single-/two-qubit operation target registers, qubit measurement result
//! registers, execution flags), the instruction set of Table 1, the
//! microcode model of §4.3 and the compile-time quantum operation
//! configuration of §3.2.
//!
//! It is the shared foundation of the whole workspace: the assembler
//! (`eqasm-asm`), the QuMA v2 microarchitecture simulator
//! (`eqasm-microarch`) and the compiler back end (`eqasm-compiler`) all
//! speak the types defined here.
//!
//! ## Quick tour
//!
//! ```
//! use eqasm_core::{Instantiation, Instruction, Bundle, BundleOp, SReg};
//!
//! // The paper's instantiation: seven-qubit chip, VLIW width 2,
//! // 3-bit pre-interval, 9-bit quantum opcodes.
//! let inst = Instantiation::paper();
//!
//! // Build the executable form of `1, X s0 | Y s1` by hand.
//! let x = inst.ops().by_name("X")?.opcode();
//! let y = inst.ops().by_name("Y")?.opcode();
//! let bundle = Instruction::Bundle(Bundle::with_pre_interval(
//!     1,
//!     vec![BundleOp::single(x, SReg::new(0)), BundleOp::single(y, SReg::new(1))],
//! ));
//! assert!(bundle.is_quantum());
//! # Ok::<(), eqasm_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod error;
mod flags;
mod instantiation;
mod isa;
mod microcode;
mod opconfig;
mod qubit;
mod registers;
mod topology;

pub use error::CoreError;
pub use flags::{CmpFlag, CmpFlags, ExecFlag, ExecFlagRegister, ParseCmpFlagError};
pub use instantiation::{ArchParams, Instantiation};
pub use isa::{Bundle, BundleOp, Instruction, OpTarget};
pub use microcode::{Codeword, DeviceKind, MicroInstruction, MicroOp};
pub use opconfig::{OpArity, OpConfig, OpConfigBuilder, OpDef, PulseKind, QOpcode, TwoQubitGate};
pub use qubit::{PairAddr, Qubit, QubitPair};
pub use registers::{Gpr, GprFile, MaskFile, MeasurementRegister, SReg, TReg};
pub use topology::{OpSelect, PairRole, Topology};
