//! The microcode model: micro-operations and the Q control store.
//!
//! eQASM decodes quantum opcodes through a microcode unit (§3.2, §4.3):
//! each opcode is translated into one micro-operation for a single-qubit
//! operation, or a pair (`µ op_src`, `µ op_tgt`) for a two-qubit
//! operation. Micro-operations carry a *codeword* that selects a
//! pre-uploaded pulse in the codeword-triggered pulse generation unit, a
//! device kind, a duration and the execution-flag selection used by fast
//! conditional execution.

use std::fmt;

use crate::flags::ExecFlag;

/// A codeword identifying one pre-uploaded pulse in the analog-digital
/// interface (§4.4: "All operations on UHFQCs and HDAWGs are codeword
/// triggered").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Codeword(u32);

impl Codeword {
    /// Creates a codeword.
    pub const fn new(value: u32) -> Self {
        Codeword(value)
    }

    /// Returns the raw codeword value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Codeword {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cw{}", self.0)
    }
}

impl From<u32> for Codeword {
    fn from(v: u32) -> Self {
        Codeword(v)
    }
}

/// The class of control electronics a micro-operation drives (Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Microwave pulse generation (HDAWG + VSM): single-qubit x/y
    /// rotations.
    Microwave,
    /// Flux pulse generation (HDAWG flux lines): two-qubit CZ gates and
    /// single-qubit z rotations.
    Flux,
    /// Measurement pulse generation and discrimination (UHFQC per
    /// feedline).
    Measurement,
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeviceKind::Microwave => "microwave",
            DeviceKind::Flux => "flux",
            DeviceKind::Measurement => "measurement",
        };
        f.write_str(s)
    }
}

/// One micro-operation: the unit of work sent to a device at one timing
/// point.
///
/// # Examples
///
/// ```
/// use eqasm_core::{Codeword, DeviceKind, ExecFlag, MicroOp};
///
/// let mw = MicroOp::new(Codeword::new(3), DeviceKind::Microwave, 1);
/// assert_eq!(mw.condition(), ExecFlag::Always);
/// let conditional = mw.with_condition(ExecFlag::LastIsOne);
/// assert_eq!(conditional.condition(), ExecFlag::LastIsOne);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MicroOp {
    codeword: Codeword,
    device: DeviceKind,
    duration_cycles: u32,
    condition: ExecFlag,
}

impl MicroOp {
    /// Creates an unconditional micro-operation.
    pub const fn new(codeword: Codeword, device: DeviceKind, duration_cycles: u32) -> Self {
        MicroOp {
            codeword,
            device,
            duration_cycles,
            condition: ExecFlag::Always,
        }
    }

    /// Returns a copy gated on the given execution flag (fast conditional
    /// execution, §3.5).
    pub const fn with_condition(mut self, condition: ExecFlag) -> Self {
        self.condition = condition;
        self
    }

    /// The pulse codeword.
    pub const fn codeword(self) -> Codeword {
        self.codeword
    }

    /// The device class this micro-operation drives.
    pub const fn device(self) -> DeviceKind {
        self.device
    }

    /// Duration of the triggered pulse, in quantum cycles.
    pub const fn duration_cycles(self) -> u32 {
        self.duration_cycles
    }

    /// The execution-flag selection signal for fast conditional
    /// execution.
    pub const fn condition(self) -> ExecFlag {
        self.condition
    }
}

impl fmt::Display for MicroOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} ({} cy, {})",
            self.codeword, self.device, self.duration_cycles, self.condition
        )
    }
}

/// The microinstruction a quantum opcode decodes into: one
/// micro-operation for single-qubit operations, a source/target pair for
/// two-qubit operations (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroInstruction {
    /// Single-qubit operation: `µ op` applied to every selected qubit.
    Single(MicroOp),
    /// Two-qubit operation: `µ op_src` applied to the source qubit and
    /// `µ op_tgt` to the target qubit of every selected pair.
    Pair {
        /// Micro-operation applied to the source qubit.
        src: MicroOp,
        /// Micro-operation applied to the target qubit.
        tgt: MicroOp,
    },
}

impl MicroInstruction {
    /// Returns `true` for a two-qubit (pair) microinstruction.
    pub const fn is_pair(&self) -> bool {
        matches!(self, MicroInstruction::Pair { .. })
    }

    /// The longest micro-operation duration, i.e. how long the operation
    /// occupies its qubits.
    pub fn duration_cycles(&self) -> u32 {
        match self {
            MicroInstruction::Single(op) => op.duration_cycles(),
            MicroInstruction::Pair { src, tgt } => src.duration_cycles().max(tgt.duration_cycles()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codeword_roundtrip() {
        let cw = Codeword::new(42);
        assert_eq!(cw.raw(), 42);
        assert_eq!(Codeword::from(42u32), cw);
        assert_eq!(cw.to_string(), "cw42");
    }

    #[test]
    fn micro_op_accessors() {
        let op = MicroOp::new(Codeword::new(7), DeviceKind::Flux, 2);
        assert_eq!(op.codeword(), Codeword::new(7));
        assert_eq!(op.device(), DeviceKind::Flux);
        assert_eq!(op.duration_cycles(), 2);
        assert_eq!(op.condition(), ExecFlag::Always);
    }

    #[test]
    fn conditional_micro_op() {
        let op = MicroOp::new(Codeword::new(1), DeviceKind::Microwave, 1)
            .with_condition(ExecFlag::LastIsOne);
        assert_eq!(op.condition(), ExecFlag::LastIsOne);
    }

    #[test]
    fn pair_duration_is_max() {
        let src = MicroOp::new(Codeword::new(1), DeviceKind::Flux, 2);
        let tgt = MicroOp::new(Codeword::new(2), DeviceKind::Flux, 3);
        let mi = MicroInstruction::Pair { src, tgt };
        assert!(mi.is_pair());
        assert_eq!(mi.duration_cycles(), 3);
    }

    #[test]
    fn single_duration() {
        let mi = MicroInstruction::Single(MicroOp::new(Codeword::new(1), DeviceKind::Microwave, 1));
        assert!(!mi.is_pair());
        assert_eq!(mi.duration_cycles(), 1);
    }

    #[test]
    fn display_forms() {
        let op = MicroOp::new(Codeword::new(3), DeviceKind::Measurement, 15);
        let text = op.to_string();
        assert!(text.contains("cw3"));
        assert!(text.contains("measurement"));
        assert!(text.contains("15 cy"));
    }
}
