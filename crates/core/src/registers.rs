//! Register-file indices and architectural register state (Fig. 2).
//!
//! eQASM's architectural state contains a general-purpose register file
//! (`Ri`), single-qubit operation target registers (`Si`), two-qubit
//! operation target registers (`Ti`) and one-bit qubit measurement result
//! registers (`Qi`). This module provides strongly typed indices for each
//! file plus the register-file value containers used by the
//! microarchitecture simulator.

use std::fmt;

use crate::error::CoreError;

macro_rules! reg_index {
    ($(#[$doc:meta])* $name:ident, $prefix:literal, $kind:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u8);

        impl $name {
            /// Creates a register index.
            pub const fn new(index: u8) -> Self {
                Self(index)
            }

            /// Returns the index as `usize`, convenient for indexing.
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw index.
            pub const fn raw(self) -> u8 {
                self.0
            }

            /// Checks the index against a register-file size.
            ///
            /// # Errors
            ///
            /// Returns [`CoreError::InvalidRegister`] if `index >= count`.
            pub fn checked(self, count: usize) -> Result<Self, CoreError> {
                if self.index() < count {
                    Ok(self)
                } else {
                    Err(CoreError::InvalidRegister {
                        kind: $kind,
                        index: self.index(),
                        count,
                    })
                }
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u8> for $name {
            fn from(v: u8) -> Self {
                Self(v)
            }
        }
    };
}

reg_index!(
    /// Index of a 32-bit general purpose register `Ri` (§2.3.3).
    ///
    /// # Examples
    ///
    /// ```
    /// use eqasm_core::Gpr;
    /// assert_eq!(Gpr::new(3).to_string(), "r3");
    /// ```
    Gpr,
    "r",
    "GPR"
);

reg_index!(
    /// Index of a single-qubit operation target register `Si` (§2.3.5).
    ///
    /// # Examples
    ///
    /// ```
    /// use eqasm_core::SReg;
    /// assert_eq!(SReg::new(7).to_string(), "s7");
    /// ```
    SReg,
    "s",
    "S"
);

reg_index!(
    /// Index of a two-qubit operation target register `Ti` (§2.3.5).
    ///
    /// # Examples
    ///
    /// ```
    /// use eqasm_core::TReg;
    /// assert_eq!(TReg::new(3).to_string(), "t3");
    /// ```
    TReg,
    "t",
    "T"
);

/// The general-purpose register file: a set of 32-bit registers (§2.3.3).
///
/// Register `r0` is an ordinary register in eQASM (not hardwired to zero).
///
/// # Examples
///
/// ```
/// use eqasm_core::{Gpr, GprFile};
///
/// let mut file = GprFile::new(32);
/// file.write(Gpr::new(3), 42);
/// assert_eq!(file.read(Gpr::new(3)), 42);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GprFile {
    regs: Vec<u32>,
}

impl GprFile {
    /// Creates a zero-initialised register file with `count` registers.
    pub fn new(count: usize) -> Self {
        GprFile {
            regs: vec![0; count],
        }
    }

    /// Number of registers in the file.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Returns `true` if the file has no registers.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Reads a register.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range; indices are validated at
    /// assembly time.
    pub fn read(&self, r: Gpr) -> u32 {
        self.regs[r.index()]
    }

    /// Writes a register.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range; indices are validated at
    /// assembly time.
    pub fn write(&mut self, r: Gpr, value: u32) {
        self.regs[r.index()] = value;
    }

    /// Resets every register to zero.
    pub fn reset(&mut self) {
        self.regs.iter_mut().for_each(|r| *r = 0);
    }
}

/// A target-register file holding mask values (either single-qubit masks
/// for `Si` or allowed-pair masks for `Ti`).
///
/// The mask format is instantiation-defined (§3.3.2); this container just
/// stores the raw masks, which are interpreted against a
/// [`Topology`](crate::Topology).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MaskFile {
    masks: Vec<u32>,
}

impl MaskFile {
    /// Creates a zero-initialised mask file with `count` registers.
    pub fn new(count: usize) -> Self {
        MaskFile {
            masks: vec![0; count],
        }
    }

    /// Number of registers in the file.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// Returns `true` if the file has no registers.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Reads the mask at `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range; indices are validated at
    /// assembly time.
    pub fn read(&self, index: usize) -> u32 {
        self.masks[index]
    }

    /// Writes the mask at `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range; indices are validated at
    /// assembly time.
    pub fn write(&mut self, index: usize, mask: u32) {
        self.masks[index] = mask;
    }

    /// Resets every mask to zero.
    pub fn reset(&mut self) {
        self.masks.iter_mut().for_each(|m| *m = 0);
    }
}

/// One qubit measurement result register `Qi` together with its CFC
/// validity counter `Ci` (§2.3.7 and §4.3).
///
/// `Qi` stores the result of the last *finished* measurement on qubit *i*.
/// The counter `Ci` counts pending measurement instructions: it increments
/// when a measurement instruction on the qubit is issued from the
/// classical pipeline and decrements when the measurement discrimination
/// unit writes a result back. `Qi` is *valid* only while `Ci == 0`;
/// `FMR` stalls on an invalid register.
///
/// # Examples
///
/// ```
/// use eqasm_core::MeasurementRegister;
///
/// let mut q = MeasurementRegister::new();
/// assert!(q.is_valid());
/// q.on_measurement_issued();
/// assert!(!q.is_valid());
/// q.on_result(true);
/// assert!(q.is_valid());
/// assert_eq!(q.value(), Some(true));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MeasurementRegister {
    value: Option<bool>,
    pending: u32,
}

impl MeasurementRegister {
    /// Creates a register with no result yet and no pending measurements.
    pub const fn new() -> Self {
        MeasurementRegister {
            value: None,
            pending: 0,
        }
    }

    /// Called when a measurement instruction on this qubit is issued from
    /// the classical pipeline to the quantum pipeline: invalidates `Qi`
    /// by incrementing `Ci`.
    pub fn on_measurement_issued(&mut self) {
        self.pending += 1;
    }

    /// Called when the measurement discrimination unit writes back a
    /// result: stores the value and decrements `Ci`.
    ///
    /// # Panics
    ///
    /// Panics if no measurement was pending — that would be a
    /// microarchitecture bug, not a program error.
    pub fn on_result(&mut self, result: bool) {
        assert!(
            self.pending > 0,
            "measurement result without pending measurement"
        );
        self.pending -= 1;
        self.value = Some(result);
    }

    /// Called when a pending measurement is cancelled before producing a
    /// result (a conditional measurement whose execution flag read `0`):
    /// decrements `Ci` without touching the value.
    ///
    /// # Panics
    ///
    /// Panics if no measurement was pending.
    pub fn on_measurement_cancelled(&mut self) {
        assert!(
            self.pending > 0,
            "measurement cancelled without pending measurement"
        );
        self.pending -= 1;
    }

    /// `Qi` is valid only when the counter `Ci` is zero.
    pub fn is_valid(&self) -> bool {
        self.pending == 0
    }

    /// Number of measurement instructions still in flight for this qubit.
    pub fn pending(&self) -> u32 {
        self.pending
    }

    /// The last written result, if a measurement ever finished.
    ///
    /// Note that validity gates *reading* the register via `FMR`; the raw
    /// value is still inspectable (the paper's execution-flag logic uses
    /// the last finished result irrespective of validity, §4.3).
    pub fn value(&self) -> Option<bool> {
        self.value
    }

    /// Resets the register to its power-on state.
    pub fn reset(&mut self) {
        *self = MeasurementRegister::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpr_file_read_write() {
        let mut f = GprFile::new(32);
        assert_eq!(f.len(), 32);
        assert!(!f.is_empty());
        f.write(Gpr::new(31), 0xdead_beef);
        assert_eq!(f.read(Gpr::new(31)), 0xdead_beef);
        f.reset();
        assert_eq!(f.read(Gpr::new(31)), 0);
    }

    #[test]
    fn checked_register_index() {
        assert!(Gpr::new(31).checked(32).is_ok());
        let err = Gpr::new(32).checked(32).unwrap_err();
        assert!(matches!(
            err,
            CoreError::InvalidRegister { kind: "GPR", .. }
        ));
        assert!(SReg::new(5).checked(32).is_ok());
        assert!(TReg::new(40).checked(32).is_err());
    }

    #[test]
    fn mask_file() {
        let mut f = MaskFile::new(32);
        f.write(7, 0b11);
        assert_eq!(f.read(7), 0b11);
        assert_eq!(f.read(0), 0);
        f.reset();
        assert_eq!(f.read(7), 0);
    }

    #[test]
    fn measurement_register_validity_protocol() {
        let mut q = MeasurementRegister::new();
        assert!(q.is_valid());
        assert_eq!(q.value(), None);

        // Two overlapping measurements: Qi stays invalid until both
        // results returned; value tracks the *last finished* result.
        q.on_measurement_issued();
        q.on_measurement_issued();
        assert!(!q.is_valid());
        assert_eq!(q.pending(), 2);
        q.on_result(true);
        assert!(!q.is_valid());
        assert_eq!(q.value(), Some(true));
        q.on_result(false);
        assert!(q.is_valid());
        assert_eq!(q.value(), Some(false));
    }

    #[test]
    #[should_panic(expected = "without pending")]
    fn unexpected_result_panics() {
        let mut q = MeasurementRegister::new();
        q.on_result(true);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Gpr::new(0).to_string(), "r0");
        assert_eq!(SReg::new(12).to_string(), "s12");
        assert_eq!(TReg::new(3).to_string(), "t3");
    }
}
