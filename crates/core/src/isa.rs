//! The executable eQASM instruction set (Table 1).
//!
//! [`Instruction`] is the *resolved* form of an eQASM instruction: labels
//! have become branch offsets, operation names have become opcodes and
//! qubit lists have become masks. This is what the assembler produces,
//! what the binary encoder serialises and what the microarchitecture
//! executes. The textual/AST form lives in the `eqasm-asm` crate.

use std::fmt;

use crate::flags::CmpFlag;
use crate::opconfig::{OpConfig, QOpcode};
use crate::qubit::Qubit;
use crate::registers::{Gpr, SReg, TReg};

/// The target-register operand of a quantum bundle operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpTarget {
    /// A single-qubit target register `Si`.
    S(SReg),
    /// A two-qubit target register `Ti`.
    T(TReg),
    /// No operand (`QNOP`).
    None,
}

impl fmt::Display for OpTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpTarget::S(s) => write!(f, "{s}"),
            OpTarget::T(t) => write!(f, "{t}"),
            OpTarget::None => Ok(()),
        }
    }
}

/// One quantum operation slot inside a bundle: an opcode plus its target
/// register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BundleOp {
    /// The configured quantum opcode.
    pub opcode: QOpcode,
    /// The target register operand.
    pub target: OpTarget,
}

impl BundleOp {
    /// The `QNOP` slot filler (§3.4.2).
    pub const QNOP: BundleOp = BundleOp {
        opcode: QOpcode::QNOP,
        target: OpTarget::None,
    };

    /// Creates a single-qubit operation slot.
    pub const fn single(opcode: QOpcode, s: SReg) -> Self {
        BundleOp {
            opcode,
            target: OpTarget::S(s),
        }
    }

    /// Creates a two-qubit operation slot.
    pub const fn two(opcode: QOpcode, t: TReg) -> Self {
        BundleOp {
            opcode,
            target: OpTarget::T(t),
        }
    }

    /// Returns `true` for the `QNOP` filler.
    pub const fn is_qnop(&self) -> bool {
        self.opcode.is_qnop()
    }
}

/// A quantum bundle: `[PI,] op [| op]*` (§3.4.1).
///
/// `pre_interval` (PI) is the number of cycles between the previously
/// generated timing point and the point at which this bundle's operations
/// trigger; it defaults to 1 and may be 0 to extend the previous point.
/// In the *executable* form the number of ops is at most the VLIW width
/// of the instantiation; the assembler splits longer assembly-level
/// bundles into consecutive instructions with PI = 0.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Bundle {
    /// The pre-interval, in cycles.
    pub pre_interval: u8,
    /// The operation slots (`QNOP`s may pad the tail).
    pub ops: Vec<BundleOp>,
}

impl Bundle {
    /// Creates a bundle with the default pre-interval of 1.
    pub fn new(ops: Vec<BundleOp>) -> Self {
        Bundle {
            pre_interval: 1,
            ops,
        }
    }

    /// Creates a bundle with an explicit pre-interval.
    pub fn with_pre_interval(pre_interval: u8, ops: Vec<BundleOp>) -> Self {
        Bundle { pre_interval, ops }
    }

    /// Number of non-`QNOP` operations in the bundle.
    pub fn effective_ops(&self) -> usize {
        self.ops.iter().filter(|op| !op.is_qnop()).count()
    }
}

/// One executable eQASM instruction (Table 1).
///
/// Auxiliary classical instructions come first, then the quantum
/// instructions (waiting, target-register setting and bundles). `Nop`
/// and `Stop` are instantiation-specific additions documented in
/// `DESIGN.md` (the paper's §3.1.3 notes `QWAIT 0` is equivalent to a
/// NOP; `STOP` terminates a simulated program).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the field names mirror the Table 1 operand names
pub enum Instruction {
    /// No operation.
    Nop,
    /// Halts the processor (instantiation-specific).
    Stop,
    /// `CMP Rs, Rt` — compare two GPRs into the comparison flags.
    Cmp { rs: Gpr, rt: Gpr },
    /// `BR <flag>, Offset` — jump to `PC + Offset` (in instructions) if
    /// the flag is set.
    Br { flag: CmpFlag, offset: i32 },
    /// `FBR <flag>, Rd` — fetch a comparison flag into a GPR.
    Fbr { flag: CmpFlag, rd: Gpr },
    /// `LDI Rd, Imm` — `Rd = sign_ext(Imm[19..0], 32)`.
    Ldi { rd: Gpr, imm: i32 },
    /// `LDUI Rd, Imm, Rs` — `Rd = Imm[14..0] :: Rs[16..0]`.
    Ldui { rd: Gpr, imm: u16, rs: Gpr },
    /// `LD Rd, Rt(Imm)` — load from memory address `Rt + Imm`.
    Ld { rd: Gpr, rt: Gpr, imm: i32 },
    /// `ST Rs, Rt(Imm)` — store to memory address `Rt + Imm`.
    St { rs: Gpr, rt: Gpr, imm: i32 },
    /// `FMR Rd, Qi` — fetch the last measurement result of qubit *i*;
    /// stalls while `Qi` is invalid (§3.6).
    Fmr { rd: Gpr, qubit: Qubit },
    /// `AND Rd, Rs, Rt`.
    And { rd: Gpr, rs: Gpr, rt: Gpr },
    /// `OR Rd, Rs, Rt`.
    Or { rd: Gpr, rs: Gpr, rt: Gpr },
    /// `XOR Rd, Rs, Rt`.
    Xor { rd: Gpr, rs: Gpr, rt: Gpr },
    /// `NOT Rd, Rt`.
    Not { rd: Gpr, rt: Gpr },
    /// `ADD Rd, Rs, Rt` (wrapping).
    Add { rd: Gpr, rs: Gpr, rt: Gpr },
    /// `SUB Rd, Rs, Rt` (wrapping).
    Sub { rd: Gpr, rs: Gpr, rt: Gpr },
    /// `QWAIT Imm` — specify a timing point `Imm` cycles after the last
    /// one.
    QWait { cycles: u32 },
    /// `QWAITR Rs` — like `QWAIT` with the interval read from a GPR.
    QWaitR { rs: Gpr },
    /// `SMIS Sd, <mask>` — set a single-qubit target register.
    Smis { sd: SReg, mask: u32 },
    /// `SMIT Td, <mask>` — set a two-qubit target register.
    Smit { td: TReg, mask: u32 },
    /// A quantum bundle.
    Bundle(Bundle),
}

impl Instruction {
    /// Returns `true` for quantum instructions — those forwarded to the
    /// quantum pipeline (waiting, target-register setting and bundles);
    /// auxiliary classical instructions return `false`.
    pub fn is_quantum(&self) -> bool {
        matches!(
            self,
            Instruction::QWait { .. }
                | Instruction::QWaitR { .. }
                | Instruction::Smis { .. }
                | Instruction::Smit { .. }
                | Instruction::Bundle(_)
        )
    }

    /// Renders the instruction as assembly text, resolving quantum
    /// opcodes to their configured names.
    ///
    /// Bundles are printed with an explicit PI (`1, X s0`), which is
    /// accepted by the parser and unambiguous. Masks are printed in the
    /// brace-list form when a config is supplied.
    pub fn pretty(&self, cfg: &OpConfig) -> String {
        match self {
            Instruction::Bundle(b) => {
                let ops: Vec<String> = b
                    .ops
                    .iter()
                    .map(|op| {
                        if op.is_qnop() {
                            "QNOP".to_owned()
                        } else {
                            let name = cfg
                                .by_opcode(op.opcode)
                                .map(|d| d.name().to_owned())
                                .unwrap_or_else(|_| op.opcode.to_string());
                            match op.target {
                                OpTarget::None => name,
                                t => format!("{name} {t}"),
                            }
                        }
                    })
                    .collect();
                format!("{}, {}", b.pre_interval, ops.join(" | "))
            }
            other => other.to_string(),
        }
    }
}

impl fmt::Display for Instruction {
    /// Renders assembly text. Quantum opcodes inside bundles are shown in
    /// raw form (`q0x001`); use [`Instruction::pretty`] to resolve names.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Nop => write!(f, "NOP"),
            Instruction::Stop => write!(f, "STOP"),
            Instruction::Cmp { rs, rt } => write!(f, "CMP {rs}, {rt}"),
            Instruction::Br { flag, offset } => write!(f, "BR {flag}, {offset}"),
            Instruction::Fbr { flag, rd } => write!(f, "FBR {flag}, {rd}"),
            Instruction::Ldi { rd, imm } => write!(f, "LDI {rd}, {imm}"),
            Instruction::Ldui { rd, imm, rs } => write!(f, "LDUI {rd}, {imm}, {rs}"),
            Instruction::Ld { rd, rt, imm } => write!(f, "LD {rd}, {rt}({imm})"),
            Instruction::St { rs, rt, imm } => write!(f, "ST {rs}, {rt}({imm})"),
            Instruction::Fmr { rd, qubit } => write!(f, "FMR {rd}, {}", qubit),
            Instruction::And { rd, rs, rt } => write!(f, "AND {rd}, {rs}, {rt}"),
            Instruction::Or { rd, rs, rt } => write!(f, "OR {rd}, {rs}, {rt}"),
            Instruction::Xor { rd, rs, rt } => write!(f, "XOR {rd}, {rs}, {rt}"),
            Instruction::Not { rd, rt } => write!(f, "NOT {rd}, {rt}"),
            Instruction::Add { rd, rs, rt } => write!(f, "ADD {rd}, {rs}, {rt}"),
            Instruction::Sub { rd, rs, rt } => write!(f, "SUB {rd}, {rs}, {rt}"),
            Instruction::QWait { cycles } => write!(f, "QWAIT {cycles}"),
            Instruction::QWaitR { rs } => write!(f, "QWAITR {rs}"),
            Instruction::Smis { sd, mask } => write!(f, "SMIS {sd}, {mask:#x}"),
            Instruction::Smit { td, mask } => write!(f, "SMIT {td}, {mask:#x}"),
            Instruction::Bundle(b) => {
                let ops: Vec<String> = b
                    .ops
                    .iter()
                    .map(|op| {
                        if op.is_qnop() {
                            "QNOP".to_owned()
                        } else {
                            match op.target {
                                OpTarget::None => op.opcode.to_string(),
                                t => format!("{} {t}", op.opcode),
                            }
                        }
                    })
                    .collect();
                write!(f, "{}, {}", b.pre_interval, ops.join(" | "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opconfig::OpConfig;

    #[test]
    fn quantum_classification() {
        assert!(Instruction::QWait { cycles: 3 }.is_quantum());
        assert!(Instruction::QWaitR { rs: Gpr::new(0) }.is_quantum());
        assert!(Instruction::Smis {
            sd: SReg::new(0),
            mask: 1
        }
        .is_quantum());
        assert!(Instruction::Smit {
            td: TReg::new(0),
            mask: 1
        }
        .is_quantum());
        assert!(Instruction::Bundle(Bundle::new(vec![])).is_quantum());
        assert!(!Instruction::Nop.is_quantum());
        assert!(!Instruction::Cmp {
            rs: Gpr::new(0),
            rt: Gpr::new(1)
        }
        .is_quantum());
        assert!(!Instruction::Fmr {
            rd: Gpr::new(0),
            qubit: Qubit::new(1)
        }
        .is_quantum());
    }

    #[test]
    fn bundle_effective_ops_ignores_qnop() {
        let cfg = OpConfig::default_config();
        let x = cfg.by_name("X").unwrap().opcode();
        let b =
            Bundle::with_pre_interval(0, vec![BundleOp::single(x, SReg::new(1)), BundleOp::QNOP]);
        assert_eq!(b.effective_ops(), 1);
        assert_eq!(b.pre_interval, 0);
    }

    #[test]
    fn default_pre_interval_is_one() {
        // §3.1.2: PI "defaults to 1 if not specified".
        let b = Bundle::new(vec![]);
        assert_eq!(b.pre_interval, 1);
    }

    #[test]
    fn display_classical() {
        let i = Instruction::Ldi {
            rd: Gpr::new(0),
            imm: 1,
        };
        assert_eq!(i.to_string(), "LDI r0, 1");
        let i = Instruction::Br {
            flag: CmpFlag::Eq,
            offset: 4,
        };
        assert_eq!(i.to_string(), "BR EQ, 4");
        let i = Instruction::Ld {
            rd: Gpr::new(2),
            rt: Gpr::new(3),
            imm: -4,
        };
        assert_eq!(i.to_string(), "LD r2, r3(-4)");
    }

    #[test]
    fn pretty_resolves_names() {
        let cfg = OpConfig::default_config();
        let x = cfg.by_name("X").unwrap().opcode();
        let cz = cfg.by_name("CZ").unwrap().opcode();
        let b = Instruction::Bundle(Bundle::with_pre_interval(
            2,
            vec![
                BundleOp::single(x, SReg::new(5)),
                BundleOp::two(cz, TReg::new(3)),
            ],
        ));
        assert_eq!(b.pretty(&cfg), "2, X s5 | CZ t3");
    }

    #[test]
    fn qnop_pretty() {
        let cfg = OpConfig::default_config();
        let b = Instruction::Bundle(Bundle::with_pre_interval(0, vec![BundleOp::QNOP]));
        assert_eq!(b.pretty(&cfg), "0, QNOP");
    }
}
