//! Compile-time quantum operation configuration (§3.2).
//!
//! eQASM does not fix a set of quantum operations at QISA design time.
//! Instead, the programmer configures the available operations at compile
//! time: the assembler learns the *name → opcode* mapping, the microcode
//! unit learns the *opcode → microinstruction* mapping, and the pulse
//! generator learns the *codeword → pulse* mapping. This module holds all
//! three tables in one consistent [`OpConfig`] value, built with
//! [`OpConfigBuilder`], so the assembler, microcode unit and pulse library
//! can never disagree.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::CoreError;
use crate::flags::ExecFlag;
use crate::microcode::{Codeword, DeviceKind, MicroInstruction, MicroOp};

/// A quantum opcode value. Opcode 0 is always `QNOP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct QOpcode(u16);

impl QOpcode {
    /// The quantum no-operation filling unused VLIW slots (§3.4.2).
    pub const QNOP: QOpcode = QOpcode(0);

    /// Creates an opcode.
    pub const fn new(value: u16) -> Self {
        QOpcode(value)
    }

    /// Returns the raw opcode value.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Returns `true` for the `QNOP` opcode.
    pub const fn is_qnop(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for QOpcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{:#05x}", self.0)
    }
}

/// Whether an operation targets an `Si` or `Ti` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpArity {
    /// Operates on the qubits selected by a single-qubit target register.
    SingleQubit,
    /// Operates on the allowed pairs selected by a two-qubit target
    /// register.
    TwoQubit,
}

/// The physical effect of a pulse codeword, consumed by the
/// analog-digital interface of the microarchitecture simulator.
///
/// Rotation angles are in radians. A two-qubit gate is realised by a
/// *pair* of flux pulses (`TwoQubitSrc`/`TwoQubitTgt` with the same
/// [`TwoQubitGate`]) triggered at the same timing point on the two qubits
/// of an allowed pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PulseKind {
    /// No physical effect (identity / marker pulse).
    None,
    /// Rotation about the x axis by the given angle.
    Rx(f64),
    /// Rotation about the y axis by the given angle.
    Ry(f64),
    /// Rotation about the z axis by the given angle.
    Rz(f64),
    /// Hadamard (composite microwave pulse; supported as a configured
    /// operation, decomposed on hardware).
    Hadamard,
    /// The source-qubit half of a two-qubit gate.
    TwoQubitSrc(TwoQubitGate),
    /// The target-qubit half of a two-qubit gate.
    TwoQubitTgt(TwoQubitGate),
    /// A measurement pulse in the computational (z) basis.
    Measure,
}

/// Two-qubit gates realisable by paired flux pulses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TwoQubitGate {
    /// Controlled-phase gate (the native gate of the target chip, §4.1).
    Cz,
    /// Controlled-NOT (source = control, target = NOT target); supported
    /// as a configured operation per the paper's `SMIT`/`CNOT` example.
    Cnot,
    /// Controlled phase rotation by an arbitrary angle.
    CPhase(f64),
    /// Swap gate.
    Swap,
}

/// The full definition of one configured quantum operation.
#[derive(Debug, Clone, PartialEq)]
pub struct OpDef {
    name: String,
    opcode: QOpcode,
    arity: OpArity,
    duration_cycles: u32,
    micro: MicroInstruction,
}

impl OpDef {
    /// The operation's assembly name (stored upper-case; lookup is
    /// case-insensitive).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The opcode the assembler emits for this operation.
    pub fn opcode(&self) -> QOpcode {
        self.opcode
    }

    /// Whether the operation reads an `Si` or `Ti` register.
    pub fn arity(&self) -> OpArity {
        self.arity
    }

    /// How long the operation occupies its qubit(s), in quantum cycles.
    pub fn duration_cycles(&self) -> u32 {
        self.duration_cycles
    }

    /// The microinstruction the microcode unit produces for this opcode.
    pub fn micro(&self) -> &MicroInstruction {
        &self.micro
    }

    /// Returns `true` if this operation is a measurement (drives the
    /// measurement device). Measurements additionally increment the CFC
    /// pending counter of each measured qubit at issue time (§4.3).
    pub fn is_measurement(&self) -> bool {
        match &self.micro {
            MicroInstruction::Single(op) => op.device() == DeviceKind::Measurement,
            MicroInstruction::Pair { .. } => false,
        }
    }
}

/// The consistent compile-time configuration of quantum operations:
/// assembler names, microcode and the pulse library (§3.2).
///
/// # Examples
///
/// ```
/// use eqasm_core::{OpConfig, PulseKind};
/// use std::f64::consts::PI;
///
/// let mut builder = OpConfig::builder(9);
/// builder.single("X", 1, PulseKind::Rx(PI)).unwrap();
/// builder.measurement("MEASZ", 15).unwrap();
/// let cfg = builder.build();
/// let x = cfg.by_name("x").unwrap(); // case-insensitive
/// assert_eq!(cfg.by_opcode(x.opcode()).unwrap().name(), "X");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct OpConfig {
    defs: Vec<OpDef>,
    by_name: BTreeMap<String, usize>,
    by_opcode: BTreeMap<u16, usize>,
    pulses: BTreeMap<u32, PulseKind>,
    opcode_bits: u32,
}

impl OpConfig {
    /// Starts building a configuration for an instantiation with the
    /// given opcode width (9 bits in the paper's instantiation).
    pub fn builder(opcode_bits: u32) -> OpConfigBuilder {
        OpConfigBuilder {
            cfg: OpConfig {
                defs: Vec::new(),
                by_name: BTreeMap::new(),
                by_opcode: BTreeMap::new(),
                pulses: BTreeMap::new(),
                opcode_bits,
            },
            next_opcode: 1,
            next_codeword: 1,
        }
    }

    /// The default configuration of the paper's experiments (§5):
    /// single-qubit gates {I, X, Y, X90, Y90, Xm90, Ym90}, a two-qubit CZ
    /// gate and MEASZ — plus H, Z, Z90, Zm90, CNOT and the conditional
    /// C_X / C_Y / C0_X used by active reset.
    ///
    /// Durations follow §4.2: single-qubit gates 1 cycle, two-qubit gates
    /// 2 cycles, measurement 15 cycles (a cycle is 20 ns).
    pub fn default_config() -> Self {
        use std::f64::consts::{FRAC_PI_2, PI};
        let mut b = OpConfig::builder(9);
        let r = &mut b;
        // The unwraps below cannot fail: names are distinct and the
        // opcode space (511 entries) is ample.
        r.single("I", 1, PulseKind::None).unwrap();
        r.single("X", 1, PulseKind::Rx(PI)).unwrap();
        r.single("Y", 1, PulseKind::Ry(PI)).unwrap();
        r.single("X90", 1, PulseKind::Rx(FRAC_PI_2)).unwrap();
        r.single("Y90", 1, PulseKind::Ry(FRAC_PI_2)).unwrap();
        r.single("XM90", 1, PulseKind::Rx(-FRAC_PI_2)).unwrap();
        r.single("YM90", 1, PulseKind::Ry(-FRAC_PI_2)).unwrap();
        r.single("H", 1, PulseKind::Hadamard).unwrap();
        r.single("Z", 1, PulseKind::Rz(PI)).unwrap();
        r.single("Z90", 1, PulseKind::Rz(FRAC_PI_2)).unwrap();
        r.single("ZM90", 1, PulseKind::Rz(-FRAC_PI_2)).unwrap();
        r.two("CZ", 2, TwoQubitGate::Cz).unwrap();
        r.two("CNOT", 2, TwoQubitGate::Cnot).unwrap();
        r.two("SWAP", 2, TwoQubitGate::Swap).unwrap();
        r.measurement("MEASZ", 15).unwrap();
        // Fast-conditional variants (§3.5): C_X executes iff the last
        // measurement result of the qubit is |1⟩.
        r.single_conditional("C_X", 1, PulseKind::Rx(PI), ExecFlag::LastIsOne)
            .unwrap();
        r.single_conditional("C_Y", 1, PulseKind::Ry(PI), ExecFlag::LastIsOne)
            .unwrap();
        r.single_conditional("C0_X", 1, PulseKind::Rx(PI), ExecFlag::LastIsZero)
            .unwrap();
        // The fourth flag kind of the instantiation (§4.3): execute iff
        // the last two finished measurements of the qubit agree.
        r.single_conditional("CE_X", 1, PulseKind::Rx(PI), ExecFlag::LastTwoEqual)
            .unwrap();
        b.build()
    }

    /// Looks up an operation by (case-insensitive) assembly name.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownOperation`] for unconfigured names.
    pub fn by_name(&self, name: &str) -> Result<&OpDef, CoreError> {
        self.by_name
            .get(&name.to_ascii_uppercase())
            .map(|&i| &self.defs[i])
            .ok_or_else(|| CoreError::UnknownOperation {
                name: name.to_owned(),
            })
    }

    /// Looks up an operation by opcode.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::UnknownOpcode`] for unconfigured opcodes.
    pub fn by_opcode(&self, opcode: QOpcode) -> Result<&OpDef, CoreError> {
        self.by_opcode
            .get(&opcode.raw())
            .map(|&i| &self.defs[i])
            .ok_or(CoreError::UnknownOpcode {
                opcode: opcode.raw(),
            })
    }

    /// Returns `true` if a name is configured.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(&name.to_ascii_uppercase())
    }

    /// Iterates over all configured operations in opcode order.
    pub fn iter(&self) -> impl Iterator<Item = &OpDef> + '_ {
        self.by_opcode.values().map(move |&i| &self.defs[i])
    }

    /// Number of configured operations (excluding `QNOP`).
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Returns `true` if no operations are configured.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The pulse effect registered for a codeword, if any (the pulse
    /// library of the codeword-triggered pulse generation unit).
    pub fn pulse(&self, codeword: Codeword) -> Option<&PulseKind> {
        self.pulses.get(&codeword.raw())
    }

    /// The opcode width of this instantiation.
    pub fn opcode_bits(&self) -> u32 {
        self.opcode_bits
    }
}

/// Incrementally builds an [`OpConfig`], auto-assigning opcodes and
/// codewords so that the three tables stay consistent.
#[derive(Debug, Clone)]
pub struct OpConfigBuilder {
    cfg: OpConfig,
    next_opcode: u16,
    next_codeword: u32,
}

impl OpConfigBuilder {
    fn alloc_opcode(&mut self) -> Result<QOpcode, CoreError> {
        let capacity = 1usize << self.cfg.opcode_bits;
        if (self.next_opcode as usize) >= capacity {
            return Err(CoreError::OpcodeSpaceExhausted { capacity });
        }
        let op = QOpcode::new(self.next_opcode);
        self.next_opcode += 1;
        Ok(op)
    }

    fn alloc_codeword(&mut self, pulse: PulseKind) -> Codeword {
        let cw = Codeword::new(self.next_codeword);
        self.next_codeword += 1;
        self.cfg.pulses.insert(cw.raw(), pulse);
        cw
    }

    fn insert(&mut self, def: OpDef) -> Result<(), CoreError> {
        let key = def.name.clone();
        if self.cfg.by_name.contains_key(&key) {
            return Err(CoreError::DuplicateOperation { name: key });
        }
        let index = self.cfg.defs.len();
        self.cfg.by_opcode.insert(def.opcode.raw(), index);
        self.cfg.by_name.insert(key, index);
        self.cfg.defs.push(def);
        Ok(())
    }

    /// Configures an unconditional single-qubit operation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DuplicateOperation`] if the name is taken and
    /// [`CoreError::OpcodeSpaceExhausted`] if the opcode space is full.
    pub fn single(
        &mut self,
        name: &str,
        duration_cycles: u32,
        pulse: PulseKind,
    ) -> Result<QOpcode, CoreError> {
        self.single_conditional(name, duration_cycles, pulse, ExecFlag::Always)
    }

    /// Configures a single-qubit operation gated on an execution flag
    /// (fast conditional execution, §3.5).
    ///
    /// # Errors
    ///
    /// Same as [`OpConfigBuilder::single`].
    pub fn single_conditional(
        &mut self,
        name: &str,
        duration_cycles: u32,
        pulse: PulseKind,
        condition: ExecFlag,
    ) -> Result<QOpcode, CoreError> {
        let opcode = self.alloc_opcode()?;
        let device = match pulse {
            PulseKind::Rz(_) => DeviceKind::Flux,
            PulseKind::Measure => DeviceKind::Measurement,
            _ => DeviceKind::Microwave,
        };
        let cw = self.alloc_codeword(pulse);
        let micro = MicroInstruction::Single(
            MicroOp::new(cw, device, duration_cycles).with_condition(condition),
        );
        self.insert(OpDef {
            name: name.to_ascii_uppercase(),
            opcode,
            arity: OpArity::SingleQubit,
            duration_cycles,
            micro,
        })?;
        Ok(opcode)
    }

    /// Configures a two-qubit operation realised by paired flux pulses.
    ///
    /// # Errors
    ///
    /// Same as [`OpConfigBuilder::single`].
    pub fn two(
        &mut self,
        name: &str,
        duration_cycles: u32,
        gate: TwoQubitGate,
    ) -> Result<QOpcode, CoreError> {
        let opcode = self.alloc_opcode()?;
        let src_cw = self.alloc_codeword(PulseKind::TwoQubitSrc(gate));
        let tgt_cw = self.alloc_codeword(PulseKind::TwoQubitTgt(gate));
        let micro = MicroInstruction::Pair {
            src: MicroOp::new(src_cw, DeviceKind::Flux, duration_cycles),
            tgt: MicroOp::new(tgt_cw, DeviceKind::Flux, duration_cycles),
        };
        self.insert(OpDef {
            name: name.to_ascii_uppercase(),
            opcode,
            arity: OpArity::TwoQubit,
            duration_cycles,
            micro,
        })?;
        Ok(opcode)
    }

    /// Configures a computational-basis measurement operation.
    ///
    /// # Errors
    ///
    /// Same as [`OpConfigBuilder::single`].
    pub fn measurement(&mut self, name: &str, duration_cycles: u32) -> Result<QOpcode, CoreError> {
        let opcode = self.alloc_opcode()?;
        let cw = self.alloc_codeword(PulseKind::Measure);
        let micro =
            MicroInstruction::Single(MicroOp::new(cw, DeviceKind::Measurement, duration_cycles));
        self.insert(OpDef {
            name: name.to_ascii_uppercase(),
            opcode,
            arity: OpArity::SingleQubit,
            duration_cycles,
            micro,
        })?;
        Ok(opcode)
    }

    /// Finishes the configuration.
    pub fn build(self) -> OpConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qnop_is_zero() {
        assert!(QOpcode::QNOP.is_qnop());
        assert!(!QOpcode::new(1).is_qnop());
        assert_eq!(QOpcode::QNOP.raw(), 0);
    }

    #[test]
    fn default_config_contains_paper_gate_set() {
        // §5: "eQASM is then configured to include single-qubit gates
        // {I, X, Y, X90, Y90, Xm90, Ym90} and a two-qubit CZ gate".
        let cfg = OpConfig::default_config();
        for name in ["I", "X", "Y", "X90", "Y90", "XM90", "YM90", "CZ", "MEASZ"] {
            assert!(cfg.contains(name), "missing {name}");
        }
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let cfg = OpConfig::default_config();
        assert_eq!(cfg.by_name("measz").unwrap().name(), "MEASZ");
        assert_eq!(cfg.by_name("Cz").unwrap().name(), "CZ");
    }

    #[test]
    fn opcode_roundtrip() {
        let cfg = OpConfig::default_config();
        for def in cfg.iter() {
            let back = cfg.by_opcode(def.opcode()).unwrap();
            assert_eq!(back.name(), def.name());
        }
    }

    #[test]
    fn unknown_lookups_fail() {
        let cfg = OpConfig::default_config();
        assert!(matches!(
            cfg.by_name("NOT_A_GATE"),
            Err(CoreError::UnknownOperation { .. })
        ));
        assert!(matches!(
            cfg.by_opcode(QOpcode::new(500)),
            Err(CoreError::UnknownOpcode { .. })
        ));
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut b = OpConfig::builder(9);
        b.single("X", 1, PulseKind::Rx(std::f64::consts::PI))
            .unwrap();
        let err = b.single("x", 1, PulseKind::Rx(1.0)).unwrap_err();
        assert!(matches!(err, CoreError::DuplicateOperation { .. }));
    }

    #[test]
    fn opcode_space_exhaustion() {
        let mut b = OpConfig::builder(2); // only opcodes 1..=3 available
        b.single("A", 1, PulseKind::None).unwrap();
        b.single("B", 1, PulseKind::None).unwrap();
        b.single("C", 1, PulseKind::None).unwrap();
        let err = b.single("D", 1, PulseKind::None).unwrap_err();
        assert!(matches!(
            err,
            CoreError::OpcodeSpaceExhausted { capacity: 4 }
        ));
    }

    #[test]
    fn measurement_flagged() {
        let cfg = OpConfig::default_config();
        assert!(cfg.by_name("MEASZ").unwrap().is_measurement());
        assert!(!cfg.by_name("X").unwrap().is_measurement());
        assert!(!cfg.by_name("CZ").unwrap().is_measurement());
    }

    #[test]
    fn two_qubit_ops_have_pair_micro() {
        let cfg = OpConfig::default_config();
        let cz = cfg.by_name("CZ").unwrap();
        assert_eq!(cz.arity(), OpArity::TwoQubit);
        assert!(cz.micro().is_pair());
        assert_eq!(cz.duration_cycles(), 2);
    }

    #[test]
    fn conditional_ops_carry_flag() {
        let cfg = OpConfig::default_config();
        let cx = cfg.by_name("C_X").unwrap();
        match cx.micro() {
            MicroInstruction::Single(op) => assert_eq!(op.condition(), ExecFlag::LastIsOne),
            _ => panic!("C_X must be single-qubit"),
        }
    }

    #[test]
    fn pulse_library_consistent() {
        let cfg = OpConfig::default_config();
        let x = cfg.by_name("X").unwrap();
        let cw = match x.micro() {
            MicroInstruction::Single(op) => op.codeword(),
            _ => unreachable!(),
        };
        match cfg.pulse(cw) {
            Some(PulseKind::Rx(theta)) => {
                assert!((theta - std::f64::consts::PI).abs() < 1e-12)
            }
            other => panic!("unexpected pulse {other:?}"),
        }
    }

    #[test]
    fn rz_uses_flux_device() {
        // §4.4: flux pulses implement two-qubit CZ gates *and*
        // single-qubit z rotations.
        let cfg = OpConfig::default_config();
        let z = cfg.by_name("Z90").unwrap();
        match z.micro() {
            MicroInstruction::Single(op) => assert_eq!(op.device(), DeviceKind::Flux),
            _ => unreachable!(),
        }
    }
}
