//! Physical qubit addresses and directed qubit pairs.
//!
//! eQASM addresses qubits by their *physical address*, a small integer
//! assigned by the quantum chip (§2.3.9 of the paper). Two-qubit operations
//! act on *allowed qubit pairs*: ordered pairs of qubits connected on the
//! chip, represented as directed edges of the topology graph (§3.3.1).

use std::fmt;

/// The physical address of a qubit on the quantum chip.
///
/// This is a zero-based index into the quantum register (§2.3.9). The
/// paper's instantiation targets a seven-qubit chip, so addresses 0–6 are
/// used there, but the type supports up to 256 qubits for other
/// instantiations.
///
/// # Examples
///
/// ```
/// use eqasm_core::Qubit;
///
/// let q = Qubit::new(2);
/// assert_eq!(q.index(), 2);
/// assert_eq!(q.to_string(), "q2");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Qubit(u8);

impl Qubit {
    /// Creates a qubit address from a physical index.
    pub const fn new(index: u8) -> Self {
        Qubit(index)
    }

    /// Returns the physical address as a `usize`, convenient for indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw physical address.
    pub const fn raw(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Qubit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u8> for Qubit {
    fn from(v: u8) -> Self {
        Qubit(v)
    }
}

impl From<Qubit> for usize {
    fn from(q: Qubit) -> usize {
        q.index()
    }
}

/// A directed *allowed qubit pair* — an edge of the chip topology.
///
/// In the directed edge `(source, target)` the first qubit is called the
/// *source qubit* and the second the *target qubit* (§3.3.1). The same
/// physical coupling appears twice in a topology, once per direction,
/// because a two-qubit gate such as CNOT acts differently on its two
/// operands.
///
/// # Examples
///
/// ```
/// use eqasm_core::{Qubit, QubitPair};
///
/// let pair = QubitPair::new(Qubit::new(2), Qubit::new(0));
/// assert_eq!(pair.source(), Qubit::new(2));
/// assert_eq!(pair.target(), Qubit::new(0));
/// assert_eq!(pair.reversed(), QubitPair::new(Qubit::new(0), Qubit::new(2)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QubitPair {
    source: Qubit,
    target: Qubit,
}

impl QubitPair {
    /// Creates a directed pair from source and target qubits.
    pub const fn new(source: Qubit, target: Qubit) -> Self {
        QubitPair { source, target }
    }

    /// Convenience constructor from raw physical addresses.
    pub const fn from_raw(source: u8, target: u8) -> Self {
        QubitPair {
            source: Qubit::new(source),
            target: Qubit::new(target),
        }
    }

    /// The source qubit of the directed pair.
    pub const fn source(self) -> Qubit {
        self.source
    }

    /// The target qubit of the directed pair.
    pub const fn target(self) -> Qubit {
        self.target
    }

    /// Returns the same coupling in the opposite direction.
    pub const fn reversed(self) -> Self {
        QubitPair {
            source: self.target,
            target: self.source,
        }
    }

    /// Returns `true` if `qubit` is either endpoint of the pair.
    pub fn contains(self, qubit: Qubit) -> bool {
        self.source == qubit || self.target == qubit
    }

    /// Returns `true` if the two pairs share at least one qubit.
    ///
    /// Two pairs that share a qubit may not be selected in the same
    /// two-qubit target register (§4.3: "it is invalid if two edges
    /// connecting to the same qubit are selected in the same T register").
    pub fn overlaps(self, other: QubitPair) -> bool {
        self.contains(other.source) || self.contains(other.target)
    }
}

impl fmt::Display for QubitPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.source.index(), self.target.index())
    }
}

impl From<(u8, u8)> for QubitPair {
    fn from((s, t): (u8, u8)) -> Self {
        QubitPair::from_raw(s, t)
    }
}

/// The address of an allowed qubit pair within a topology.
///
/// Pair addresses index the directed edges of the chip topology; they are
/// the bit positions of two-qubit target-register masks (§3.3.2 and Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PairAddr(u8);

impl PairAddr {
    /// Creates a pair address.
    pub const fn new(index: u8) -> Self {
        PairAddr(index)
    }

    /// Returns the address as a `usize`, convenient for indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw address.
    pub const fn raw(self) -> u8 {
        self.0
    }
}

impl fmt::Display for PairAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u8> for PairAddr {
    fn from(v: u8) -> Self {
        PairAddr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_roundtrip() {
        let q = Qubit::new(5);
        assert_eq!(q.index(), 5);
        assert_eq!(q.raw(), 5);
        assert_eq!(usize::from(q), 5);
        assert_eq!(Qubit::from(5u8), q);
    }

    #[test]
    fn qubit_display() {
        assert_eq!(Qubit::new(0).to_string(), "q0");
        assert_eq!(Qubit::new(255).to_string(), "q255");
    }

    #[test]
    fn pair_endpoints() {
        let p = QubitPair::from_raw(2, 0);
        assert_eq!(p.source(), Qubit::new(2));
        assert_eq!(p.target(), Qubit::new(0));
        assert!(p.contains(Qubit::new(2)));
        assert!(p.contains(Qubit::new(0)));
        assert!(!p.contains(Qubit::new(1)));
    }

    #[test]
    fn pair_reverse_is_involution() {
        let p = QubitPair::from_raw(1, 3);
        assert_eq!(p.reversed().reversed(), p);
        assert_eq!(p.reversed(), QubitPair::from_raw(3, 1));
    }

    #[test]
    fn pair_overlap() {
        let a = QubitPair::from_raw(0, 1);
        let b = QubitPair::from_raw(1, 2);
        let c = QubitPair::from_raw(3, 4);
        assert!(a.overlaps(b));
        assert!(b.overlaps(a));
        assert!(!a.overlaps(c));
        // A pair always overlaps itself.
        assert!(a.overlaps(a));
    }

    #[test]
    fn pair_display() {
        assert_eq!(QubitPair::from_raw(1, 3).to_string(), "(1, 3)");
    }

    #[test]
    fn pair_from_tuple() {
        let p: QubitPair = (2, 4).into();
        assert_eq!(p, QubitPair::from_raw(2, 4));
    }

    #[test]
    fn pair_addr() {
        let a = PairAddr::new(9);
        assert_eq!(a.index(), 9);
        assert_eq!(a.to_string(), "e9");
    }
}
