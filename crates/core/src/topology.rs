//! Quantum chip topologies: available qubits and allowed qubit pairs.
//!
//! The *quantum chip topology* (§3.3.1) is a directed graph whose vertices
//! are the available qubits and whose edges are the allowed qubit pairs —
//! ordered pairs of qubits on which a physical two-qubit gate can be
//! applied directly. The topology determines the width and interpretation
//! of the single- and two-qubit target-register masks, and it is consulted
//! by the assembler (validity of `SMIT` values) and by the quantum
//! microinstruction buffer (mask → micro-operation selection, §4.3).

use std::fmt;

use crate::error::CoreError;
use crate::qubit::{PairAddr, Qubit, QubitPair};

/// The role a qubit plays within a selected allowed pair.
///
/// Used when resolving a two-qubit target-register mask into per-qubit
/// micro-operation selection signals (Table 2 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PairRole {
    /// The qubit is the source of the selected pair (`µ op_src`).
    Source,
    /// The qubit is the target of the selected pair (`µ op_tgt`).
    Target,
}

/// The per-qubit micro-operation selection signal (Table 2).
///
/// For every qubit, mask resolution yields exactly one of these values:
///
/// | value | operation to select |
/// |-------|---------------------|
/// | `None` | no operation |
/// | `Src` | `µ op_src` |
/// | `Tgt` | `µ op_tgt` |
/// | `Single` | `µ op` (single-qubit operation) |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OpSelect {
    /// `'00'` — no operation on this qubit.
    #[default]
    None,
    /// `'01'` — apply the source micro-operation.
    Src,
    /// `'10'` — apply the target micro-operation.
    Tgt,
    /// `'11'` — apply the single-qubit micro-operation.
    Single,
}

impl OpSelect {
    /// Returns the two-bit encoding used by the microarchitecture
    /// (Table 2: `'00'`, `'01'`, `'10'`, `'11'`).
    pub const fn bits(self) -> u8 {
        match self {
            OpSelect::None => 0b00,
            OpSelect::Src => 0b01,
            OpSelect::Tgt => 0b10,
            OpSelect::Single => 0b11,
        }
    }
}

/// A quantum chip topology: qubits, directed allowed pairs, feedlines.
///
/// # Examples
///
/// ```
/// use eqasm_core::{Topology, QubitPair};
///
/// let topo = Topology::surface7();
/// assert_eq!(topo.num_qubits(), 7);
/// assert_eq!(topo.num_pairs(), 16);
/// // Allowed qubit pair 0 has qubit 2 as source and qubit 0 as target.
/// assert_eq!(topo.pair(0.into()).unwrap(), QubitPair::from_raw(2, 0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    name: String,
    num_qubits: usize,
    pairs: Vec<QubitPair>,
    feedlines: Vec<Vec<Qubit>>,
}

impl Topology {
    /// Builds a topology from an explicit list of directed allowed pairs.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidQubit`] if any pair references a qubit
    /// outside `0..num_qubits`, and [`CoreError::InvalidPair`] if a pair
    /// connects a qubit to itself or the same directed pair is listed
    /// twice.
    pub fn new(
        name: impl Into<String>,
        num_qubits: usize,
        pairs: Vec<QubitPair>,
        feedlines: Vec<Vec<Qubit>>,
    ) -> Result<Self, CoreError> {
        for &p in &pairs {
            for q in [p.source(), p.target()] {
                if q.index() >= num_qubits {
                    return Err(CoreError::InvalidQubit {
                        qubit: q,
                        num_qubits,
                    });
                }
            }
            if p.source() == p.target() {
                return Err(CoreError::InvalidPair { pair: p });
            }
        }
        for (i, &p) in pairs.iter().enumerate() {
            if pairs[..i].contains(&p) {
                return Err(CoreError::InvalidPair { pair: p });
            }
        }
        for line in &feedlines {
            for &q in line {
                if q.index() >= num_qubits {
                    return Err(CoreError::InvalidQubit {
                        qubit: q,
                        num_qubits,
                    });
                }
            }
        }
        Ok(Topology {
            name: name.into(),
            num_qubits,
            pairs,
            feedlines,
        })
    }

    /// The seven-qubit superconducting chip of the paper's instantiation
    /// (Fig. 6): a distance-2 surface-code patch.
    ///
    /// The reconstruction (documented in `DESIGN.md`) satisfies every
    /// constraint stated in the paper:
    ///
    /// * 16 directed edges with addresses 0–15, edge `k + 8` being the
    ///   reverse of edge `k`;
    /// * edge 0 = (2 → 0);
    /// * qubit 0 participates exactly in edges {0, 1, 8, 9}, as the target
    ///   of {0, 9} and the source of {1, 8};
    /// * feedline 0 reads qubits {0, 2, 3, 5, 6}; feedline 1 reads {1, 4}.
    pub fn surface7() -> Self {
        // Undirected couplings of the distance-2 surface-code patch.
        // Data qubits {0, 1, 5, 6}; X ancilla 3 (degree 4); Z ancillas
        // {2, 4} (degree 2). Edge k is the listed direction, edge k + 8
        // its reverse.
        let forward = [
            (2, 0), // edge 0
            (0, 3), // edge 1
            (2, 5), // edge 2
            (3, 5), // edge 3
            (3, 6), // edge 4
            (3, 1), // edge 5
            (4, 1), // edge 6
            (4, 6), // edge 7
        ];
        let mut pairs: Vec<QubitPair> = forward
            .iter()
            .map(|&(s, t)| QubitPair::from_raw(s, t))
            .collect();
        let reversed: Vec<QubitPair> = pairs.iter().map(|p| p.reversed()).collect();
        pairs.extend(reversed);
        let feedlines = vec![
            vec![0, 2, 3, 5, 6].into_iter().map(Qubit::new).collect(),
            vec![1, 4].into_iter().map(Qubit::new).collect(),
        ];
        Topology::new("surface7", 7, pairs, feedlines)
            .expect("surface7 topology is statically valid")
    }

    /// The two-qubit processor used to validate eQASM in §5.
    ///
    /// "The two qubits are interconnected and coupled to a single
    /// feedline. A configuration file is used to specify the quantum chip
    /// topology with the two qubits renamed as qubit 0 and 2."
    pub fn two_qubit() -> Self {
        let pairs = vec![QubitPair::from_raw(0, 2), QubitPair::from_raw(2, 0)];
        let feedlines = vec![vec![Qubit::new(0), Qubit::new(2)]];
        // Qubit addresses 0 and 2 are used; address 1 exists but is
        // unconnected, exactly as in the paper's renaming.
        Topology::new("two-qubit", 3, pairs, feedlines)
            .expect("two-qubit topology is statically valid")
    }

    /// The IBM QX2 five-qubit topology referenced in §3.3.2, which has six
    /// undirected couplings (twelve directed allowed pairs).
    pub fn ibm_qx2() -> Self {
        let forward = [(0, 1), (0, 2), (1, 2), (3, 2), (3, 4), (4, 2)];
        let mut pairs: Vec<QubitPair> = forward
            .iter()
            .map(|&(s, t)| QubitPair::from_raw(s, t))
            .collect();
        let reversed: Vec<QubitPair> = pairs.iter().map(|p| p.reversed()).collect();
        pairs.extend(reversed);
        let feedlines = vec![(0..5).map(Qubit::new).collect()];
        Topology::new("ibm-qx2", 5, pairs, feedlines).expect("qx2 topology is statically valid")
    }

    /// A fully connected `n`-qubit processor (e.g. the five-qubit trapped
    /// ion processor of §3.3.2, where any ordered pair is allowed).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or larger than 16 (the directed-edge count would
    /// exceed a practical mask width).
    pub fn fully_connected(n: usize) -> Self {
        assert!(
            n > 0 && n <= 16,
            "fully connected topology supports 1..=16 qubits"
        );
        let mut pairs = Vec::new();
        for s in 0..n {
            for t in 0..n {
                if s != t {
                    pairs.push(QubitPair::from_raw(s as u8, t as u8));
                }
            }
        }
        let feedlines = vec![(0..n as u8).map(Qubit::new).collect()];
        Topology::new(format!("fully-connected-{n}"), n, pairs, feedlines)
            .expect("fully connected topology is statically valid")
    }

    /// A linear chain of `n` qubits (nearest-neighbour coupling, both
    /// directions). Useful as a generic NISQ-style test topology.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or larger than 32.
    pub fn linear(n: usize) -> Self {
        assert!(n > 0 && n <= 32, "linear topology supports 1..=32 qubits");
        let mut pairs = Vec::new();
        for i in 0..n.saturating_sub(1) {
            pairs.push(QubitPair::from_raw(i as u8, i as u8 + 1));
        }
        let rev: Vec<QubitPair> = pairs.iter().map(|p| p.reversed()).collect();
        pairs.extend(rev);
        let feedlines = vec![(0..n as u8).map(Qubit::new).collect()];
        Topology::new(format!("linear-{n}"), n, pairs, feedlines)
            .expect("linear topology is statically valid")
    }

    /// A human-readable name for the topology.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of qubits (the width of single-qubit target masks).
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of directed allowed pairs (the width of two-qubit target
    /// masks).
    pub fn num_pairs(&self) -> usize {
        self.pairs.len()
    }

    /// Iterates over all qubits of the chip.
    pub fn qubits(&self) -> impl Iterator<Item = Qubit> + '_ {
        (0..self.num_qubits as u8).map(Qubit::new)
    }

    /// Iterates over `(address, pair)` for every directed allowed pair.
    pub fn pairs(&self) -> impl Iterator<Item = (PairAddr, QubitPair)> + '_ {
        self.pairs
            .iter()
            .enumerate()
            .map(|(i, &p)| (PairAddr::new(i as u8), p))
    }

    /// Looks up the directed pair stored at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPairAddr`] if the address is out of
    /// range.
    pub fn pair(&self, addr: PairAddr) -> Result<QubitPair, CoreError> {
        self.pairs
            .get(addr.index())
            .copied()
            .ok_or(CoreError::InvalidPairAddr {
                addr,
                num_pairs: self.pairs.len(),
            })
    }

    /// Finds the address of a directed pair.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPair`] if the pair is not an allowed
    /// pair of this topology.
    pub fn addr_of(&self, pair: QubitPair) -> Result<PairAddr, CoreError> {
        self.pairs
            .iter()
            .position(|&p| p == pair)
            .map(|i| PairAddr::new(i as u8))
            .ok_or(CoreError::InvalidPair { pair })
    }

    /// Returns `true` if `pair` is an allowed pair of this topology.
    pub fn is_allowed(&self, pair: QubitPair) -> bool {
        self.pairs.contains(&pair)
    }

    /// Returns every `(address, role)` in which `qubit` participates.
    ///
    /// For the paper's example: qubit 0 of `surface7` is connected to
    /// edges 0, 1, 8 and 9 — as target of {0, 9} and source of {1, 8}.
    pub fn edges_of(&self, qubit: Qubit) -> Vec<(PairAddr, PairRole)> {
        self.pairs()
            .filter_map(|(addr, p)| {
                if p.source() == qubit {
                    Some((addr, PairRole::Source))
                } else if p.target() == qubit {
                    Some((addr, PairRole::Target))
                } else {
                    None
                }
            })
            .collect()
    }

    /// The feedlines of the chip: groups of qubits measured through the
    /// same readout line (Fig. 6).
    pub fn feedlines(&self) -> &[Vec<Qubit>] {
        &self.feedlines
    }

    /// Returns the feedline index that reads out `qubit`, if any.
    pub fn feedline_of(&self, qubit: Qubit) -> Option<usize> {
        self.feedlines.iter().position(|line| line.contains(&qubit))
    }

    /// Validates a single-qubit target mask: every set bit must denote an
    /// existing qubit.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MaskOutOfRange`] on stray bits.
    pub fn check_single_mask(&self, mask: u32) -> Result<(), CoreError> {
        let width = self.num_qubits as u32;
        if width < 32 && mask >> width != 0 {
            return Err(CoreError::MaskOutOfRange { mask, width });
        }
        Ok(())
    }

    /// Validates a two-qubit target mask: every set bit must denote an
    /// existing allowed pair, and no two selected pairs may share a qubit
    /// (§4.3).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::MaskOutOfRange`] on stray bits and
    /// [`CoreError::TargetRegisterConflict`] when two selected pairs
    /// overlap.
    pub fn check_pair_mask(&self, mask: u32) -> Result<(), CoreError> {
        let width = self.pairs.len() as u32;
        if width < 32 && mask >> width != 0 {
            return Err(CoreError::MaskOutOfRange { mask, width });
        }
        let selected: Vec<QubitPair> = self
            .pairs()
            .filter(|(addr, _)| mask & (1 << addr.index()) != 0)
            .map(|(_, p)| p)
            .collect();
        for (i, &a) in selected.iter().enumerate() {
            for &b in &selected[i + 1..] {
                if a.overlaps(b) {
                    return Err(CoreError::TargetRegisterConflict {
                        first: a,
                        second: b,
                    });
                }
            }
        }
        Ok(())
    }

    /// Resolves a two-qubit target mask into the per-qubit
    /// micro-operation selection signals of Table 2.
    ///
    /// This is the first resolution step performed by the quantum
    /// microinstruction buffer (§4.3): `OpSel_i` is `Src`/`Tgt` when
    /// qubit *i* is the source/target qubit of a selected pair, `None`
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Topology::check_pair_mask`].
    pub fn resolve_pair_mask(&self, mask: u32) -> Result<Vec<OpSelect>, CoreError> {
        self.check_pair_mask(mask)?;
        let mut sel = vec![OpSelect::None; self.num_qubits];
        for (addr, pair) in self.pairs() {
            if mask & (1 << addr.index()) != 0 {
                sel[pair.source().index()] = OpSelect::Src;
                sel[pair.target().index()] = OpSelect::Tgt;
            }
        }
        Ok(sel)
    }

    /// Resolves a single-qubit target mask into per-qubit selection
    /// signals (`Single` for selected qubits).
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`Topology::check_single_mask`].
    pub fn resolve_single_mask(&self, mask: u32) -> Result<Vec<OpSelect>, CoreError> {
        self.check_single_mask(mask)?;
        let sel = (0..self.num_qubits)
            .map(|i| {
                if mask & (1 << i) != 0 {
                    OpSelect::Single
                } else {
                    OpSelect::None
                }
            })
            .collect();
        Ok(sel)
    }

    /// Builds a single-qubit mask from a list of qubits.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidQubit`] for out-of-range qubits.
    pub fn single_mask(&self, qubits: &[Qubit]) -> Result<u32, CoreError> {
        let mut mask = 0u32;
        for &q in qubits {
            if q.index() >= self.num_qubits {
                return Err(CoreError::InvalidQubit {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
            mask |= 1 << q.index();
        }
        Ok(mask)
    }

    /// Builds a two-qubit mask from a list of directed pairs, validating
    /// the result.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidPair`] for pairs the chip does not
    /// allow, and the errors of [`Topology::check_pair_mask`].
    pub fn pair_mask(&self, pairs: &[QubitPair]) -> Result<u32, CoreError> {
        let mut mask = 0u32;
        for &p in pairs {
            let addr = self.addr_of(p)?;
            mask |= 1 << addr.index();
        }
        self.check_pair_mask(mask)?;
        Ok(mask)
    }

    /// Decodes a single-qubit mask into the selected qubits, in address
    /// order.
    pub fn qubits_in_mask(&self, mask: u32) -> Vec<Qubit> {
        self.qubits()
            .filter(|q| mask & (1 << q.index()) != 0)
            .collect()
    }

    /// Decodes a two-qubit mask into the selected pairs, in address order.
    pub fn pairs_in_mask(&self, mask: u32) -> Vec<QubitPair> {
        self.pairs()
            .filter(|(addr, _)| mask & (1 << addr.index()) != 0)
            .map(|(_, p)| p)
            .collect()
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} qubits, {} directed pairs)",
            self.name,
            self.num_qubits,
            self.pairs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surface7_counts() {
        let t = Topology::surface7();
        assert_eq!(t.num_qubits(), 7);
        assert_eq!(t.num_pairs(), 16);
    }

    #[test]
    fn surface7_edge0_is_2_to_0() {
        // §3.3.1: "allowed qubit pair 0 has qubit 2 as the source qubit
        // and qubit 0 as the target qubit".
        let t = Topology::surface7();
        assert_eq!(t.pair(PairAddr::new(0)).unwrap(), QubitPair::from_raw(2, 0));
    }

    #[test]
    fn surface7_reverse_pairing() {
        // Edge k + 8 is the reverse of edge k.
        let t = Topology::surface7();
        for k in 0..8u8 {
            let fwd = t.pair(PairAddr::new(k)).unwrap();
            let rev = t.pair(PairAddr::new(k + 8)).unwrap();
            assert_eq!(fwd.reversed(), rev, "edge {k}");
        }
    }

    #[test]
    fn surface7_qubit0_edges() {
        // §4.3: "Take qubit 0 as an example. It is connected to edges 0,
        // 1, 8, and 9. When edge 0 or 9 (1 or 8) is selected in the mask,
        // qubit 0 is the target (source) qubit."
        let t = Topology::surface7();
        let mut edges = t.edges_of(Qubit::new(0));
        edges.sort();
        assert_eq!(
            edges,
            vec![
                (PairAddr::new(0), PairRole::Target),
                (PairAddr::new(1), PairRole::Source),
                (PairAddr::new(8), PairRole::Source),
                (PairAddr::new(9), PairRole::Target),
            ]
        );
    }

    #[test]
    fn surface7_feedlines() {
        // Fig. 6: qubits 0, 2, 3, 5, 6 on feedline 0; qubits 1 and 4 on
        // feedline 1.
        let t = Topology::surface7();
        for q in [0u8, 2, 3, 5, 6] {
            assert_eq!(t.feedline_of(Qubit::new(q)), Some(0), "qubit {q}");
        }
        for q in [1u8, 4] {
            assert_eq!(t.feedline_of(Qubit::new(q)), Some(1), "qubit {q}");
        }
    }

    #[test]
    fn surface7_degree_distribution() {
        // Distance-2 surface code: X ancilla (qubit 3) has degree 4,
        // every other qubit degree 2 — counted in undirected couplings.
        let t = Topology::surface7();
        for q in t.qubits() {
            let deg = t.edges_of(q).len() / 2; // two directions per coupling
            if q == Qubit::new(3) {
                assert_eq!(deg, 4, "X ancilla degree");
            } else {
                assert_eq!(deg, 2, "qubit {q} degree");
            }
        }
    }

    #[test]
    fn two_qubit_topology() {
        let t = Topology::two_qubit();
        assert_eq!(t.num_pairs(), 2);
        assert!(t.is_allowed(QubitPair::from_raw(0, 2)));
        assert!(t.is_allowed(QubitPair::from_raw(2, 0)));
        assert!(!t.is_allowed(QubitPair::from_raw(0, 1)));
    }

    #[test]
    fn qx2_has_six_couplings() {
        // §3.3.2: "a mask of 6 bits is more efficient for the IBM QX2 ...
        // which has only six allowed qubit pairs" (six couplings; we store
        // both directions).
        let t = Topology::ibm_qx2();
        assert_eq!(t.num_qubits(), 5);
        assert_eq!(t.num_pairs(), 12);
    }

    #[test]
    fn fully_connected_five_qubits_has_twenty_pairs() {
        // §3.3.2: "a mask of 20 bits with each bit in the mask indicating
        // one of all 20 different allowed qubit pairs".
        let t = Topology::fully_connected(5);
        assert_eq!(t.num_pairs(), 20);
    }

    #[test]
    fn mask_roundtrip() {
        let t = Topology::surface7();
        let qs = vec![Qubit::new(0), Qubit::new(2)];
        let mask = t.single_mask(&qs).unwrap();
        assert_eq!(mask, 0b101);
        assert_eq!(t.qubits_in_mask(mask), qs);
    }

    #[test]
    fn single_mask_rejects_out_of_range() {
        let t = Topology::surface7();
        assert!(matches!(
            t.single_mask(&[Qubit::new(7)]),
            Err(CoreError::InvalidQubit { .. })
        ));
        assert!(matches!(
            t.check_single_mask(1 << 7),
            Err(CoreError::MaskOutOfRange { .. })
        ));
    }

    #[test]
    fn pair_mask_rejects_conflicts() {
        // Edges 0 (2→0) and 1 (0→3) share qubit 0 — invalid in one T
        // register (§4.3).
        let t = Topology::surface7();
        let err = t.check_pair_mask(0b11).unwrap_err();
        assert!(matches!(err, CoreError::TargetRegisterConflict { .. }));
    }

    #[test]
    fn pair_mask_accepts_disjoint_pairs() {
        // (2→0) and (3→1) touch disjoint qubits.
        let t = Topology::surface7();
        let mask = t
            .pair_mask(&[QubitPair::from_raw(2, 0), QubitPair::from_raw(3, 1)])
            .unwrap();
        assert!(t.check_pair_mask(mask).is_ok());
        assert_eq!(
            t.pairs_in_mask(mask),
            vec![QubitPair::from_raw(2, 0), QubitPair::from_raw(3, 1)]
        );
    }

    #[test]
    fn opsel_example_from_paper() {
        // §4.3: OpSel_0 = (T[0] ∨ T[9]) :: (T[1] ∨ T[8]).
        let t = Topology::surface7();
        // Select edge 0 (2→0): qubit 0 is target, qubit 2 is source.
        let sel = t.resolve_pair_mask(1 << 0).unwrap();
        assert_eq!(sel[0], OpSelect::Tgt);
        assert_eq!(sel[2], OpSelect::Src);
        assert_eq!(sel[1], OpSelect::None);
        // Select edge 8 (0→2): roles swap.
        let sel = t.resolve_pair_mask(1 << 8).unwrap();
        assert_eq!(sel[0], OpSelect::Src);
        assert_eq!(sel[2], OpSelect::Tgt);
    }

    #[test]
    fn opsel_bits_match_table2() {
        assert_eq!(OpSelect::None.bits(), 0b00);
        assert_eq!(OpSelect::Src.bits(), 0b01);
        assert_eq!(OpSelect::Tgt.bits(), 0b10);
        assert_eq!(OpSelect::Single.bits(), 0b11);
    }

    #[test]
    fn resolve_single_mask_sets_selected() {
        let t = Topology::surface7();
        let sel = t.resolve_single_mask(0b100_0001).unwrap();
        assert_eq!(sel[0], OpSelect::Single);
        assert_eq!(sel[6], OpSelect::Single);
        assert_eq!(sel[3], OpSelect::None);
    }

    #[test]
    fn rejects_self_loop() {
        let err = Topology::new("bad", 2, vec![QubitPair::from_raw(1, 1)], vec![]).unwrap_err();
        assert!(matches!(err, CoreError::InvalidPair { .. }));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let err = Topology::new(
            "bad",
            3,
            vec![QubitPair::from_raw(0, 1), QubitPair::from_raw(0, 1)],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidPair { .. }));
    }

    #[test]
    fn display_mentions_name() {
        let t = Topology::surface7();
        assert!(t.to_string().contains("surface7"));
    }
}
