//! A concrete eQASM instantiation: topology + architecture parameters +
//! operation configuration (§2.4, §4.2).
//!
//! eQASM defines assembly semantics and mapping rules; the binary format
//! and the concrete field widths are chosen when the QISA is
//! *instantiated* for a particular chip and control setup. This module
//! bundles those choices. [`Instantiation::paper()`] reproduces the
//! paper's instantiation: 32-bit instructions, VLIW width 2, 3-bit PI,
//! 32 + 32 mask-format target registers, a 20-bit `QWAIT` immediate and a
//! 9-bit quantum opcode, targeting the seven-qubit chip of Fig. 6.

use crate::error::CoreError;
use crate::opconfig::OpConfig;
use crate::topology::Topology;

/// The architectural field widths and register-file sizes chosen at
/// instantiation time (§4.2 and Fig. 8).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchParams {
    /// Number of quantum operations per bundle instruction word (w).
    pub vliw_width: usize,
    /// Width of the pre-interval field, in bits (w_PI).
    pub pi_bits: u32,
    /// Width of the quantum opcode field, in bits.
    pub opcode_bits: u32,
    /// Number of general purpose registers.
    pub num_gprs: usize,
    /// Number of single-qubit target registers.
    pub num_sregs: usize,
    /// Number of two-qubit target registers.
    pub num_tregs: usize,
    /// Width of the `QWAIT` immediate, in bits ("only the least
    /// significant 20 bits of the Imm field ... are used", §4.2).
    pub qwait_bits: u32,
    /// Width of the `LDI` immediate, in bits (Table 1: `Imm[19..0]`).
    pub ldi_bits: u32,
    /// Width of the `LDUI` immediate, in bits (Table 1: `Imm[14..0]`).
    pub ldui_bits: u32,
    /// Width of the `BR` offset, in bits (instantiation-defined).
    pub branch_offset_bits: u32,
    /// Width of the `LD`/`ST` address offset, in bits
    /// (instantiation-defined).
    pub mem_offset_bits: u32,
    /// Size of the data memory, in 32-bit words (eQASM itself does not
    /// define a size, §2.3.2; this is a simulator parameter).
    pub data_memory_words: usize,
}

impl ArchParams {
    /// The parameters of the paper's instantiation (§4.2).
    pub fn paper() -> Self {
        ArchParams {
            vliw_width: 2,
            pi_bits: 3,
            opcode_bits: 9,
            num_gprs: 32,
            num_sregs: 32,
            num_tregs: 32,
            qwait_bits: 20,
            ldi_bits: 20,
            ldui_bits: 15,
            branch_offset_bits: 21,
            mem_offset_bits: 15,
            data_memory_words: 4096,
        }
    }

    /// The largest pre-interval encodable in the PI field.
    pub fn max_pi(&self) -> u32 {
        (1u32 << self.pi_bits) - 1
    }

    /// The largest `QWAIT` immediate.
    pub fn max_qwait(&self) -> u32 {
        (1u32 << self.qwait_bits) - 1
    }

    /// Checks that a pre-interval fits the PI field.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ImmediateOutOfRange`] when it does not.
    pub fn check_pi(&self, pi: u32) -> Result<(), CoreError> {
        if pi > self.max_pi() {
            return Err(CoreError::ImmediateOutOfRange {
                field: "bundle pre-interval",
                value: pi as i64,
                bits: self.pi_bits,
            });
        }
        Ok(())
    }

    /// Checks that a waiting time fits the `QWAIT` immediate field.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ImmediateOutOfRange`] when it does not.
    pub fn check_qwait(&self, cycles: u32) -> Result<(), CoreError> {
        if cycles > self.max_qwait() {
            return Err(CoreError::ImmediateOutOfRange {
                field: "QWAIT imm",
                value: cycles as i64,
                bits: self.qwait_bits,
            });
        }
        Ok(())
    }
}

impl Default for ArchParams {
    fn default() -> Self {
        ArchParams::paper()
    }
}

/// A complete eQASM instantiation.
///
/// # Examples
///
/// ```
/// use eqasm_core::Instantiation;
///
/// let inst = Instantiation::paper();
/// assert_eq!(inst.params().vliw_width, 2);
/// assert_eq!(inst.topology().num_qubits(), 7);
/// assert!(inst.ops().contains("MEASZ"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Instantiation {
    topology: Topology,
    params: ArchParams,
    ops: OpConfig,
}

impl Instantiation {
    /// Builds an instantiation from explicit parts.
    pub fn new(topology: Topology, params: ArchParams, ops: OpConfig) -> Self {
        Instantiation {
            topology,
            params,
            ops,
        }
    }

    /// The paper's instantiation for the seven-qubit chip (§4.1–4.2) with
    /// the default gate set of §5.
    pub fn paper() -> Self {
        Instantiation::new(
            Topology::surface7(),
            ArchParams::paper(),
            OpConfig::default_config(),
        )
    }

    /// The paper's instantiation retargeted at the two-qubit validation
    /// chip of §5 (same parameters, different topology configuration
    /// file).
    pub fn paper_two_qubit() -> Self {
        Instantiation::new(
            Topology::two_qubit(),
            ArchParams::paper(),
            OpConfig::default_config(),
        )
    }

    /// The chip topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The architectural parameters.
    pub fn params(&self) -> &ArchParams {
        &self.params
    }

    /// The quantum operation configuration.
    pub fn ops(&self) -> &OpConfig {
        &self.ops
    }

    /// Replaces the operation configuration (compile-time
    /// reconfiguration, §3.2), keeping topology and parameters.
    pub fn with_ops(mut self, ops: OpConfig) -> Self {
        self.ops = ops;
        self
    }

    /// Replaces the topology (e.g. to load the two-qubit configuration
    /// file of §5), keeping parameters and operations.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_match_section_4_2() {
        let p = ArchParams::paper();
        assert_eq!(p.vliw_width, 2);
        assert_eq!(p.pi_bits, 3);
        assert_eq!(p.opcode_bits, 9);
        assert_eq!(p.num_sregs, 32);
        assert_eq!(p.num_tregs, 32);
        assert_eq!(p.qwait_bits, 20);
        assert_eq!(p.max_pi(), 7);
        assert_eq!(p.max_qwait(), (1 << 20) - 1);
    }

    #[test]
    fn pi_range_check() {
        let p = ArchParams::paper();
        assert!(p.check_pi(0).is_ok());
        assert!(p.check_pi(7).is_ok());
        assert!(matches!(
            p.check_pi(8),
            Err(CoreError::ImmediateOutOfRange { .. })
        ));
    }

    #[test]
    fn qwait_range_check() {
        let p = ArchParams::paper();
        assert!(p.check_qwait(10_000).is_ok());
        assert!(p.check_qwait((1 << 20) - 1).is_ok());
        assert!(p.check_qwait(1 << 20).is_err());
    }

    #[test]
    fn two_qubit_instantiation_uses_renamed_qubits() {
        let inst = Instantiation::paper_two_qubit();
        assert_eq!(inst.topology().name(), "two-qubit");
        // Qubits are named 0 and 2 per §5.
        assert!(inst.topology().is_allowed(crate::QubitPair::from_raw(0, 2)));
    }

    #[test]
    fn with_ops_swaps_configuration() {
        let inst = Instantiation::paper();
        let empty = OpConfig::builder(9).build();
        let inst = inst.with_ops(empty);
        assert!(inst.ops().is_empty());
        assert_eq!(inst.topology().num_qubits(), 7);
    }
}
