//! Comparison flags and execution flags.
//!
//! *Comparison flags* (§2.3.4) store the result of `CMP Rs, Rt` and are
//! consumed by `BR` and `FBR`. *Execution flags* (§2.3.8) are per-qubit
//! flags derived automatically from the latest measurement results and
//! consumed by fast conditional execution (§3.5, §4.3).

use std::fmt;
use std::str::FromStr;

/// A comparison flag selectable by `BR` and `FBR`.
///
/// `CMP Rs, Rt` sets all flags at once from the signed and unsigned
/// comparison of the two registers. `ALWAYS` is hard-wired to `1` and
/// `NEVER` to `0`, so `BR ALWAYS, label` is an unconditional jump
/// (used in Fig. 5 of the paper).
///
/// # Examples
///
/// ```
/// use eqasm_core::{CmpFlag, CmpFlags};
///
/// let flags = CmpFlags::compare(3, 5);
/// assert!(flags.get(CmpFlag::Ne));
/// assert!(flags.get(CmpFlag::Lt));
/// assert!(!flags.get(CmpFlag::Eq));
/// assert!(flags.get(CmpFlag::Always));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CmpFlag {
    /// Constant `1`.
    Always,
    /// Constant `0`.
    Never,
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
    /// Unsigned less-or-equal.
    Leu,
    /// Unsigned greater-than.
    Gtu,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
}

impl CmpFlag {
    /// All flags in encoding order.
    pub const ALL: [CmpFlag; 12] = [
        CmpFlag::Always,
        CmpFlag::Never,
        CmpFlag::Eq,
        CmpFlag::Ne,
        CmpFlag::Ltu,
        CmpFlag::Geu,
        CmpFlag::Leu,
        CmpFlag::Gtu,
        CmpFlag::Lt,
        CmpFlag::Ge,
        CmpFlag::Le,
        CmpFlag::Gt,
    ];

    /// The 4-bit encoding used in the branch instruction word.
    pub const fn encode(self) -> u8 {
        match self {
            CmpFlag::Always => 0,
            CmpFlag::Never => 1,
            CmpFlag::Eq => 2,
            CmpFlag::Ne => 3,
            CmpFlag::Ltu => 4,
            CmpFlag::Geu => 5,
            CmpFlag::Leu => 6,
            CmpFlag::Gtu => 7,
            CmpFlag::Lt => 8,
            CmpFlag::Ge => 9,
            CmpFlag::Le => 10,
            CmpFlag::Gt => 11,
        }
    }

    /// Decodes a 4-bit flag encoding.
    pub fn decode(bits: u8) -> Option<CmpFlag> {
        CmpFlag::ALL.get(bits as usize).copied()
    }

    /// The assembly mnemonic of the flag.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            CmpFlag::Always => "ALWAYS",
            CmpFlag::Never => "NEVER",
            CmpFlag::Eq => "EQ",
            CmpFlag::Ne => "NE",
            CmpFlag::Ltu => "LTU",
            CmpFlag::Geu => "GEU",
            CmpFlag::Leu => "LEU",
            CmpFlag::Gtu => "GTU",
            CmpFlag::Lt => "LT",
            CmpFlag::Ge => "GE",
            CmpFlag::Le => "LE",
            CmpFlag::Gt => "GT",
        }
    }
}

impl fmt::Display for CmpFlag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Error returned when parsing an unknown comparison-flag mnemonic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCmpFlagError {
    text: String,
}

impl fmt::Display for ParseCmpFlagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown comparison flag `{}`", self.text)
    }
}

impl std::error::Error for ParseCmpFlagError {}

impl FromStr for CmpFlag {
    type Err = ParseCmpFlagError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let upper = s.to_ascii_uppercase();
        CmpFlag::ALL
            .iter()
            .copied()
            .find(|f| f.mnemonic() == upper)
            .ok_or(ParseCmpFlagError { text: s.to_owned() })
    }
}

/// The architectural comparison-flag state set by `CMP` (§2.3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CmpFlags {
    bits: u16,
}

impl CmpFlags {
    /// Power-on state: all comparison results cleared (`ALWAYS` still
    /// reads as `1`).
    pub fn new() -> Self {
        // Equivalent to comparing 0 with 0.
        CmpFlags::compare(0, 0)
    }

    /// Computes all flags from the raw 32-bit register values, comparing
    /// both unsigned and signed (two's complement) interpretations.
    pub fn compare(rs: u32, rt: u32) -> Self {
        let s = rs as i32;
        let t = rt as i32;
        let mut bits = 0u16;
        let mut set = |flag: CmpFlag, value: bool| {
            if value {
                bits |= 1 << flag.encode();
            }
        };
        set(CmpFlag::Always, true);
        set(CmpFlag::Never, false);
        set(CmpFlag::Eq, rs == rt);
        set(CmpFlag::Ne, rs != rt);
        set(CmpFlag::Ltu, rs < rt);
        set(CmpFlag::Geu, rs >= rt);
        set(CmpFlag::Leu, rs <= rt);
        set(CmpFlag::Gtu, rs > rt);
        set(CmpFlag::Lt, s < t);
        set(CmpFlag::Ge, s >= t);
        set(CmpFlag::Le, s <= t);
        set(CmpFlag::Gt, s > t);
        CmpFlags { bits }
    }

    /// Reads one flag.
    pub fn get(self, flag: CmpFlag) -> bool {
        self.bits & (1 << flag.encode()) != 0
    }
}

/// The execution-flag kinds of the paper's instantiation (§4.3).
///
/// "Four types of combinatorial logic are used to define the execution
/// flags: (1) '1' (the default for unconditional execution); (2) '1' iff
/// the last finished measurement result is |1⟩; (3) '1' iff the last
/// finished measurement result is |0⟩; (4) '1' iff the last two finished
/// measurements get the same result."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExecFlag {
    /// Unconditional execution (flag constant `1`).
    #[default]
    Always,
    /// `1` iff the last finished measurement result is `|1⟩`.
    LastIsOne,
    /// `1` iff the last finished measurement result is `|0⟩`.
    LastIsZero,
    /// `1` iff the last two finished measurements agree.
    LastTwoEqual,
}

impl ExecFlag {
    /// All execution-flag kinds of this instantiation, in encoding order.
    pub const ALL: [ExecFlag; 4] = [
        ExecFlag::Always,
        ExecFlag::LastIsOne,
        ExecFlag::LastIsZero,
        ExecFlag::LastTwoEqual,
    ];

    /// The 2-bit selection signal attached to each micro-operation.
    pub const fn encode(self) -> u8 {
        match self {
            ExecFlag::Always => 0,
            ExecFlag::LastIsOne => 1,
            ExecFlag::LastIsZero => 2,
            ExecFlag::LastTwoEqual => 3,
        }
    }

    /// Decodes a 2-bit selection signal.
    pub fn decode(bits: u8) -> Option<ExecFlag> {
        ExecFlag::ALL.get(bits as usize).copied()
    }
}

impl fmt::Display for ExecFlag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExecFlag::Always => "always",
            ExecFlag::LastIsOne => "last=1",
            ExecFlag::LastIsZero => "last=0",
            ExecFlag::LastTwoEqual => "last-two-equal",
        };
        f.write_str(s)
    }
}

/// Per-qubit execution-flag register (§2.3.8).
///
/// The register is updated automatically by the microarchitecture each
/// time a measurement result for the qubit returns from the
/// analog-digital interface; it remembers the last two finished results.
///
/// # Examples
///
/// ```
/// use eqasm_core::{ExecFlag, ExecFlagRegister};
///
/// let mut r = ExecFlagRegister::new();
/// assert!(r.get(ExecFlag::Always));
/// r.on_result(true);
/// assert!(r.get(ExecFlag::LastIsOne));
/// r.on_result(true);
/// assert!(r.get(ExecFlag::LastTwoEqual));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecFlagRegister {
    last: Option<bool>,
    before_last: Option<bool>,
}

impl ExecFlagRegister {
    /// Power-on state: no measurements finished yet. Only `Always` reads
    /// as `1`.
    pub const fn new() -> Self {
        ExecFlagRegister {
            last: None,
            before_last: None,
        }
    }

    /// Updates the flags with a freshly finished measurement result.
    pub fn on_result(&mut self, result: bool) {
        self.before_last = self.last;
        self.last = Some(result);
    }

    /// Reads the selected execution flag.
    pub fn get(self, flag: ExecFlag) -> bool {
        match flag {
            ExecFlag::Always => true,
            ExecFlag::LastIsOne => self.last == Some(true),
            ExecFlag::LastIsZero => self.last == Some(false),
            ExecFlag::LastTwoEqual => match (self.last, self.before_last) {
                (Some(a), Some(b)) => a == b,
                _ => false,
            },
        }
    }

    /// The last finished measurement result, if any.
    pub fn last_result(self) -> Option<bool> {
        self.last
    }

    /// Resets to the power-on state.
    pub fn reset(&mut self) {
        *self = ExecFlagRegister::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_encode_decode_roundtrip() {
        for flag in CmpFlag::ALL {
            assert_eq!(CmpFlag::decode(flag.encode()), Some(flag));
        }
        assert_eq!(CmpFlag::decode(12), None);
    }

    #[test]
    fn flag_parse_roundtrip() {
        for flag in CmpFlag::ALL {
            let parsed: CmpFlag = flag.mnemonic().parse().unwrap();
            assert_eq!(parsed, flag);
            // Case-insensitive.
            let parsed: CmpFlag = flag.mnemonic().to_lowercase().parse().unwrap();
            assert_eq!(parsed, flag);
        }
        assert!("XYZZY".parse::<CmpFlag>().is_err());
    }

    #[test]
    fn compare_equal() {
        let f = CmpFlags::compare(7, 7);
        assert!(f.get(CmpFlag::Eq));
        assert!(!f.get(CmpFlag::Ne));
        assert!(f.get(CmpFlag::Geu));
        assert!(f.get(CmpFlag::Leu));
        assert!(f.get(CmpFlag::Ge));
        assert!(f.get(CmpFlag::Le));
        assert!(!f.get(CmpFlag::Lt));
        assert!(!f.get(CmpFlag::Gt));
        assert!(f.get(CmpFlag::Always));
        assert!(!f.get(CmpFlag::Never));
    }

    #[test]
    fn compare_signed_vs_unsigned() {
        // -1 (0xffff_ffff) vs 1: signed less-than, unsigned greater-than.
        let f = CmpFlags::compare(0xffff_ffff, 1);
        assert!(f.get(CmpFlag::Lt));
        assert!(!f.get(CmpFlag::Ltu));
        assert!(f.get(CmpFlag::Gtu));
        assert!(!f.get(CmpFlag::Gt));
        assert!(f.get(CmpFlag::Ne));
    }

    #[test]
    fn default_state_always_set() {
        let f = CmpFlags::new();
        assert!(f.get(CmpFlag::Always));
        assert!(!f.get(CmpFlag::Never));
        assert!(f.get(CmpFlag::Eq));
    }

    #[test]
    fn exec_flag_encode_roundtrip() {
        for flag in ExecFlag::ALL {
            assert_eq!(ExecFlag::decode(flag.encode()), Some(flag));
        }
        assert_eq!(ExecFlag::decode(4), None);
    }

    #[test]
    fn exec_flags_track_last_two_results() {
        let mut r = ExecFlagRegister::new();
        // Before any measurement only Always is set.
        assert!(r.get(ExecFlag::Always));
        assert!(!r.get(ExecFlag::LastIsOne));
        assert!(!r.get(ExecFlag::LastIsZero));
        assert!(!r.get(ExecFlag::LastTwoEqual));

        r.on_result(false);
        assert!(r.get(ExecFlag::LastIsZero));
        assert!(!r.get(ExecFlag::LastIsOne));
        // Only one result so far: last-two-equal still 0.
        assert!(!r.get(ExecFlag::LastTwoEqual));

        r.on_result(false);
        assert!(r.get(ExecFlag::LastTwoEqual));

        r.on_result(true);
        assert!(r.get(ExecFlag::LastIsOne));
        assert!(!r.get(ExecFlag::LastIsZero));
        assert!(!r.get(ExecFlag::LastTwoEqual));
        assert_eq!(r.last_result(), Some(true));
    }

    #[test]
    fn exec_flag_reset() {
        let mut r = ExecFlagRegister::new();
        r.on_result(true);
        r.reset();
        assert_eq!(r.last_result(), None);
        assert!(!r.get(ExecFlag::LastIsOne));
    }
}
