//! Property-based tests of the ISA model: topology invariants across
//! all built-in chips, mask algebra, operation-configuration builder
//! invariants and flag registers.

use eqasm_core::{
    ExecFlag, ExecFlagRegister, MeasurementRegister, OpConfig, PulseKind, Qubit, Topology,
};
use proptest::prelude::*;

fn all_topologies() -> Vec<Topology> {
    vec![
        Topology::surface7(),
        Topology::two_qubit(),
        Topology::ibm_qx2(),
        Topology::fully_connected(5),
        Topology::linear(8),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Structural invariants hold for every built-in topology: pair
    /// addresses are dense, every edge endpoint is a valid qubit, no
    /// self loops, no duplicate directed edges, and `addr_of` inverts
    /// `pair`.
    #[test]
    fn topology_invariants(idx in 0usize..5) {
        let topo = &all_topologies()[idx];
        let mut seen = Vec::new();
        for (addr, pair) in topo.pairs() {
            prop_assert!(pair.source().index() < topo.num_qubits());
            prop_assert!(pair.target().index() < topo.num_qubits());
            prop_assert_ne!(pair.source(), pair.target());
            prop_assert!(!seen.contains(&pair));
            seen.push(pair);
            prop_assert_eq!(topo.addr_of(pair).unwrap(), addr);
            prop_assert_eq!(topo.pair(addr).unwrap(), pair);
        }
        prop_assert_eq!(seen.len(), topo.num_pairs());
    }

    /// Every directed edge's reverse is also an edge, in every built-in
    /// topology (couplings are symmetric hardware).
    #[test]
    fn edges_come_in_reversed_pairs(idx in 0usize..5) {
        let topo = &all_topologies()[idx];
        for (_, pair) in topo.pairs() {
            prop_assert!(
                topo.is_allowed(pair.reversed()),
                "{} lacks reverse of {}", topo.name(), pair
            );
        }
    }

    /// Mask resolution marks exactly the selected qubits/roles and
    /// nothing else.
    #[test]
    fn resolution_covers_exactly_selected(mask in 0u32..(1u32 << 16)) {
        let topo = Topology::surface7();
        if topo.check_pair_mask(mask).is_ok() {
            let sel = topo.resolve_pair_mask(mask).unwrap();
            let pairs = topo.pairs_in_mask(mask);
            let mut expect = vec![eqasm_core::OpSelect::None; topo.num_qubits()];
            for p in &pairs {
                expect[p.source().index()] = eqasm_core::OpSelect::Src;
                expect[p.target().index()] = eqasm_core::OpSelect::Tgt;
            }
            prop_assert_eq!(sel, expect);
        }
    }

    /// The operation-configuration builder assigns unique opcodes and
    /// codewords, and lookups invert each other, for arbitrary op-name
    /// sets.
    #[test]
    fn opconfig_builder_invariants(names in prop::collection::btree_set("[A-Z][A-Z0-9_]{0,6}", 1..20)) {
        let names: Vec<String> = names.into_iter().filter(|n| n != "QNOP").collect();
        let mut b = OpConfig::builder(9);
        for n in &names {
            b.single(n, 1, PulseKind::Rx(0.5)).unwrap();
        }
        let cfg = b.build();
        prop_assert_eq!(cfg.len(), names.len());
        let mut opcodes = Vec::new();
        for n in &names {
            let def = cfg.by_name(n).unwrap();
            prop_assert!(!def.opcode().is_qnop());
            prop_assert!(!opcodes.contains(&def.opcode()));
            opcodes.push(def.opcode());
            prop_assert_eq!(cfg.by_opcode(def.opcode()).unwrap().name(), n.to_ascii_uppercase());
        }
    }

    /// The measurement-register validity protocol: after any interleaving
    /// of issue/result events with non-negative pending count, validity
    /// is exactly "no pending measurements".
    #[test]
    fn qi_validity_protocol(events in prop::collection::vec(any::<bool>(), 0..40)) {
        let mut reg = MeasurementRegister::new();
        let mut pending = 0u32;
        for issue in events {
            if issue {
                reg.on_measurement_issued();
                pending += 1;
            } else if pending > 0 {
                reg.on_result(true);
                pending -= 1;
            }
            prop_assert_eq!(reg.pending(), pending);
            prop_assert_eq!(reg.is_valid(), pending == 0);
        }
    }

    /// Execution flags track the last two results exactly.
    #[test]
    fn exec_flags_track_history(results in prop::collection::vec(any::<bool>(), 0..30)) {
        let mut reg = ExecFlagRegister::new();
        for (i, &r) in results.iter().enumerate() {
            reg.on_result(r);
            prop_assert!(reg.get(ExecFlag::Always));
            prop_assert_eq!(reg.get(ExecFlag::LastIsOne), r);
            prop_assert_eq!(reg.get(ExecFlag::LastIsZero), !r);
            if i > 0 {
                prop_assert_eq!(reg.get(ExecFlag::LastTwoEqual), results[i - 1] == r);
            } else {
                prop_assert!(!reg.get(ExecFlag::LastTwoEqual));
            }
        }
    }

    /// Feedlines of every topology cover disjoint qubit sets.
    #[test]
    fn feedlines_disjoint(idx in 0usize..5) {
        let topo = &all_topologies()[idx];
        let mut seen: Vec<Qubit> = Vec::new();
        for line in topo.feedlines() {
            for &q in line {
                prop_assert!(!seen.contains(&q), "{} read out twice", q);
                seen.push(q);
            }
        }
    }
}
