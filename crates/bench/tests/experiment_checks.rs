//! Downsized sanity checks of every experiment harness against the
//! paper's reported numbers (the full-size runs live in the `src/bin`
//! binaries and are recorded in `EXPERIMENTS.md`).

use eqasm_bench::experiments::*;

#[test]
fn fig7_key_trends_match_paper() {
    let grid = fig7_grid(128, 7);
    let get = |wl: &str, cfg: u32, w: usize| {
        grid.iter()
            .find(|c| c.workload == wl && c.config == cfg && c.width == w)
            .unwrap()
    };
    let red = |wl: &str, cfg: u32, w: usize, bcfg: u32, bw: usize| {
        1.0 - get(wl, cfg, w).instructions as f64 / get(wl, bcfg, bw).instructions as f64
    };
    // RB: w scaling up to ~62%.
    assert!((0.55..=0.68).contains(&red("RB", 1, 4, 1, 1)));
    // RB: Config 2 vs 1 at w=2..4 in 20-33%.
    for w in 2..=4 {
        let r = red("RB", 2, w, 1, w);
        assert!((0.15..=0.40).contains(&r), "RB cfg2 w{w}: {r}");
    }
    // SR: 1-bit PI ~17%, wide PI ~48%.
    assert!((0.10..=0.25).contains(&red("SR", 3, 1, 1, 1)));
    assert!((0.40..=0.55).contains(&red("SR", 6, 1, 1, 1)));
    // IM: SOMQ benefit shrinks with width.
    let im: Vec<f64> = (1..=4).map(|w| red("IM", 9, w, 5, w)).collect();
    assert!(im[0] > im[3], "IM SOMQ benefit must shrink: {im:?}");
    // Effective ops per bundle for Config 9, w=2 (paper: RB 1.795,
    // IM 1.485, SR 1.118).
    assert!((1.6..=2.0).contains(&get("RB", 9, 2).effective_ops));
    assert!((1.3..=1.7).contains(&get("IM", 9, 2).effective_ops));
    assert!((1.0..=1.25).contains(&get("SR", 9, 2).effective_ops));
}

#[test]
fn fig11_staircase_shape() {
    let opts = AllXyOptions {
        shots: 60,
        ..AllXyOptions::default()
    };
    let points = allxy_experiment(&opts);
    assert_eq!(points.len(), 42);
    // Group means must form the 0 / 0.5 / 1 staircase within shot noise.
    for level in [0.0, 0.5, 1.0] {
        let vals: Vec<f64> = points
            .iter()
            .filter(|p| p.expected_a == level)
            .map(|p| p.measured_a)
            .collect();
        assert!(!vals.is_empty());
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!(
            (mean - level).abs() < 0.1,
            "level {level}: group mean {mean}"
        );
    }
    // The three levels are clearly separated on both qubits.
    let mean_of = |lvl: f64, b: bool| {
        let vals: Vec<f64> = points
            .iter()
            .filter(|p| {
                if b {
                    p.expected_b == lvl
                } else {
                    p.expected_a == lvl
                }
            })
            .map(|p| if b { p.measured_b } else { p.measured_a })
            .collect();
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    for b in [false, true] {
        assert!(mean_of(0.0, b) < mean_of(0.5, b));
        assert!(mean_of(0.5, b) < mean_of(1.0, b));
    }
}

#[test]
fn fig12_error_increases_with_interval() {
    // Downsized: two intervals, short sequences — the monotone trend
    // and rough magnitudes must already show.
    let ks = [2usize, 8, 24, 48, 96];
    let fast = rb_curve(1, &ks, 3, fig12_noise());
    let slow = rb_curve(16, &ks, 3, fig12_noise());
    let eps_fast = fast.fit.error_per_gate();
    let eps_slow = slow.fit.error_per_gate();
    assert!(
        eps_slow > 3.0 * eps_fast,
        "320 ns error ({eps_slow}) must far exceed 20 ns error ({eps_fast})"
    );
    assert!(
        (0.0005..=0.002).contains(&eps_fast),
        "eps(20ns) = {eps_fast}"
    );
    assert!(
        (0.004..=0.010).contains(&eps_slow),
        "eps(320ns) = {eps_slow}"
    );
}

#[test]
fn active_reset_near_82_7_percent() {
    let p0 = active_reset_experiment(600, 100, 11);
    assert!(
        (0.78..=0.88).contains(&p0),
        "reset probability {p0} should be ~0.827"
    );
}

#[test]
fn feedback_latencies_match_paper() {
    let report = feedback_latency();
    assert!(
        (70.0..=110.0).contains(&report.fast_conditional_ns),
        "fast path {} ns (paper ~92)",
        report.fast_conditional_ns
    );
    assert!(
        (280.0..=350.0).contains(&report.cfc_ns),
        "CFC path {} ns (paper ~316)",
        report.cfc_ns
    );
}

#[test]
fn cfc_alternates_with_mock_results() {
    let gates = cfc_alternation(6, false);
    assert_eq!(gates, vec!["X", "Y", "X", "Y", "X", "Y"]);
    let gates = cfc_alternation(4, true);
    assert_eq!(gates, vec!["Y", "X", "Y", "X"]);
}

#[test]
fn grover_fidelity_near_85_6_percent() {
    let opts = GroverOptions {
        shots_per_setting: 150,
        ..GroverOptions::default()
    };
    let f = grover_fidelity(&opts);
    assert!((0.78..=0.92).contains(&f), "fidelity {f} should be ~0.856");
}

#[test]
fn grover_fidelity_is_cz_limited() {
    // Remove the CZ error and the fidelity recovers towards 1 — the
    // paper's attribution ("limited by the CZ gate").
    let noisy = grover_fidelity(&GroverOptions {
        shots_per_setting: 120,
        ..GroverOptions::default()
    });
    let clean = grover_fidelity(&GroverOptions {
        shots_per_setting: 120,
        cz_error: 0.0,
        ..GroverOptions::default()
    });
    assert!(
        clean > noisy + 0.05,
        "removing CZ error must raise fidelity: {clean} vs {noisy}"
    );
    assert!(clean > 0.93, "near-ideal fidelity {clean}");
}

#[test]
fn rabi_sweep_is_sinusoidal() {
    let amps: Vec<f64> = (0..9).map(|i| i as f64 / 4.0).collect();
    let sweep = rabi_sweep(&amps);
    for (amp, p1) in sweep {
        let ideal = eqasm_workloads::rabi_expected_p1(amp);
        assert!((p1 - ideal).abs() < 1e-9, "amp {amp}: {p1} vs {ideal}");
    }
}

#[test]
fn issue_rate_separates_qumis_from_eqasm() {
    let rows = issue_rate_comparison(150, 3);
    let eqasm = rows.iter().find(|r| r.style.starts_with("eQASM")).unwrap();
    let qumis = rows.iter().find(|r| r.style.starts_with("QuMIS")).unwrap();
    assert_eq!(eqasm.slips, 0, "eQASM keeps up");
    assert!(qumis.slips > 0, "QuMIS-style must violate the issue rate");
    assert!(qumis.required_rate > eqasm.required_rate);
}

#[test]
fn t1_and_ramsey_recover_configured_times() {
    use eqasm_quantum::NoiseModel;
    let noise = NoiseModel::with_coherence(25_000.0, 20_000.0);
    let delays: Vec<u32> = (0..8).map(|i| i * 300).collect();
    let t1 = t1_experiment(&delays, noise);
    assert!(
        (t1.recovered_ns - 25_000.0).abs() / 25_000.0 < 0.05,
        "recovered T1 = {}",
        t1.recovered_ns
    );
    let t2 = ramsey_experiment(&delays, noise);
    assert!(
        (t2.recovered_ns - 20_000.0).abs() / 20_000.0 < 0.05,
        "recovered T2 = {}",
        t2.recovered_ns
    );
}

#[test]
fn alap_beats_asap_under_decoherence() {
    use eqasm_quantum::NoiseModel;
    let noise = NoiseModel::with_coherence(25_000.0, 20_000.0);
    let ablation = schedule_policy_ablation(300, noise);
    assert!(
        ablation.alap_p1 > ablation.asap_p1 + 0.1,
        "ALAP must preserve the probe qubit: {ablation:?}"
    );
    assert!(ablation.alap_p1 > 0.99, "{ablation:?}");
}
