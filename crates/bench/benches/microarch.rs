//! Benchmarks the QuMA v2 simulator: classical-cycle throughput on a
//! feedback-free RB program and on the CFC feedback loop.

use criterion::{criterion_group, criterion_main, Criterion};
use eqasm_core::{Instantiation, Qubit};
use eqasm_microarch::{QuMa, SimConfig};

fn bench_machine(c: &mut Criterion) {
    let inst = Instantiation::paper_two_qubit();
    let (rb, _) = eqasm_workloads::rb_program(&inst, Qubit::new(0), 100, 2, 3).unwrap();
    let mut group = c.benchmark_group("microarch");
    group.bench_function("run_rb_100_cliffords", |b| {
        let mut machine = QuMa::new(inst.clone(), SimConfig::default());
        machine.load(&rb).unwrap();
        b.iter(|| {
            machine.reset();
            let result = machine.run();
            assert!(result.status.is_halted());
            machine.stats().classical_cycles
        })
    });

    let cfc = eqasm_asm::assemble(
        "SMIS S0, {0}\nSMIS S1, {1}\nLDI R0, 1\nLDI r2, 0\nLDI r3, 16\nLDI r4, 1\nloop:\nQWAIT 100\n0, MEASZ S1\nQWAIT 30\nFMR R1, Q1\nCMP R1, R0\nBR EQ, eq\nX S0\nBR ALWAYS, n\neq:\nY S0\nn:\nQWAIT 10\nADD r2, r2, r4\nCMP r2, r3\nBR NE, loop\nSTOP",
        &inst,
    )
    .unwrap();
    group.bench_function("run_cfc_16_rounds", |b| {
        let mut machine = QuMa::new(inst.clone(), SimConfig::default());
        machine.load(cfc.instructions()).unwrap();
        b.iter(|| {
            machine.reset();
            machine.run().status.is_halted()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_machine);
criterion_main!(benches);
