//! End-to-end figure pipelines at benchmark scale: these run the same
//! code paths as the `fig7_dse`, `fig11_allxy`, `fig12_rb`,
//! `active_reset` and `grover_fidelity` binaries, downsized so
//! `cargo bench` finishes quickly.

use criterion::{criterion_group, criterion_main, Criterion};
use eqasm_bench::experiments::{
    active_reset_experiment, allxy_experiment, fig12_noise, fig7_grid, grover_fidelity, rb_curve,
    AllXyOptions, GroverOptions,
};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);

    group.bench_function("fig7_grid_small", |b| b.iter(|| fig7_grid(64, 1).len()));
    group.bench_function("fig11_one_shot_sweep", |b| {
        let opts = AllXyOptions {
            shots: 4,
            ..AllXyOptions::default()
        };
        b.iter(|| allxy_experiment(&opts).len())
    });
    group.bench_function("fig12_single_curve", |b| {
        b.iter(|| rb_curve(1, &[2, 8, 32, 64], 2, fig12_noise()).fit.f)
    });
    group.bench_function("active_reset_100_shots", |b| {
        b.iter(|| active_reset_experiment(100, 100, 3))
    });
    group.bench_function("grover_tomography_small", |b| {
        let opts = GroverOptions {
            shots_per_setting: 30,
            ..GroverOptions::default()
        };
        b.iter(|| grover_fidelity(&opts))
    });
    group.bench_function("t1_calibration_sweep", |b| {
        use eqasm_bench::experiments::t1_experiment;
        use eqasm_quantum::NoiseModel;
        let noise = NoiseModel::with_coherence(25_000.0, 20_000.0);
        let delays: Vec<u32> = (0..6).map(|i| i * 200).collect();
        b.iter(|| t1_experiment(&delays, noise).recovered_ns)
    });
    group.bench_function("schedule_ablation", |b| {
        use eqasm_bench::experiments::schedule_policy_ablation;
        use eqasm_quantum::NoiseModel;
        let noise = NoiseModel::with_coherence(25_000.0, 20_000.0);
        b.iter(|| schedule_policy_ablation(100, noise))
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
