//! Benchmarks the shot-execution runtime: shots/sec at 1/2/4/8
//! workers on a fixed RB workload, plus the mixed-workload driver.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use eqasm_core::{Instantiation, Qubit, Topology};
use eqasm_microarch::SimConfig;
use eqasm_quantum::{NoiseModel, ReadoutModel};
use eqasm_runtime::{Job, MixedWorkload, ShotEngine, WorkloadKind, WorkloadSpec};
use eqasm_workloads::rb_program;

const SHOTS: u64 = 256;

fn rb_job() -> Job {
    let inst = Instantiation::paper().with_topology(Topology::linear(1));
    let (program, _) = rb_program(&inst, Qubit::new(0), 24, 1, 0x5eed).expect("rb emits");
    let config = SimConfig::default()
        .with_noise(NoiseModel::with_coherence(25_000.0, 25_000.0).with_gate_error(0.0009, 0.0))
        .with_readout(ReadoutModel::symmetric(0.05));
    Job::new("rb-k24", inst, program)
        .with_config(config)
        .with_shots(SHOTS)
        .with_seed(1)
}

fn bench_runtime(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);
    group.throughput(Throughput::Elements(SHOTS));

    let job = rb_job();
    for workers in [1usize, 2, 4, 8] {
        let engine = ShotEngine::new(workers);
        group.bench_function(&format!("rb_shots_w{workers}"), |b| {
            b.iter(|| engine.run_job(&job).expect("runs"))
        });
    }

    group.bench_function("mixed_workload_w4", |b| {
        let mix = MixedWorkload::new()
            .push(
                WorkloadSpec::new(
                    "rb",
                    WorkloadKind::Rb {
                        k: 24,
                        interval_cycles: 1,
                        sequence_seed: 5,
                    },
                    64,
                )
                .with_weight(2),
            )
            .push(WorkloadSpec::new(
                "reset",
                WorkloadKind::ActiveReset { init_cycles: 100 },
                64,
            ));
        let engine = ShotEngine::new(4);
        b.iter(|| mix.run(&engine).expect("runs"))
    });

    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
