//! Benchmarks the qubit-plane substrate: state-vector and
//! density-matrix gate application, exact noise channels and the
//! Clifford tables.

use criterion::{criterion_group, criterion_main, Criterion};
use eqasm_quantum::{gates, noise, Clifford, DensityMatrix, StateVector};

fn bench_quantum(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantum");

    group.bench_function("statevector_1q_gate_8q", |b| {
        let mut psi = StateVector::zero_state(8);
        let h = gates::hadamard();
        b.iter(|| {
            for q in 0..8 {
                psi.apply_1q(q, &h);
            }
        })
    });
    group.bench_function("statevector_2q_gate_8q", |b| {
        let mut psi = StateVector::zero_state(8);
        let cz = gates::cz();
        b.iter(|| {
            for q in 0..7 {
                psi.apply_2q(q, q + 1, &cz);
            }
        })
    });
    group.bench_function("density_1q_gate_4q", |b| {
        let mut rho = DensityMatrix::zero_state(4);
        let h = gates::hadamard();
        b.iter(|| {
            for q in 0..4 {
                rho.apply_1q(q, &h);
            }
        })
    });
    group.bench_function("density_damping_channel_4q", |b| {
        let mut rho = DensityMatrix::zero_state(4);
        let kraus = noise::amplitude_phase_damping(0.01, 0.01);
        b.iter(|| rho.apply_kraus_1q(0, &kraus))
    });
    group.bench_function("clifford_compose_chain", |b| {
        b.iter(|| {
            let mut acc = Clifford::identity();
            for i in 0..1000usize {
                acc = acc.compose(Clifford::from_index(i % 24).unwrap());
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench_quantum);
criterion_main!(benches);
