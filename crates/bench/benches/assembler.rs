//! Benchmarks the assembler front end: parse + assemble + encode of a
//! large eQASM program (a 200-Clifford RB sequence rendered to text).

use criterion::{criterion_group, criterion_main, Criterion};
use eqasm_asm::{assemble, encoding};
use eqasm_compiler::program_text;
use eqasm_core::{Instantiation, Qubit};

fn build_source() -> (Instantiation, String) {
    let inst = Instantiation::paper_two_qubit();
    let (program, _) = eqasm_workloads::rb_program(&inst, Qubit::new(0), 200, 2, 1).unwrap();
    let text = program_text(&program, &inst);
    (inst, text)
}

fn bench_assembler(c: &mut Criterion) {
    let (inst, text) = build_source();
    let lines = text.lines().count();
    let mut group = c.benchmark_group("assembler");
    group.throughput(criterion::Throughput::Elements(lines as u64));
    group.bench_function("assemble_rb_program", |b| {
        b.iter(|| assemble(std::hint::black_box(&text), &inst).unwrap())
    });
    let program = assemble(&text, &inst).unwrap();
    group.bench_function("encode_program", |b| {
        b.iter(|| {
            encoding::encode_program(std::hint::black_box(program.instructions()), &inst).unwrap()
        })
    });
    let words = encoding::encode_program(program.instructions(), &inst).unwrap();
    group.bench_function("decode_program", |b| {
        b.iter(|| encoding::decode_program(std::hint::black_box(&words), &inst).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_assembler);
criterion_main!(benches);
