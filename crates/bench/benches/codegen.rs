//! Benchmarks the compiler back end: ASAP scheduling, the Fig. 7
//! counting analysis and the emitting code generator.

use criterion::{criterion_group, criterion_main, Criterion};
use eqasm_compiler::{count_instructions, emit, CodegenConfig, EmitOptions};
use eqasm_core::Instantiation;
use eqasm_workloads::{ising_schedule, rb_schedule, IsingParams};

fn bench_codegen(c: &mut Criterion) {
    let mut group = c.benchmark_group("codegen");
    let rb = rb_schedule(7, 256, 1);
    group.bench_function("count_rb_config9", |b| {
        b.iter(|| count_instructions(std::hint::black_box(&rb), &CodegenConfig::paper()))
    });
    group.bench_function("count_rb_all_configs", |b| {
        b.iter(|| {
            let mut total = 0u64;
            for cfg in 1..=10 {
                for w in 1..=4 {
                    if cfg == 2 && w < 2 {
                        continue;
                    }
                    total += count_instructions(&rb, &CodegenConfig::fig7(cfg, w)).instructions;
                }
            }
            total
        })
    });
    let im = ising_schedule(&IsingParams::paper(), 1);
    let inst = Instantiation::paper();
    let opts = EmitOptions::bare();
    // Emission needs configured names: RB uses the default gate set.
    group.bench_function("emit_rb_paper_instantiation", |b| {
        b.iter(|| emit(std::hint::black_box(&rb), &inst, &opts).unwrap().len())
    });
    group.bench_function("count_ising_config9", |b| {
        b.iter(|| count_instructions(std::hint::black_box(&im), &CodegenConfig::paper()))
    });
    group.finish();
}

criterion_group!(benches, bench_codegen);
criterion_main!(benches);
