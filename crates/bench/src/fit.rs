//! Curve fitting for the randomized-benchmarking analysis (Fig. 12).
//!
//! RB survival decays as `P(k) = A·f^k + B`; the Clifford fidelity comes
//! from the decay constant `f` and the average error per gate follows
//! the paper's formula ε = 1 − F_Cl^(1/1.875).

/// The fitted decay `P(k) = a·f^k + b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecayFit {
    /// Amplitude.
    pub a: f64,
    /// Decay constant per Clifford.
    pub f: f64,
    /// Offset.
    pub b: f64,
    /// Sum of squared residuals.
    pub sse: f64,
}

impl DecayFit {
    /// The average error per Clifford: `r = (1 − f)·(d − 1)/d` with
    /// `d = 2` for one qubit.
    pub fn error_per_clifford(&self) -> f64 {
        (1.0 - self.f) / 2.0
    }

    /// The average error per primitive gate, using the paper's
    /// decomposition overhead: ε = 1 − F_Cl^(1/1.875).
    pub fn error_per_gate(&self) -> f64 {
        let f_cl = 1.0 - self.error_per_clifford();
        1.0 - f_cl.powf(1.0 / 1.875)
    }
}

/// Given `f`, the best (a, b) are a linear least-squares problem; this
/// evaluates that solution and its SSE.
fn solve_linear(points: &[(f64, f64)], f: f64) -> (f64, f64, f64) {
    let n = points.len() as f64;
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for &(k, p) in points {
        let x = f.powf(k);
        sx += x;
        sy += p;
        sxx += x * x;
        sxy += x * p;
    }
    let det = n * sxx - sx * sx;
    let (a, b) = if det.abs() < 1e-15 {
        (0.0, sy / n)
    } else {
        let a = (n * sxy - sx * sy) / det;
        let b = (sy - a * sx) / n;
        (a, b)
    };
    let mut sse = 0.0;
    for &(k, p) in points {
        let e = a * f.powf(k) + b - p;
        sse += e * e;
    }
    (a, b, sse)
}

/// Fits `P(k) = a·f^k + b` to `(k, P)` samples by golden-section search
/// over `f ∈ (0, 1)` with closed-form `a`, `b`.
///
/// # Panics
///
/// Panics on fewer than three points.
pub fn fit_decay(points: &[(f64, f64)]) -> DecayFit {
    assert!(points.len() >= 3, "decay fit needs at least three points");
    let golden: f64 = (5.0_f64.sqrt() - 1.0) / 2.0;
    let mut lo = 1e-6;
    let mut hi = 1.0 - 1e-9;
    let mut c = hi - golden * (hi - lo);
    let mut d = lo + golden * (hi - lo);
    let mut fc = solve_linear(points, c).2;
    let mut fd = solve_linear(points, d).2;
    for _ in 0..200 {
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - golden * (hi - lo);
            fc = solve_linear(points, c).2;
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + golden * (hi - lo);
            fd = solve_linear(points, d).2;
        }
        if hi - lo < 1e-12 {
            break;
        }
    }
    let f = (lo + hi) / 2.0;
    let (a, b, sse) = solve_linear(points, f);
    DecayFit { a, f, b, sse }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_known_decay() {
        let (a, f, b) = (0.48f64, 0.995f64, 0.5f64);
        let points: Vec<(f64, f64)> = (0..40)
            .map(|i| {
                let k = (i * 50) as f64;
                (k, a * f.powf(k) + b)
            })
            .collect();
        let fit = fit_decay(&points);
        assert!((fit.f - f).abs() < 1e-6, "f = {}", fit.f);
        assert!((fit.a - a).abs() < 1e-6);
        assert!((fit.b - b).abs() < 1e-6);
        assert!(fit.sse < 1e-12);
    }

    #[test]
    fn tolerates_noise() {
        let (a, f, b) = (0.5f64, 0.99f64, 0.5f64);
        // Deterministic pseudo-noise.
        let mut state = 7u64;
        let mut noise = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 1.0) * 0.005
        };
        let points: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let k = (i * 20) as f64;
                (k, a * f.powf(k) + b + noise())
            })
            .collect();
        let fit = fit_decay(&points);
        assert!((fit.f - f).abs() < 5e-4, "f = {}", fit.f);
    }

    #[test]
    fn error_formulas_match_paper() {
        // A decay of f = 0.996 gives r_cl = 0.2% per Clifford and
        // ε = 1 − (1 − r)^{1/1.875} ≈ 0.1068% per gate.
        let fit = DecayFit {
            a: 0.5,
            f: 0.996,
            b: 0.5,
            sse: 0.0,
        };
        assert!((fit.error_per_clifford() - 0.002).abs() < 1e-12);
        let eps = fit.error_per_gate();
        assert!((eps - 0.001068).abs() < 1e-5, "eps = {eps}");
    }

    #[test]
    #[should_panic(expected = "three points")]
    fn too_few_points() {
        let _ = fit_decay(&[(0.0, 1.0), (1.0, 0.9)]);
    }
}
