//! # eqasm-bench — experiment harnesses and benchmarks
//!
//! One harness per table/figure of the eQASM paper's evaluation (§4.2
//! and §5), each exercising the full stack: workload generation,
//! compilation, assembly, cycle-accurate execution on QuMA v2 and
//! simulated qubits. The binaries under `src/bin` print the same
//! rows/series the paper reports; `EXPERIMENTS.md` records the
//! paper-vs-measured comparison.
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig7_dse` | Fig. 7 instruction counts (configs 1–10, w = 1–4) |
//! | `fig11_allxy` | Fig. 11 two-qubit AllXY staircase |
//! | `fig12_rb` | Fig. 12 RB error vs gate interval |
//! | `active_reset` | §5 active reset (82.7 %) |
//! | `feedback_latency` | §5 latencies (≈ 92 ns / ≈ 316 ns) |
//! | `cfc_check` | §5 CFC X/Y alternation with mock results |
//! | `grover_fidelity` | §5 Grover + tomography (85.6 %) |
//! | `rabi` | §5 Rabi calibration sweep |
//! | `issue_rate` | §1.2 issue-rate comparison vs QuMIS style |

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod fit;
