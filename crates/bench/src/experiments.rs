//! Experiment harnesses: one function per table/figure of the paper's
//! evaluation, each driving the *full stack* (workload generator →
//! compiler → assembler-level program → QuMA v2 → simulated qubits) the
//! way the paper drove its laboratory setup.

use eqasm_core::{Instantiation, Instruction, Qubit, Topology};
use eqasm_microarch::{MeasurementSource, QuMa, SimConfig, TraceKind};
use eqasm_quantum::{tomography, MeasBasis, NoiseModel, ReadoutModel, TomographyAccumulator};
use eqasm_runtime::{Job, ShotEngine, WorkloadKind};
use eqasm_workloads as workloads;

use crate::fit::{fit_decay, DecayFit};

/// Runs a program to completion on a fresh machine and returns it.
///
/// # Panics
///
/// Panics if the program fails to load or the machine does not halt —
/// harness programs are trusted.
pub fn run_program(inst: &Instantiation, program: &[Instruction], config: SimConfig) -> QuMa {
    let mut m = QuMa::new(inst.clone(), config);
    m.load(program).expect("harness program must load");
    let result = m.run();
    assert!(
        result.status.is_halted(),
        "harness program did not halt: {:?}",
        result.status
    );
    m
}

// ---------------------------------------------------------------------
// Fig. 7 — the instruction-count design-space exploration
// ---------------------------------------------------------------------

/// One row of the Fig. 7 data: a (workload, configuration, width) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig7Cell {
    /// Workload short name ("RB", "IM", "SR").
    pub workload: &'static str,
    /// Configuration number (1–10).
    pub config: u32,
    /// VLIW width.
    pub width: usize,
    /// Total instructions.
    pub instructions: u64,
    /// Instructions normalised to the baseline (Config 1, w = 1) of the
    /// same workload.
    pub normalized: f64,
    /// Effective quantum operations per bundle word.
    pub effective_ops: f64,
}

/// Computes the whole Fig. 7 grid: 3 workloads × 10 configurations ×
/// widths 1–4 (Config 2 needs width ≥ 2, matching the paper).
///
/// `rb_cliffords` scales the RB workload (the paper uses 4096 per
/// qubit); benchmarks may pass fewer.
pub fn fig7_grid(rb_cliffords: usize, seed: u64) -> Vec<Fig7Cell> {
    use eqasm_compiler::{count_instructions, CodegenConfig};

    let rb = workloads::rb_schedule(7, rb_cliffords, seed);
    let im = workloads::ising_schedule(&workloads::IsingParams::paper(), seed);
    let sr = workloads::square_root_schedule(&workloads::SquareRootParams::paper(), seed);
    let mut out = Vec::new();
    for (name, schedule) in [("RB", &rb), ("IM", &im), ("SR", &sr)] {
        let baseline = count_instructions(schedule, &CodegenConfig::fig7(1, 1));
        for config in 1..=10u32 {
            for width in 1..=4usize {
                if config == 2 && width < 2 {
                    continue;
                }
                let report = count_instructions(schedule, &CodegenConfig::fig7(config, width));
                out.push(Fig7Cell {
                    workload: name,
                    config,
                    width,
                    instructions: report.instructions,
                    normalized: report.instructions as f64 / baseline.instructions as f64,
                    effective_ops: report.effective_ops_per_bundle(),
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Fig. 11 — two-qubit AllXY
// ---------------------------------------------------------------------

/// One point of the Fig. 11 staircase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllXyPoint {
    /// Round index (0..42).
    pub round: usize,
    /// The ideal population for qubit A's pair.
    pub expected_a: f64,
    /// The ideal population for qubit B's pair.
    pub expected_b: f64,
    /// Readout-corrected measured population, qubit A.
    pub measured_a: f64,
    /// Readout-corrected measured population, qubit B.
    pub measured_b: f64,
}

/// Options for the AllXY experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AllXyOptions {
    /// Shots per round.
    pub shots: u64,
    /// Initialisation idle, in cycles (the paper idles 10000; harnesses
    /// may shorten it — the state starts in |0⟩ either way).
    pub init_cycles: u32,
    /// Single-qubit depolarizing gate error.
    pub gate_error: f64,
    /// Readout assignment error (symmetric).
    pub readout_error: f64,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for the shot engine (0 = machine parallelism).
    pub workers: usize,
}

impl Default for AllXyOptions {
    fn default() -> Self {
        AllXyOptions {
            shots: 400,
            init_cycles: 100,
            gate_error: 0.0015,
            readout_error: 0.0956,
            seed: 1,
            workers: 0,
        }
    }
}

/// Runs the two-qubit AllXY experiment of Fig. 11 on the two-qubit
/// validation chip (qubits 0 and 2) and returns the 42 readout-corrected
/// staircase points.
///
/// All 42 rounds are submitted to the shot engine as one job stream,
/// so both rounds and shots fan out across the pool.
pub fn allxy_experiment(opts: &AllXyOptions) -> Vec<AllXyPoint> {
    let inst = Instantiation::paper_two_qubit();
    let (qa, qb) = (Qubit::new(0), Qubit::new(2));
    let noise = NoiseModel::ideal().with_gate_error(opts.gate_error, 0.0);
    let readout = ReadoutModel::symmetric(opts.readout_error);
    let config = SimConfig::default().with_noise(noise).with_readout(readout);
    let jobs: Vec<Job> = (0..42)
        .map(|round| {
            let (pa, pb) = workloads::two_qubit_round(round);
            let program =
                workloads::allxy_program_with_init(&inst, qa, qb, pa, pb, opts.init_cycles)
                    .expect("AllXY gates are in the default configuration");
            Job::new(format!("allxy#{round}"), inst.clone(), program)
                .with_config(config.clone())
                .with_shots(opts.shots)
                .with_seed(opts.seed ^ ((round as u64) << 32))
        })
        .collect();
    let results = ShotEngine::new(opts.workers)
        .run_jobs(&jobs)
        .expect("AllXY programs load");
    results
        .iter()
        .enumerate()
        .map(|(round, result)| {
            assert_eq!(result.non_halted, 0, "AllXY round {round} did not halt");
            let (pa, pb) = workloads::two_qubit_round(round);
            let observed_a = result.ones_fraction(qa.index()).expect("qubit A measured");
            let observed_b = result.ones_fraction(qb.index()).expect("qubit B measured");
            AllXyPoint {
                round,
                expected_a: workloads::allxy_expected(pa),
                expected_b: workloads::allxy_expected(pb),
                measured_a: readout.correct_p1(observed_a),
                measured_b: readout.correct_p1(observed_b),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 12 — randomized benchmarking vs gate interval
// ---------------------------------------------------------------------

/// The calibrated noise model of the Fig. 12 reproduction (see
/// `DESIGN.md` §6): T1 = T2 = 25 µs so 300 ns of extra idle per gate
/// adds ≈ 0.6 % error, plus a small per-gate depolarizing floor for
/// ε(20 ns) ≈ 0.10 %.
pub fn fig12_noise() -> NoiseModel {
    NoiseModel::with_coherence(25_000.0, 25_000.0).with_gate_error(0.0009, 0.0)
}

/// One RB decay curve at a fixed gate-start interval.
#[derive(Debug, Clone, PartialEq)]
pub struct RbCurve {
    /// Interval between consecutive gate starting points, in ns.
    pub interval_ns: f64,
    /// `(k, mean survival)` samples.
    pub points: Vec<(f64, f64)>,
    /// The fitted decay.
    pub fit: DecayFit,
}

/// Runs single-qubit RB through the full stack at one interval.
///
/// Survival is the exact ground-state population of the simulated qubit
/// at the end of each sequence (shot-noise-free; see `DESIGN.md`),
/// averaged over `seeds` random sequences per length. Every
/// `(length, sequence)` cell is one single-shot job on the shot
/// engine, so the whole curve fans out across the worker pool.
pub fn rb_curve(interval_cycles: u32, ks: &[usize], seeds: u64, noise: NoiseModel) -> RbCurve {
    // A one-qubit chip keeps the density matrix 2×2.
    let inst = Instantiation::paper().with_topology(Topology::linear(1));
    let qubit = Qubit::new(0);
    let config = SimConfig::default().with_noise(noise);
    let mut jobs = Vec::with_capacity(ks.len() * seeds as usize);
    for &k in ks {
        for seed in 0..seeds {
            let (program, _) = workloads::rb_probe_program(
                &inst,
                qubit,
                k,
                interval_cycles,
                0x5eed_0001u64 ^ seed.wrapping_mul(0x9e37_79b9) ^ ((k as u64) << 20),
                10,
            )
            .expect("RB primitives are configured");
            jobs.push(
                Job::new(format!("rb-k{k}-s{seed}"), inst.clone(), program)
                    .with_config(config.clone()),
            );
        }
    }
    let results = ShotEngine::default()
        .run_jobs(&jobs)
        .expect("RB programs load");
    let mut points = Vec::with_capacity(ks.len());
    for (i, &k) in ks.iter().enumerate() {
        let cells = &results[i * seeds as usize..(i + 1) * seeds as usize];
        let total: f64 = cells
            .iter()
            .map(|r| {
                assert_eq!(r.non_halted, 0, "RB job {} did not halt", r.name);
                1.0 - r.mean_prob1[qubit.index()]
            })
            .sum();
        points.push((k as f64, total / seeds as f64));
    }
    let fit = fit_decay(&points);
    RbCurve {
        interval_ns: interval_cycles as f64 * 20.0,
        points,
        fit,
    }
}

/// The full Fig. 12 sweep over gate-start intervals (in cycles; the
/// paper uses 320, 160, 80, 40, 20 ns = 16, 8, 4, 2, 1 cycles).
pub fn fig12_sweep(intervals: &[u32], ks: &[usize], seeds: u64) -> Vec<RbCurve> {
    intervals
        .iter()
        .map(|&i| rb_curve(i, ks, seeds, fig12_noise()))
        .collect()
}

// ---------------------------------------------------------------------
// Active qubit reset (Fig. 4 experiment)
// ---------------------------------------------------------------------

/// Runs the Fig. 4 active-reset experiment: X90, measure, conditional
/// C_X, measure. Returns the fraction of final measurements reporting
/// |0⟩ (the paper: 82.7 %, limited by readout fidelity).
pub fn active_reset_experiment(shots: u64, init_cycles: u32, seed: u64) -> f64 {
    let q = Qubit::new(2);
    let (inst, program) = WorkloadKind::ActiveReset { init_cycles }
        .build()
        .expect("reset program assembles");
    // The runtime's seed derivation (`base_seed + shot`) matches this
    // experiment's historical scheme exactly, so the ported version is
    // bit-compatible with the serial loop it replaces. The histogram
    // keys on each qubit's *final* measurement — precisely the
    // post-reset readout the paper reports.
    let job = Job::new("active-reset", inst, program)
        .with_config(SimConfig::default().with_readout(ReadoutModel::paper_reset()))
        .with_shots(shots)
        .with_seed(seed);
    let result = ShotEngine::default().run_job(&job).expect("program loads");
    assert_eq!(result.non_halted, 0, "active reset did not halt");
    let p1 = result.ones_fraction(q.index()).expect("qubit measured");
    1.0 - p1
}

// ---------------------------------------------------------------------
// Feedback latency (§5)
// ---------------------------------------------------------------------

/// Measured feedback latencies, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyReport {
    /// Fast conditional execution: measurement result → conditional
    /// pulse on the digital outputs (paper: ≈ 92 ns).
    pub fast_conditional_ns: f64,
    /// Comprehensive feedback control via FMR/CMP/BR (paper: ≈ 316 ns).
    pub cfc_ns: f64,
}

/// Measures both feedback latencies from the execution trace, exactly
/// as the paper measured them on an oscilloscope: the time between the
/// measurement result entering the controller and the conditional
/// output appearing.
pub fn feedback_latency() -> LatencyReport {
    let inst = Instantiation::paper_two_qubit();
    let config = SimConfig::default();
    let ns_per_cc = config.ns_per_classical_cycle();

    // Fast conditional: sweep the wait between MEASZ and C_X down to
    // the point where the flag update no longer precedes the trigger;
    // the minimum feasible separation is the hardware latency.
    let mut fast_ns = f64::NAN;
    for d in 15..60u32 {
        let src = format!(
            "SMIS S2, {{2}}\nQWAIT 100\n0, X S2\n1, MEASZ S2\nQWAIT {d}\n0, C_X S2\nQWAIT 5\nSTOP"
        );
        let program = eqasm_asm::assemble(&src, &inst).expect("assembles");
        let machine = run_program(&inst, program.instructions(), config.clone());
        let trace = machine.trace();
        let result_cc = trace
            .measurement_results()
            .first()
            .map(|(cc, _, _, _)| *cc)
            .expect("one measurement");
        let cx = trace
            .events()
            .iter()
            .find(|e| {
                matches!(&e.kind, TraceKind::OpTriggered { name, executed, .. }
                    if name == "C_X" && *executed)
            })
            .map(|e| e.cc);
        if let Some(out_cc) = cx {
            fast_ns = (out_cc - result_cc) as f64 * ns_per_cc;
            break;
        }
    }

    // CFC: the Fig. 5 program with the tightest wait; the timeline
    // resynchronises after the FMR stall, so the measured gap *is* the
    // pipeline latency.
    let src = "SMIS S0, {0}\nSMIS S1, {1}\nLDI R0, 1\nQWAIT 100\n0, MEASZ S1\nQWAIT 15\nFMR R1, Q1\nCMP R1, R0\nBR EQ, eq_path\nne_path:\nX S0\nBR ALWAYS, next\neq_path:\nY S0\nnext:\nQWAIT 10\nSTOP";
    let program = eqasm_asm::assemble(src, &inst).expect("assembles");
    let machine = run_program(&inst, program.instructions(), config.clone());
    let trace = machine.trace();
    let result_cc = trace
        .measurement_results()
        .first()
        .map(|(cc, _, _, _)| *cc)
        .expect("one measurement");
    let out_cc = trace
        .events()
        .iter()
        .find(|e| {
            matches!(&e.kind, TraceKind::OpTriggered { name, executed, .. }
                if (name == "X" || name == "Y") && *executed)
        })
        .map(|e| e.cc)
        .expect("a feedback-selected gate");
    let cfc_ns = (out_cc - result_cc) as f64 * ns_per_cc;

    LatencyReport {
        fast_conditional_ns: fast_ns,
        cfc_ns,
    }
}

// ---------------------------------------------------------------------
// CFC validation (§5): alternation of X and Y under mock results
// ---------------------------------------------------------------------

/// Runs the Fig. 5 CFC program `rounds` times with the UHFQC mock
/// alternating-result mode and returns the sequence of selected gates —
/// the paper verified the X/Y alternation on an oscilloscope.
pub fn cfc_alternation(rounds: u32, start: bool) -> Vec<String> {
    let inst = Instantiation::paper_two_qubit();
    let src = format!(
        "SMIS S0, {{0}}\nSMIS S1, {{1}}\nLDI R0, 1\nLDI r2, 0\nLDI r3, {rounds}\nLDI r4, 1\n\
         loop:\nQWAIT 100\n0, MEASZ S1\nQWAIT 30\nFMR R1, Q1\nCMP R1, R0\nBR EQ, eq_path\n\
         X S0\nBR ALWAYS, next\neq_path:\nY S0\nnext:\nQWAIT 10\n\
         ADD r2, r2, r4\nCMP r2, r3\nBR NE, loop\nSTOP"
    );
    let program = eqasm_asm::assemble(&src, &inst).expect("assembles");
    let config =
        SimConfig::default().with_measurement_source(MeasurementSource::MockAlternating { start });
    let machine = run_program(&inst, program.instructions(), config);
    machine
        .trace()
        .executed_ops()
        .iter()
        .filter(|(_, q, _)| *q == Qubit::new(0))
        .map(|(_, _, n)| n.to_string())
        .collect()
}

// ---------------------------------------------------------------------
// Grover search with tomography (§5)
// ---------------------------------------------------------------------

/// Options for the Grover fidelity experiment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroverOptions {
    /// Shots per tomography setting.
    pub shots_per_setting: u64,
    /// Two-qubit depolarizing error per CZ (calibrated so the
    /// algorithmic fidelity lands at the paper's 85.6 %).
    pub cz_error: f64,
    /// Single-qubit depolarizing error.
    pub single_error: f64,
    /// The marked state (0–3).
    pub target: u8,
    /// Base RNG seed.
    pub seed: u64,
    /// Worker threads for the shot engine (0 = machine parallelism).
    pub workers: usize,
}

impl Default for GroverOptions {
    fn default() -> Self {
        GroverOptions {
            shots_per_setting: 600,
            cz_error: 0.083,
            single_error: 0.001,
            target: 0b11,
            seed: 3,
            workers: 0,
        }
    }
}

/// Runs the two-qubit Grover search through the full stack, performs
/// state tomography over the nine Pauli settings and returns the
/// maximum-likelihood fidelity to the marked state.
///
/// The nine tomography settings are one job stream on the shot engine;
/// each setting's shot counts come back as an outcome histogram that
/// feeds the tomography accumulator.
pub fn grover_fidelity(opts: &GroverOptions) -> f64 {
    let inst = Instantiation::paper_two_qubit();
    let (qa, qb) = (Qubit::new(0), Qubit::new(2));
    let noise = NoiseModel::ideal().with_gate_error(opts.single_error, opts.cz_error);
    let programs = workloads::grover_tomography_programs(&inst, qa, qb, opts.target)
        .expect("Grover programs emit");
    let jobs: Vec<Job> = programs
        .iter()
        .enumerate()
        .map(|(setting_idx, (_, _, program))| {
            Job::new(
                format!("grover-setting{setting_idx}"),
                inst.clone(),
                program.clone(),
            )
            .with_config(SimConfig::default().with_noise(noise))
            .with_shots(opts.shots_per_setting)
            .with_seed(opts.seed ^ ((setting_idx as u64) << 40))
        })
        .collect();
    let results = ShotEngine::new(opts.workers)
        .run_jobs(&jobs)
        .expect("Grover programs load");
    let mut acc = TomographyAccumulator::new();
    for ((ba, bb, _), result) in programs.iter().zip(&results) {
        assert_eq!(result.non_halted, 0, "{} did not halt", result.name);
        for (outcome, &count) in result.histogram.iter() {
            let bit_a = outcome.get(qa.index()).expect("qubit A measured");
            let bit_b = outcome.get(qb.index()).expect("qubit B measured");
            for _ in 0..count {
                acc.add_shot(*ba, *bb, bit_a, bit_b);
            }
        }
    }
    let expectations = acc.expectations();
    let rho = tomography::mle_project(&tomography::linear_inversion(&expectations));
    let target = workloads::grover_target_state(opts.target);
    tomography::fidelity_pure(&rho, &target)
}

// ---------------------------------------------------------------------
// Rabi calibration (§5)
// ---------------------------------------------------------------------

/// Runs the Rabi amplitude sweep: for each amplitude, a user-configured
/// `X_AMP_i` operation is applied and the qubit measured. Returns
/// `(amplitude, measured P(1))` pairs (exact populations, no shot
/// noise).
pub fn rabi_sweep(amplitudes: &[f64]) -> Vec<(f64, f64)> {
    let base = Instantiation::paper_two_qubit();
    let inst = workloads::rabi_instantiation(&base, amplitudes);
    let q = Qubit::new(0);
    // One single-shot job per amplitude: the sweep fans out across the
    // pool while each point stays an exact-population probe.
    let jobs: Vec<Job> = amplitudes
        .iter()
        .enumerate()
        .map(|(i, &amp)| {
            // Probe variant: stop before the measurement collapses the
            // state — read the exact population instead.
            let mut program = workloads::rabi_program(&inst, q, i).expect("program builds");
            // Drop the MEASZ bundle (index 3) for exact readout.
            program.remove(3);
            Job::new(format!("rabi-a{amp:.3}"), inst.clone(), program)
        })
        .collect();
    let results = ShotEngine::default()
        .run_jobs(&jobs)
        .expect("Rabi programs load");
    amplitudes
        .iter()
        .zip(&results)
        .map(|(&amp, result)| {
            assert_eq!(result.non_halted, 0, "{} did not halt", result.name);
            (amp, result.mean_prob1[q.index()])
        })
        .collect()
}

// ---------------------------------------------------------------------
// Issue rate (§1.2 / §2.4)
// ---------------------------------------------------------------------

/// One row of the issue-rate comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct IssueRateRow {
    /// Description of the code-generation style.
    pub style: &'static str,
    /// Quantum instruction words per quantum cycle of timeline (R_req).
    pub required_rate: f64,
    /// Timeline slips observed when executing on the machine
    /// (R_allowed = 2 instructions per cycle).
    pub slips: u64,
}

/// Compares a QuMIS-style instruction stream (one op per word, explicit
/// waits) against eQASM Config 9 on a dense two-qubit RB workload, on
/// the real machine. The QuMIS-style stream exceeds R_allowed and
/// slips; the eQASM stream does not — the paper's §1.2 observation that
/// QuMIS "cannot be satisfied for some applications with only two
/// qubits".
pub fn issue_rate_comparison(cliffords: usize, seed: u64) -> Vec<IssueRateRow> {
    use eqasm_compiler::{emit, EmitOptions};

    let inst = Instantiation::paper_two_qubit();
    let mut rows = Vec::new();

    // Dense RB on both qubits of the two-qubit chip: back-to-back
    // primitives, one per cycle per qubit.
    let mut ops = Vec::new();
    {
        use eqasm_compiler::{Gate, GateKind, TimedGate};
        use eqasm_quantum::Clifford;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        for q in [0u8, 2] {
            let mut t = 0u64;
            for _ in 0..cliffords {
                for p in Clifford::random(&mut rng).decomposition() {
                    ops.push(TimedGate {
                        start: t,
                        duration: 1,
                        gate: Gate {
                            name: p.op_name().to_owned(),
                            kind: GateKind::Single {
                                qubit: Qubit::new(q),
                            },
                        },
                    });
                    t += 1;
                }
            }
        }
    }
    let schedule = eqasm_compiler::Schedule::from_timed(3, ops);

    // eQASM (the paper's Config 9, w = 2, SOMQ): the emitting code
    // generator produces it directly.
    let eqasm_program = emit(
        &schedule,
        &inst,
        &EmitOptions {
            init_wait: 100,
            final_wait: 0,
            append_stop: true,
        },
    )
    .expect("emits");

    // QuMIS-style: every timing point gets an explicit QWAIT and every
    // operation its own single-op word (no SOMQ, w = 1).
    let mut qumis_program: Vec<Instruction> = vec![Instruction::QWait { cycles: 100 }];
    {
        use eqasm_core::{Bundle, BundleOp, SReg};
        // Pre-set one S register per qubit.
        qumis_program.insert(
            0,
            Instruction::Smis {
                sd: SReg::new(0),
                mask: inst.topology().single_mask(&[Qubit::new(0)]).unwrap(),
            },
        );
        qumis_program.insert(
            1,
            Instruction::Smis {
                sd: SReg::new(1),
                mask: inst.topology().single_mask(&[Qubit::new(2)]).unwrap(),
            },
        );
        let mut prev: Option<u64> = None;
        for (start, gates) in schedule.points() {
            let interval = match prev {
                None => 1,
                Some(p) => start - p,
            };
            prev = Some(start);
            qumis_program.push(Instruction::QWait {
                cycles: interval as u32,
            });
            for g in gates {
                let opcode = inst
                    .ops()
                    .by_name(&g.gate.name)
                    .expect("configured")
                    .opcode();
                let sreg = match &g.gate.kind {
                    eqasm_compiler::GateKind::Single { qubit } if qubit.raw() == 0 => SReg::new(0),
                    _ => SReg::new(1),
                };
                qumis_program.push(Instruction::Bundle(Bundle::with_pre_interval(
                    0,
                    vec![BundleOp::single(opcode, sreg)],
                )));
            }
        }
        qumis_program.push(Instruction::Stop);
    }

    for (style, program) in [
        ("eQASM (Config 9, w=2, SOMQ)", &eqasm_program),
        ("QuMIS-style (ts1, w=1, no SOMQ)", &qumis_program),
    ] {
        let mut machine = QuMa::new(inst.clone(), SimConfig::default());
        machine.load(program).expect("loads");
        let result = machine.run();
        assert!(result.status.is_halted(), "{style} did not halt");
        rows.push(IssueRateRow {
            style,
            required_rate: result.stats.required_issue_rate(),
            slips: result.stats.timeline_slips,
        });
    }
    rows
}

/// Convenience re-export of the measurement bases for harness callers.
pub fn tomography_bases() -> [MeasBasis; 3] {
    MeasBasis::ALL
}

// ---------------------------------------------------------------------
// T1 / Ramsey calibration (§2.2 design requirement)
// ---------------------------------------------------------------------

/// One calibration decay curve: `(delay_ns, P(1))` samples plus the
/// recovered time constant.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationCurve {
    /// The sampled points.
    pub points: Vec<(f64, f64)>,
    /// The recovered time constant, in nanoseconds.
    pub recovered_ns: f64,
}

fn one_qubit_inst() -> Instantiation {
    Instantiation::paper().with_topology(Topology::linear(1))
}

/// Runs the T1 experiment through the full stack: prepare |1⟩, idle a
/// swept delay, and read the exact surviving population (an `I` marker
/// pulse pins the timeline so the idle time elapses on the simulated
/// qubit). Returns the decay curve and the recovered T1.
pub fn t1_experiment(delays_cycles: &[u32], noise: NoiseModel) -> CalibrationCurve {
    let inst = one_qubit_inst();
    let q = Qubit::new(0);
    let config = SimConfig::default().with_noise(noise);
    let mut points = Vec::with_capacity(delays_cycles.len());
    for &d in delays_cycles {
        // A zero delay would put the marker on the same timing point
        // as the preparation pulse (a qubit conflict): use PI = 1 then.
        let tail = if d > 0 {
            format!("QWAIT {d}\n0, I S0")
        } else {
            "1, I S0".to_owned()
        };
        let src = format!("SMIS S0, {{0}}\nQWAIT 100\n0, X S0\n{tail}\nSTOP");
        let program = eqasm_asm::assemble(&src, &inst).expect("assembles");
        let mut machine = run_program(&inst, program.instructions(), config.clone());
        points.push((d as f64 * 20.0, machine.prob1(q)));
    }
    // P(t) = A·f^t + B with t in ns; T1 = -1/ln f.
    let fit = fit_decay(&points);
    CalibrationCurve {
        points,
        recovered_ns: -1.0 / fit.f.ln(),
    }
}

/// Runs the Ramsey experiment (X90, delay, X90): the fringe amplitude
/// decays with T2. Returns the curve and the recovered T2.
pub fn ramsey_experiment(delays_cycles: &[u32], noise: NoiseModel) -> CalibrationCurve {
    let inst = one_qubit_inst();
    let q = Qubit::new(0);
    let config = SimConfig::default().with_noise(noise);
    let mut points = Vec::with_capacity(delays_cycles.len());
    for &d in delays_cycles {
        let tail = if d > 0 {
            format!("QWAIT {d}\n0, X90 S0")
        } else {
            "1, X90 S0".to_owned()
        };
        let src = format!("SMIS S0, {{0}}\nQWAIT 100\n0, X90 S0\n{tail}\nSTOP");
        let program = eqasm_asm::assemble(&src, &inst).expect("assembles");
        let mut machine = run_program(&inst, program.instructions(), config.clone());
        points.push((d as f64 * 20.0, machine.prob1(q)));
    }
    let fit = fit_decay(&points);
    CalibrationCurve {
        points,
        recovered_ns: -1.0 / fit.f.ln(),
    }
}

// ---------------------------------------------------------------------
// Scheduling-policy ablation (ASAP vs ALAP under decoherence)
// ---------------------------------------------------------------------

/// Result of the scheduling ablation: survival of the early-gated qubit
/// under each policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduleAblation {
    /// P(1) of the probe qubit with ASAP scheduling.
    pub asap_p1: f64,
    /// P(1) of the probe qubit with ALAP scheduling.
    pub alap_p1: f64,
}

/// Quantifies why schedule choice matters on NISQ hardware (the Fig. 12
/// theme): qubit 0 receives a single X while qubit 1 runs a long gate
/// chain; under ASAP the X fires immediately and qubit 0 decays for the
/// rest of the program, under ALAP it fires at the end.
pub fn schedule_policy_ablation(chain_len: usize, noise: NoiseModel) -> ScheduleAblation {
    use eqasm_compiler::{emit, schedule_alap, schedule_asap, Circuit, EmitOptions, GateDurations};
    let inst = Instantiation::paper().with_topology(Topology::linear(2));
    let mut c = Circuit::new(2);
    c.single("X", 0).expect("in range");
    for i in 0..chain_len {
        c.single(if i % 2 == 0 { "X90" } else { "XM90" }, 1)
            .expect("in range");
    }
    let config = SimConfig::default().with_noise(noise);
    let run_policy = |alap: bool| {
        let schedule = if alap {
            schedule_alap(&c, GateDurations::paper()).expect("schedules")
        } else {
            schedule_asap(&c, GateDurations::paper()).expect("schedules")
        };
        let program = emit(&schedule, &inst, &EmitOptions::bare()).expect("emits");
        let mut machine = run_program(&inst, &program, config.clone());
        machine.prob1(Qubit::new(0))
    };
    ScheduleAblation {
        asap_p1: run_policy(false),
        alap_p1: run_policy(true),
    }
}
