//! Regenerates **Fig. 12**: single-qubit randomized benchmarking for
//! different intervals between gate starting points (320, 160, 80, 40,
//! 20 ns), with the error per gate extracted from the exponential decay.
//!
//! Paper reference values: eps(320 ns)=0.71%, eps(160)=0.35%,
//! eps(80)=0.20%, eps(40)=0.12%, eps(20)=0.10%.
//!
//! Usage: `cargo run --release -p eqasm-bench --bin fig12_rb [seeds] [max_k]`

use eqasm_bench::experiments::fig12_sweep;

fn main() {
    let seeds: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let max_k: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let mut ks: Vec<usize> = vec![
        2, 4, 8, 16, 32, 64, 128, 256, 384, 512, 768, 1024, 1536, 2000,
    ];
    ks.retain(|&k| k <= max_k);
    let intervals = [16u32, 8, 4, 2, 1]; // 320..20 ns
    let paper = [0.71, 0.35, 0.20, 0.12, 0.10];

    println!("Fig. 12 — RB vs gate interval ({seeds} sequences per length)");
    let curves = fig12_sweep(&intervals, &ks, seeds);
    for (curve, paper_eps) in curves.iter().zip(paper) {
        println!("\ninterval {:>3} ns:", curve.interval_ns);
        for (k, p) in &curve.points {
            println!("  k={:>5}  survival={:.4}", *k as u64, p);
        }
        println!(
            "  fit: f={:.6}  ->  eps/gate = {:.3}%   (paper: {:.2}%)",
            curve.fit.f,
            100.0 * curve.fit.error_per_gate(),
            paper_eps
        );
    }
    println!("\nSummary (eps per gate, measured vs paper):");
    for (curve, paper_eps) in curves.iter().zip(paper) {
        println!(
            "  {:>3} ns: {:.3}%  vs  {:.2}%",
            curve.interval_ns,
            100.0 * curve.fit.error_per_gate(),
            paper_eps
        );
    }
}
