//! Regenerates the **T1 / Ramsey calibration** workflow that §2.2
//! names as an explicit eQASM design requirement ("some experiments
//! such as measuring the relaxation time of qubits"): sweep the idle
//! delay with `QWAIT`, fit the exponential, and recover the configured
//! coherence times.
//!
//! Usage: `cargo run --release -p eqasm-bench --bin calibration`

use eqasm_bench::experiments::{ramsey_experiment, schedule_policy_ablation, t1_experiment};
use eqasm_quantum::NoiseModel;

fn main() {
    let t1_ns = 25_000.0;
    let t2_ns = 20_000.0;
    let noise = NoiseModel::with_coherence(t1_ns, t2_ns);

    let delays: Vec<u32> = (0..14).map(|i| i * 250).collect(); // 0..65 us
    println!("T1 experiment (configured T1 = {t1_ns} ns):");
    let t1 = t1_experiment(&delays, noise);
    for (t, p) in &t1.points {
        println!("  delay {:>8.0} ns  P(1) = {p:.4}", t);
    }
    println!(
        "  recovered T1 = {:.0} ns  (configured {t1_ns} ns, {:+.2}%)",
        t1.recovered_ns,
        100.0 * (t1.recovered_ns - t1_ns) / t1_ns
    );

    println!("\nRamsey experiment (configured T2 = {t2_ns} ns):");
    let ramsey = ramsey_experiment(&delays, noise);
    for (t, p) in &ramsey.points {
        println!("  delay {:>8.0} ns  P(1) = {p:.4}", t);
    }
    println!(
        "  recovered T2 = {:.0} ns  (configured {t2_ns} ns, {:+.2}%)",
        ramsey.recovered_ns,
        100.0 * (ramsey.recovered_ns - t2_ns) / t2_ns
    );

    println!("\nScheduling-policy ablation (why timing-aware compilation matters):");
    let ablation = schedule_policy_ablation(400, noise);
    println!(
        "  probe qubit survival: ASAP = {:.4}, ALAP = {:.4}",
        ablation.asap_p1, ablation.alap_p1
    );
    println!(
        "  ALAP defers the lone gate next to the end of the program, avoiding the idle decay."
    );
}
