//! Regenerates the **two-qubit Grover search** experiment of §5:
//! algorithmic fidelity from quantum tomography with maximum-likelihood
//! estimation, with the CZ error calibrated to the paper's limit.
//!
//! Paper reference: 85.6 %, "limited by the CZ gate".
//!
//! Usage: `cargo run --release -p eqasm-bench --bin grover_fidelity [shots_per_setting]`

use eqasm_bench::experiments::{grover_fidelity, GroverOptions};

fn main() {
    let shots: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    let opts = GroverOptions {
        shots_per_setting: shots,
        ..GroverOptions::default()
    };
    println!(
        "Two-qubit Grover search, marked state |{:02b}>, {} shots x 9 tomography settings",
        opts.target, opts.shots_per_setting
    );
    let f = grover_fidelity(&opts);
    println!(
        "  MLE fidelity to |{:02b}> = {:.1}%   (paper: 85.6%)",
        opts.target,
        100.0 * f
    );
}
