//! Measures the **feedback latencies** of §5 from the execution trace,
//! the way the paper measured them with an oscilloscope.
//!
//! Paper reference: fast conditional execution ~92 ns, CFC ~316 ns.
//!
//! Usage: `cargo run --release -p eqasm-bench --bin feedback_latency`

use eqasm_bench::experiments::feedback_latency;

fn main() {
    let report = feedback_latency();
    println!("Feedback latency (measurement result -> conditional output)");
    println!(
        "  fast conditional execution: {:>6.0} ns   (paper: ~92 ns)",
        report.fast_conditional_ns
    );
    println!(
        "  comprehensive feedback    : {:>6.0} ns   (paper: ~316 ns)",
        report.cfc_ns
    );
}
