//! Regenerates **Fig. 7**: number of instructions for architecture
//! configurations 1–10 and VLIW widths 1–4, for the RB, IM and SR
//! workloads, plus the effective-operations-per-bundle numbers the
//! paper quotes for Config 9.
//!
//! Usage: `cargo run --release -p eqasm-bench --bin fig7_dse [rb_cliffords]`

use eqasm_bench::experiments::fig7_grid;

fn main() {
    let rb_cliffords: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4096);
    println!("Fig. 7 — instruction counts (RB = 7 qubits x {rb_cliffords} Cliffords)");
    println!("Values are normalised to Config 1, w = 1 (the QuMIS-style baseline).\n");

    let grid = fig7_grid(rb_cliffords, 42);

    for workload in ["RB", "IM", "SR"] {
        println!("== {workload} ==");
        println!(
            "{:>7} {:>10} {:>10} {:>10} {:>10}",
            "config", "w=1", "w=2", "w=3", "w=4"
        );
        for config in 1..=10u32 {
            let mut row = format!("{config:>7}");
            for width in 1..=4usize {
                let cell = grid
                    .iter()
                    .find(|c| c.workload == workload && c.config == config && c.width == width);
                match cell {
                    Some(c) => row.push_str(&format!(" {:>10.3}", c.normalized)),
                    None => row.push_str(&format!(" {:>10}", "-")),
                }
            }
            println!("{row}");
        }
        println!();
    }

    println!("Key paper comparisons (reduction vs Config 1 at the same/shown width):");
    let get = |wl: &str, cfg: u32, w: usize| {
        grid.iter()
            .find(|c| c.workload == wl && c.config == cfg && c.width == w)
            .expect("cell exists")
    };
    let red = |wl: &str, cfg: u32, w: usize, base_cfg: u32, base_w: usize| {
        let a = get(wl, cfg, w).instructions as f64;
        let b = get(wl, base_cfg, base_w).instructions as f64;
        1.0 - a / b
    };
    println!(
        "  RB  Config1 w1->w4      : measured {:5.1}%   (paper: up to 62%)",
        100.0 * red("RB", 1, 4, 1, 1)
    );
    println!(
        "  RB  Config2 vs 1 (w2-4) : measured {:4.1}/{:4.1}/{:4.1}%  (paper: 20-33%)",
        100.0 * red("RB", 2, 2, 1, 2),
        100.0 * red("RB", 2, 3, 1, 3),
        100.0 * red("RB", 2, 4, 1, 4)
    );
    println!(
        "  IM  Config2 vs 1 (w2-4) : measured {:4.1}/{:4.1}/{:4.1}%  (paper: 24-45%)",
        100.0 * red("IM", 2, 2, 1, 2),
        100.0 * red("IM", 2, 3, 1, 3),
        100.0 * red("IM", 2, 4, 1, 4)
    );
    println!(
        "  SR  Config2 vs 1 (w2-4) : measured {:4.1}/{:4.1}/{:4.1}%  (paper: 43-50%)",
        100.0 * red("SR", 2, 2, 1, 2),
        100.0 * red("SR", 2, 3, 1, 3),
        100.0 * red("SR", 2, 4, 1, 4)
    );
    println!(
        "  RB  Config3 vs 1 (w1/w4): measured {:4.1}/{:4.1}%  (paper: 13-33%)",
        100.0 * red("RB", 3, 1, 1, 1),
        100.0 * red("RB", 3, 4, 1, 4)
    );
    println!(
        "  IM  Config3 vs 1 (w1/w4): measured {:4.1}/{:4.1}%  (paper: 28-44%)",
        100.0 * red("IM", 3, 1, 1, 1),
        100.0 * red("IM", 3, 4, 1, 4)
    );
    println!(
        "  SR  Config3 vs 1 (w1)   : measured {:4.1}%  (paper: ~17%)",
        100.0 * red("SR", 3, 1, 1, 1)
    );
    println!(
        "  SR  Config6 vs 1 (w1)   : measured {:4.1}%  (paper: up to 48%)",
        100.0 * red("SR", 6, 1, 1, 1)
    );
    println!(
        "  RB  SOMQ (8 vs 4, w2)   : measured {:4.1}%  (paper: max 42%)",
        100.0 * red("RB", 8, 2, 4, 2)
    );
    println!(
        "  SR  SOMQ (8 vs 4, w1)   : measured {:4.1}%  (paper: max ~4%)",
        100.0 * red("SR", 8, 1, 4, 1)
    );
    for w in [1usize, 2, 3, 4] {
        let im_red = red("IM", 9, w, 5, w);
        print!("  IM  SOMQ (9 vs 5, w{w})   : {:4.1}%", 100.0 * im_red);
        let paper = ["~24%", "~19%", "~9%", "~2%"][w - 1];
        println!("  (paper: {paper})");
    }

    println!("\nEffective quantum operations per bundle, Config 9 (paper: RB 1.795/2.296/3.144, IM 1.485/1.622/1.623, SR 1.118/1.147/1.147 for w=2..4):");
    for wl in ["RB", "IM", "SR"] {
        let vals: Vec<String> = (2..=4)
            .map(|w| format!("{:.3}", get(wl, 9, w).effective_ops))
            .collect();
        println!("  {wl}: {}", vals.join(" / "));
    }
}
