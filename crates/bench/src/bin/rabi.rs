//! Regenerates the **Rabi oscillation** calibration of §5: a sweep of
//! user-configured `X_Amp_i` operations (compile-time QISA
//! configuration) against the measured excited-state population.
//!
//! Usage: `cargo run --release -p eqasm-bench --bin rabi [points]`

use eqasm_bench::experiments::rabi_sweep;
use eqasm_workloads::rabi_expected_p1;

fn main() {
    let points: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(21);
    let amps: Vec<f64> = (0..points)
        .map(|i| 2.0 * i as f64 / (points - 1) as f64)
        .collect();
    println!("Rabi oscillation via X_AMP_i operations ({points} sweep points)");
    println!("{:>8} {:>10} {:>10}", "amp", "P(1)", "ideal");
    let mut max_dev: f64 = 0.0;
    for (amp, p1) in rabi_sweep(&amps) {
        let ideal = rabi_expected_p1(amp);
        println!("{amp:>8.3} {p1:>10.4} {ideal:>10.4}");
        max_dev = max_dev.max((p1 - ideal).abs());
    }
    println!("\nmax deviation from sin^2(pi*amp/2): {max_dev:.2e}");
}
