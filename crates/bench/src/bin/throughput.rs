//! Measures shot-engine throughput (shots/sec) at 1/2/4/8 workers on
//! an RB workload, runs the same traffic through the `eqasm-serve`
//! job queue to record queue wait vs active time per job, then runs a
//! loopback-remote section (local slots + an in-process worker daemon
//! over the wire protocol) to price the transport, and emits a
//! `BENCH_runtime.json` trajectory point for trend tracking.
//!
//! Usage: `cargo run --release -p eqasm-bench --bin throughput [shots] [out.json]`

use std::sync::Arc;

use eqasm_core::{Instantiation, Qubit, Topology};
use eqasm_microarch::SimConfig;
use eqasm_quantum::{NoiseModel, ReadoutModel};
use eqasm_runtime::loadgen::RpsStep;
use eqasm_runtime::{
    capacity_sweep, spawn_serve, spawn_worker, Ceilings, Client, ConnectOptions, ExecBackend, Job,
    JobQueue, JournalConfig, LoadClass, LoadSpec, LocalBackend, MetricsServer, RemoteBackend,
    ServeConfig, ServeNetConfig, ShotEngine, ShotsDist, Submission, SweepConfig, SweepTarget,
    WorkerConfig, WorkloadKind, WorkloadSpec,
};
use eqasm_workloads::rb_program;

/// Reads one unlabeled series from the process-global metrics
/// registry by scraping the exposition text, the same way an external
/// Prometheus would.
fn sample_metric(name: &str) -> f64 {
    let text = eqasm_runtime::metrics::default_registry().encode();
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find_map(|l| {
            let (n, v) = l.rsplit_once(' ')?;
            if n == name {
                v.parse::<f64>().ok()
            } else {
                None
            }
        })
        .unwrap_or(0.0)
}

fn main() {
    let shots: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let out_path = std::env::args()
        .nth(2)
        .unwrap_or_else(|| "BENCH_runtime.json".to_owned());

    let inst = Instantiation::paper().with_topology(Topology::linear(1));
    let (program, _) = rb_program(&inst, Qubit::new(0), 24, 1, 0x5eed).expect("rb emits");
    let config = SimConfig::default()
        .with_noise(NoiseModel::with_coherence(25_000.0, 25_000.0).with_gate_error(0.0009, 0.0))
        .with_readout(ReadoutModel::symmetric(0.05));
    let job = Job::new("rb-k24", inst, program)
        .with_config(config)
        .with_shots(shots)
        .with_seed(1);

    println!("runtime throughput: RB k=24, {shots} shots/run");
    println!(
        "{:>8} {:>12} {:>10} {:>10} {:>10} {:>9}",
        "workers", "shots/s", "p50 µs", "p95 µs", "p99 µs", "speedup"
    );

    let mut rows = Vec::new();
    let mut serial_rate = 0.0f64;
    for workers in [1usize, 2, 4, 8] {
        // Best of three runs: the engine's determinism means only
        // wall-clock varies, so the max is the cleanest capacity
        // number on a shared host.
        let mut best: Option<eqasm_runtime::JobResult> = None;
        for _ in 0..3 {
            let r = ShotEngine::new(workers).run_job(&job).expect("runs");
            if best
                .as_ref()
                .is_none_or(|b| r.shots_per_sec > b.shots_per_sec)
            {
                best = Some(r);
            }
        }
        let r = best.expect("three runs");
        if workers == 1 {
            serial_rate = r.shots_per_sec;
        }
        let speedup = r.shots_per_sec / serial_rate.max(1e-9);
        println!(
            "{:>8} {:>12.0} {:>10.1} {:>10.1} {:>10.1} {:>8.2}x",
            workers,
            r.shots_per_sec,
            r.latency.p50_ns as f64 / 1e3,
            r.latency.p95_ns as f64 / 1e3,
            r.latency.p99_ns as f64 / 1e3,
            speedup,
        );
        rows.push(format!(
            "    {{\"workers\": {workers}, \"shots_per_sec\": {:.1}, \"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"speedup\": {:.3}}}",
            r.shots_per_sec,
            r.latency.p50_ns as f64 / 1e3,
            r.latency.p95_ns as f64 / 1e3,
            r.latency.p99_ns as f64 / 1e3,
            speedup,
        ));
    }

    // Program-aware execution paths: one ideal Clifford RB sequence
    // (deep enough that the deterministic prefix dominates shot cost)
    // through the four path combinations — legacy dense, dense with
    // prefix forking, stabilizer without forking (`EQASM_PREFIX=off`,
    // the same lever the determinism CI uses) and the full fast path.
    // The exact-regime contract makes all four bit-identical, which is
    // asserted; only the shots/sec may differ. The fast path's target
    // is ≥5× the legacy dense baseline.
    let sp_shots = (shots / 2).max(200);
    let sp_inst = Instantiation::paper().with_topology(Topology::linear(3));
    let (sp_program, _) = rb_program(&sp_inst, Qubit::new(0), 64, 1, 0xc11f).expect("rb emits");
    let sp_base = Job::new("rb-k64-clifford", sp_inst, sp_program)
        .with_config(SimConfig::default().with_readout(ReadoutModel::symmetric(0.05)))
        .with_shots(sp_shots)
        .with_seed(2);
    println!("\nshot speed: ideal Clifford RB k=64 on 3 qubits, {sp_shots} shots, 4 workers");
    println!("{:>22} {:>12} {:>9}", "path", "shots/s", "speedup");
    let sp_engine = ShotEngine::new(4);
    let mut sp_rows = Vec::new();
    let mut sp_reference: Option<eqasm_runtime::JobResult> = None;
    let mut sp_dense_rate = 0.0f64;
    let mut sp_fast_speedup = 0.0f64;
    for (path, backend, prefix_on) in [
        ("dense", eqasm_microarch::BackendSelect::Dense, false),
        (
            "dense_prefix",
            eqasm_microarch::BackendSelect::Density,
            true,
        ),
        (
            "stabilizer_noprefix",
            eqasm_microarch::BackendSelect::Auto,
            false,
        ),
        (
            "stabilizer_prefix",
            eqasm_microarch::BackendSelect::Auto,
            true,
        ),
    ] {
        // `Dense` already disables forking engine-side; the env knob
        // covers the stabilizer row and keeps the A/B symmetric.
        if !prefix_on {
            std::env::set_var("EQASM_PREFIX", "off");
        }
        let mut sp_config = sp_base.config.clone();
        sp_config.backend = backend;
        let sp_job = Job {
            name: format!("rb-k64-{path}"),
            config: sp_config,
            ..sp_base.clone()
        };
        let mut best: Option<eqasm_runtime::JobResult> = None;
        for _ in 0..2 {
            let r = sp_engine.run_job(&sp_job).expect("runs");
            if best
                .as_ref()
                .is_none_or(|b| r.shots_per_sec > b.shots_per_sec)
            {
                best = Some(r);
            }
        }
        if !prefix_on {
            std::env::remove_var("EQASM_PREFIX");
        }
        let r = best.expect("two runs");
        match &sp_reference {
            None => {
                sp_dense_rate = r.shots_per_sec;
                sp_reference = Some(r.clone());
            }
            Some(reference) => {
                assert_eq!(
                    reference.histogram, r.histogram,
                    "{path}: execution path must not move a bit of the histogram"
                );
                assert_eq!(reference.stats, r.stats);
                assert_eq!(reference.mean_prob1, r.mean_prob1);
            }
        }
        let speedup = r.shots_per_sec / sp_dense_rate.max(1e-9);
        if path == "stabilizer_prefix" {
            sp_fast_speedup = speedup;
        }
        println!("{:>22} {:>12.0} {:>8.2}x", path, r.shots_per_sec, speedup);
        sp_rows.push(format!(
            "      {{\"path\": \"{path}\", \"shots_per_sec\": {:.1}, \"speedup\": {:.3}}}",
            r.shots_per_sec, speedup,
        ));
    }
    println!(
        "shot speed: stabilizer+prefix fast path is {sp_fast_speedup:.2}x legacy dense (target >= 5x), bit-identical"
    );

    // Serve-mode: the same RB traffic split over two tenants through
    // the job queue, so the trajectory also tracks how long a job sits
    // queued (scheduling delay) vs how long it actively runs.
    let serve_workers = 2usize;
    let per_job = (shots / 4).max(1);
    println!("\nserve mode: 4 jobs × {per_job} shots, 2 tenants (cal weight 3, batch weight 1), {serve_workers} workers");
    let queue = JobQueue::new(
        ServeConfig::default()
            .with_workers(serve_workers)
            .with_batch_size(64),
    );
    queue.register_tenant("cal", 3, u64::MAX);
    queue.register_tenant("batch", 1, u64::MAX);
    let mut handles = Vec::new();
    for i in 0..2u64 {
        for tenant in ["cal", "batch"] {
            let j = job
                .clone()
                .with_shots(per_job)
                .with_seed(1 + i * per_job + if tenant == "cal" { 0 } else { 1 << 32 });
            let named = Job {
                name: format!("{tenant}-{i}"),
                ..j
            };
            handles.extend(
                queue
                    .submit(Submission::job(tenant, named))
                    .expect("submits"),
            );
        }
    }
    // Sample the queue-depth gauge while the serve jobs drain — the
    // peak undispatched-batch depth is a scheduling-pressure number
    // the per-job rows can't show — then collect the (now finished)
    // handles below.
    let mut peak_queue_depth = 0i64;
    loop {
        peak_queue_depth = peak_queue_depth.max(sample_metric("eqasm_queue_depth") as i64);
        if handles.iter().all(|h| h.snapshot().done) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let live_workers = queue.workers();
    println!(
        "{:>10} {:>8} {:>12} {:>10} {:>10}",
        "job", "tenant", "shots/s", "wait ms", "active ms"
    );
    let mut serve_rows = Vec::new();
    for handle in &handles {
        let result = handle.wait().expect("queued job completes");
        let snap = handle.snapshot();
        let wait_ms = snap.queue_wait.as_secs_f64() * 1e3;
        let active_ms = snap.active.as_secs_f64() * 1e3;
        println!(
            "{:>10} {:>8} {:>12.0} {:>10.1} {:>10.1}",
            result.name, snap.tenant, result.shots_per_sec, wait_ms, active_ms
        );
        serve_rows.push(format!(
            "    {{\"job\": \"{}\", \"tenant\": \"{}\", \"shots\": {}, \"shots_per_sec\": {:.1}, \"queue_wait_ms\": {:.2}, \"active_ms\": {:.2}}}",
            result.name, snap.tenant, result.shots, result.shots_per_sec, wait_ms, active_ms
        ));
    }

    // Durability tax: the same 4-job serve workload on a plain
    // in-memory queue vs a journaled one (`--journal`, batch fsync) —
    // the wall-clock overhead of writing every admission and folded
    // range ahead, plus what the journal costs on disk. The group
    // commit is the whole trick: appends/fsyncs is the batching ratio.
    // Measured on the legacy dense path: there a 64-shot batch costs
    // real simulation time, so the overhead number reflects production
    // per-batch cost instead of comparing one fsync against the
    // prefix-forked fast path's microsecond batches.
    let dense_job = {
        let mut dense_config = job.config.clone();
        dense_config.backend = eqasm_microarch::BackendSelect::Dense;
        job.clone().with_config(dense_config)
    };
    let run_workload = |queue: &JobQueue| -> f64 {
        queue.register_tenant("cal", 3, u64::MAX);
        queue.register_tenant("batch", 1, u64::MAX);
        let mut hs = Vec::new();
        let started = std::time::Instant::now();
        for i in 0..2u64 {
            for tenant in ["cal", "batch"] {
                let j = dense_job
                    .clone()
                    .with_shots(per_job)
                    .with_seed(1 + i * per_job + if tenant == "cal" { 0 } else { 1 << 32 });
                let named = Job {
                    name: format!("{tenant}-{i}"),
                    ..j
                };
                hs.extend(
                    queue
                        .submit(Submission::job(tenant, named))
                        .expect("submits"),
                );
            }
        }
        for h in &hs {
            h.wait().expect("completes");
        }
        started.elapsed().as_secs_f64()
    };
    let plain_queue = JobQueue::new(
        ServeConfig::default()
            .with_workers(serve_workers)
            .with_batch_size(64),
    );
    let plain_wall = run_workload(&plain_queue);
    plain_queue.shutdown();

    let journal_dir =
        std::env::temp_dir().join(format!("eqasm-bench-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&journal_dir);
    let appends_before = sample_metric("eqasm_journal_appends_total");
    let fsyncs_before = sample_metric("eqasm_journal_fsyncs_total");
    let jbackends: Vec<Box<dyn ExecBackend>> = (0..serve_workers)
        .map(|i| Box::new(LocalBackend::new(i)) as Box<dyn ExecBackend>)
        .collect();
    let (journal_queue, _) = JobQueue::recover(
        ServeConfig::default().with_batch_size(64),
        jbackends,
        &JournalConfig::new(&journal_dir),
    )
    .expect("journaled queue starts");
    let journal_wall = run_workload(&journal_queue);
    journal_queue.shutdown();
    let journal_appends = (sample_metric("eqasm_journal_appends_total") - appends_before) as u64;
    let journal_fsyncs = (sample_metric("eqasm_journal_fsyncs_total") - fsyncs_before) as u64;
    let journal_disk_bytes: u64 = std::fs::read_dir(&journal_dir)
        .map(|d| {
            d.filter_map(|e| e.ok()?.metadata().ok().map(|m| m.len()))
                .sum()
        })
        .unwrap_or(0);
    let _ = std::fs::remove_dir_all(&journal_dir);
    let journal_overhead_pct = (journal_wall / plain_wall.max(1e-9) - 1.0) * 100.0;
    println!(
        "\njournal (batch fsync): serve wall {plain_wall:.3}s plain -> {journal_wall:.3}s journaled \
         ({journal_overhead_pct:+.1}% overhead); {journal_appends} records / {journal_fsyncs} fsyncs, \
         {journal_disk_bytes} B on disk for 4 jobs"
    );

    // Loopback-remote: the same job through a mixed pool — one local
    // slot plus two remote slots on an in-process worker daemon. On
    // one host this prices the wire protocol (encode + TCP + decode)
    // against pure-local dispatch; across hosts the same code path is
    // the cross-host sharding fabric. Results are asserted
    // bit-identical to the engine — a benchmark that quietly computed
    // something different would be worse than no benchmark.
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let worker = spawn_worker(
        listener,
        WorkerConfig::default()
            .with_name("bench-worker")
            .with_capacity(2),
    )
    .expect("spawn worker");
    let mut backends: Vec<Box<dyn ExecBackend>> = vec![Box::new(LocalBackend::new(0))];
    let mut remote_slots = 0;
    for backend in RemoteBackend::connect_pool(worker.addr().to_string()).expect("attach worker") {
        remote_slots += 1;
        backends.push(Box::new(backend));
    }
    let pool_size = backends.len();
    let remote_queue =
        JobQueue::with_backends(ServeConfig::default().with_batch_size(64), backends);
    let started = std::time::Instant::now();
    let handle = remote_queue
        .submit(Submission::job("bench", job.clone()))
        .expect("submits")
        .remove(0);
    let remote_result = handle.wait().expect("completes");
    let wall = started.elapsed().as_secs_f64();
    let reference = ShotEngine::serial()
        .with_batch_size(64)
        .run_job(&job)
        .expect("reference runs");
    assert_eq!(
        remote_result.histogram, reference.histogram,
        "loopback-remote run must be bit-identical to the local engine"
    );
    assert_eq!(remote_result.stats, reference.stats);
    assert_eq!(remote_result.mean_prob1, reference.mean_prob1);
    let remote_rate = shots as f64 / wall.max(1e-9);
    println!(
        "\nloopback-remote: 1 local + {remote_slots} remote slots, {shots} shots, {:.0} shots/s (bit-identical to engine)",
        remote_rate
    );

    // Elastic: the same job on a deliberately degraded pool (one
    // local slot), with a loopback worker attached **mid-run** —
    // recording shots/sec before and after the attach. This prices
    // what the pool supervisor buys a production deployment: a
    // degraded coordinator regains throughput the moment a worker
    // (re)joins, with the result still asserted bit-identical.
    let elistener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let eworker = spawn_worker(
        elistener,
        WorkerConfig::default()
            .with_name("elastic-worker")
            .with_capacity(2),
    )
    .expect("spawn elastic worker");
    let elastic_queue = JobQueue::with_backends(
        ServeConfig::default().with_batch_size(64),
        vec![Box::new(LocalBackend::new(0))],
    );
    let attach_at = shots / 2;
    let estarted = std::time::Instant::now();
    let ehandle = elastic_queue
        .submit(Submission::job("elastic", job.clone()))
        .expect("submits")
        .remove(0);
    // Degraded phase: wait for roughly half the shots on one slot.
    let (before_shots, before_elapsed) = loop {
        let snap = ehandle.snapshot();
        if snap.shots_done >= attach_at || snap.done {
            break (snap.shots_done, estarted.elapsed());
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    };
    let mut elastic_slots = 1usize;
    for backend in
        RemoteBackend::connect_pool(eworker.addr().to_string()).expect("attach elastic worker")
    {
        elastic_queue
            .attach_backend(Box::new(backend))
            .expect("attach elastic slot");
        elastic_slots += 1;
    }
    let attach_elapsed = estarted.elapsed();
    let elastic_result = ehandle.wait().expect("completes");
    let after_elapsed = estarted.elapsed() - attach_elapsed;
    assert_eq!(
        elastic_result.histogram, reference.histogram,
        "mid-run attach must be bit-identical to the local engine"
    );
    assert_eq!(elastic_result.stats, reference.stats);
    assert_eq!(elastic_result.mean_prob1, reference.mean_prob1);
    let before_rate = before_shots as f64 / before_elapsed.as_secs_f64().max(1e-9);
    let after_rate = (shots - before_shots) as f64 / after_elapsed.as_secs_f64().max(1e-9);
    println!(
        "\nelastic: 1 -> {elastic_slots} slots mid-run, {before_rate:.0} shots/s degraded -> {after_rate:.0} shots/s after attach (bit-identical)"
    );

    // Client front door: the same job submitted over the wire-v2
    // serve acceptor by a TCP client, streaming partial snapshots —
    // pricing the full networked path (submit → schedule → stream →
    // final), with the result asserted bit-identical as always.
    let clistener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let client_queue = Arc::new(JobQueue::with_backends(
        ServeConfig::default().with_batch_size(64),
        vec![
            Box::new(LocalBackend::new(0)),
            Box::new(LocalBackend::new(1)),
        ],
    ));
    let server = spawn_serve(
        clistener,
        Arc::clone(&client_queue),
        ServeNetConfig::default().with_name("bench-serve"),
    )
    .expect("spawn serve front door");
    let client = Client::connect(server.addr().to_string()).expect("client connects");
    let cstarted = std::time::Instant::now();
    let chandles = client
        .submit(Submission::job("bench-client", job.clone()))
        .expect("remote submit");
    let mut snapshots_streamed = 0u64;
    let client_result = chandles[0]
        .watch(|_| snapshots_streamed += 1)
        .expect("remote job completes");
    let cwall = cstarted.elapsed().as_secs_f64();
    assert_eq!(
        client_result.histogram, reference.histogram,
        "client-wire run must be bit-identical to the local engine"
    );
    assert_eq!(client_result.stats, reference.stats);
    assert_eq!(client_result.mean_prob1, reference.mean_prob1);
    let client_rate = shots as f64 / cwall.max(1e-9);
    println!(
        "\nclient front door: {shots} shots submitted over TCP, {snapshots_streamed} snapshots streamed, {client_rate:.0} shots/s (bit-identical)"
    );

    // Job-registry bandwidth: the same 8 ranges through a v2
    // connection (LoadJob once + RunRangeById) and a v1-pinned one
    // (full job bytes per range) — the measured per-range request
    // cost the wire-v2 registry removes.
    let blistener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let bworker = spawn_worker(
        blistener,
        WorkerConfig::default()
            .with_name("bytes-worker")
            .with_capacity(2),
    )
    .expect("spawn bytes worker");
    let mut v2_backend = RemoteBackend::connect(bworker.addr().to_string()).expect("v2 connects");
    let mut v1_backend = RemoteBackend::connect_opts(
        bworker.addr().to_string(),
        ConnectOptions::default().with_protocol_cap(1),
    )
    .expect("v1 connects");
    assert!(
        v2_backend.protocol() >= 2,
        "default negotiation must land on a registry-capable version"
    );
    assert_eq!(v1_backend.protocol(), 1);
    let bench_ranges = 8u64;
    let range_shots = (shots / bench_ranges).max(1);
    for i in 0..bench_ranges {
        let range = i * range_shots..(i + 1) * range_shots;
        let a = v2_backend.run_range(&job, range.clone()).expect("v2 range");
        let b = v1_backend.run_range(&job, range).expect("v1 range");
        assert_eq!(a.histogram, b.histogram, "both protocols agree");
    }
    let t2 = v2_backend.traffic();
    let t1 = v1_backend.traffic();
    let per_range_v2 = t2.range_request_bytes / t2.range_requests.max(1);
    let per_range_v1 = t1.range_request_bytes / t1.range_requests.max(1);
    assert!(
        per_range_v2 < per_range_v1,
        "RunRangeById must reduce per-range request bytes"
    );
    println!(
        "job registry: {per_range_v1} B/range (v1 inline) -> {per_range_v2} B/range (v2 by-id), \
         one-time LoadJob {} B; total request bytes {} -> {}",
        t2.load_request_bytes,
        t1.total_request_bytes(),
        t2.total_request_bytes(),
    );

    // Per-job wire bytes with and without the varint+RLE compression
    // flag (PROTOCOL.md §4) — the same encoding the journal's Admit
    // records reuse, so this is also bytes-per-job at rest.
    let job_bytes = eqasm_runtime::wire::encode_job(&job).expect("job encodes");
    let load_job_raw = eqasm_runtime::wire::LoadJob::encode_parts(1, &job_bytes).len();
    let load_job_auto = eqasm_runtime::wire::LoadJob::encode_parts_auto(1, &job_bytes).len();
    println!(
        "job compression: LoadJob payload {load_job_raw} B raw -> {load_job_auto} B shipped \
         ({:.1}% of raw)",
        load_job_auto as f64 * 100.0 / load_job_raw.max(1) as f64
    );

    // Capacity: an actual open-loop ramp against the serve front
    // door. A fresh coordinator (2 local slots) and a live `/metrics`
    // endpoint take stepped submission rates of the same noisy RB
    // workload until a rung breaches a failure-rate or p50-latency
    // ceiling — the max-sustainable-rps number, with server-side
    // truth per rung, lands in the `capacity` JSON section. The
    // initial rate is derived from the measured serial shot rate so
    // the geometric ramp reaches the knee in a handful of rungs on
    // any host.
    let cap_listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let cap_queue = Arc::new(JobQueue::with_backends(
        ServeConfig::default().with_batch_size(64),
        vec![
            Box::new(LocalBackend::new(0)),
            Box::new(LocalBackend::new(1)),
        ],
    ));
    let cap_server = spawn_serve(
        cap_listener,
        Arc::clone(&cap_queue),
        ServeNetConfig::default().with_name("bench-capacity"),
    )
    .expect("spawn capacity serve");
    let cap_metrics =
        MetricsServer::spawn("127.0.0.1:0", eqasm_runtime::metrics::default_registry())
            .expect("spawn capacity metrics");
    let cap_shots = (shots / 4).max(250);
    // Two slots × serial rate, in jobs/sec — the rough service capacity
    // the ramp is hunting for.
    let cap_jobs_per_sec = (2.0 * serial_rate / cap_shots as f64).max(2.0);
    let cap_spec = LoadSpec::new(vec![LoadClass {
        tenant: "cap".into(),
        spec: WorkloadSpec::new(
            "rb-k24",
            WorkloadKind::Rb {
                k: 24,
                interval_cycles: 1,
                sequence_seed: 0x5eed,
            },
            cap_shots,
        )
        .with_config(job.config.clone()),
        share: 1,
    }])
    .with_shots(ShotsDist::fixed(cap_shots))
    .with_connections(2)
    .with_watchers(1)
    .with_seed(0xcafe);
    let cap_config = SweepConfig {
        initial_rps: (cap_jobs_per_sec / 2.0).max(2.0),
        step: RpsStep::Mul(2.0),
        max_rps: cap_jobs_per_sec * 16.0,
        window: std::time::Duration::from_millis(1500),
        drain_timeout: std::time::Duration::from_secs(8),
        stop: Ceilings {
            failure_rate: 0.4,
            p50: std::time::Duration::from_millis(1500),
        },
        ..SweepConfig::default()
    };
    let cap_target = SweepTarget::new(cap_server.addr().to_string())
        .with_metrics(cap_metrics.local_addr().to_string());
    let capacity =
        capacity_sweep(&cap_spec, &cap_target, &cap_config).expect("capacity sweep runs");
    println!(
        "\ncapacity: {} rungs, max sustainable {:.1} rps (stop: {})",
        capacity.rungs.len(),
        capacity.max_sustainable_rps,
        capacity.stop,
    );
    print!("{}", capacity.table());
    drop(cap_metrics);

    // Scrape cost: price one full exposition encode of everything the
    // sections above accumulated, so the trajectory tracks how
    // expensive a Prometheus scrape is as the series catalogue grows.
    let registry = eqasm_runtime::metrics::default_registry();
    let scrape_started = std::time::Instant::now();
    let exposition = registry.encode();
    let scrape_us = scrape_started.elapsed().as_secs_f64() * 1e6;
    let series = registry.series_count();
    println!(
        "\nmetrics: {series} series, {} B exposition, encoded in {scrape_us:.1} µs",
        exposition.len()
    );

    let available = std::thread::available_parallelism().map_or(1, |n| n.get());
    let json = format!(
        "{{\n  \"bench\": \"runtime\",\n  \"workload\": \"rb-k24\",\n  \"shots\": {shots},\n  \"host_parallelism\": {available},\n  \"points\": [\n{}\n  ],\n  \"shot_speed\": {{\n    \"workload\": \"rb-k64-clifford\",\n    \"shots\": {sp_shots},\n    \"qubits\": 3,\n    \"workers\": 4,\n    \"target_speedup\": 5.0,\n    \"stabilizer_prefix_speedup\": {sp_fast_speedup:.3},\n    \"bit_identical\": true,\n    \"paths\": [\n{}\n    ]\n  }},\n  \"serve\": {{\n    \"workers\": {live_workers},\n    \"peak_queue_depth\": {peak_queue_depth},\n    \"jobs\": [\n{}\n    ]\n  }},\n  \"journal\": {{\n    \"fsync\": \"batch\",\n    \"path\": \"dense\",\n    \"jobs\": 4,\n    \"serve_wall_s_plain\": {plain_wall:.4},\n    \"serve_wall_s_journaled\": {journal_wall:.4},\n    \"overhead_pct\": {journal_overhead_pct:.2},\n    \"records_appended\": {journal_appends},\n    \"fsyncs\": {journal_fsyncs},\n    \"disk_bytes\": {journal_disk_bytes}\n  }},\n  \"metrics\": {{\n    \"series\": {series},\n    \"exposition_bytes\": {},\n    \"encode_us\": {scrape_us:.1}\n  }},\n  \"remote\": {{\n    \"pool\": {pool_size},\n    \"remote_slots\": {remote_slots},\n    \"shots_per_sec\": {remote_rate:.1},\n    \"bit_identical\": true\n  }},\n  \"elastic\": {{\n    \"slots_before\": 1,\n    \"slots_after\": {elastic_slots},\n    \"attach_at_shots\": {before_shots},\n    \"shots_per_sec_before\": {before_rate:.1},\n    \"shots_per_sec_after\": {after_rate:.1},\n    \"bit_identical\": true\n  }},\n  \"client\": {{\n    \"shots_per_sec\": {client_rate:.1},\n    \"snapshots_streamed\": {snapshots_streamed},\n    \"bit_identical\": true,\n    \"run_range_bytes_v1\": {per_range_v1},\n    \"run_range_bytes_v2\": {per_range_v2},\n    \"bytes_saved_per_range\": {},\n    \"load_job_bytes_once\": {},\n    \"load_job_bytes_raw\": {load_job_raw},\n    \"load_job_bytes_compressed\": {load_job_auto},\n    \"total_request_bytes_v1\": {},\n    \"total_request_bytes_v2\": {}\n  }},\n  \"capacity\":\n{}\n}}\n",
        rows.join(",\n"),
        sp_rows.join(",\n"),
        serve_rows.join(",\n"),
        exposition.len(),
        per_range_v1 - per_range_v2,
        t2.load_request_bytes,
        t1.total_request_bytes(),
        t2.total_request_bytes(),
        capacity.to_json("  ")
    );
    std::fs::write(&out_path, &json).expect("write trajectory point");
    println!("wrote {out_path} (host parallelism: {available})");
}
