//! Verifies **comprehensive feedback control** the way §5 does: the
//! measurement unit produces alternating mock results and the selected
//! X/Y operations must alternate on the outputs.
//!
//! Usage: `cargo run --release -p eqasm-bench --bin cfc_check [rounds]`

use eqasm_bench::experiments::cfc_alternation;

fn main() {
    let rounds: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let gates = cfc_alternation(rounds, false);
    println!("CFC validation with mock alternating measurement results:");
    println!("  selected gates: {}", gates.join(" "));
    let expected: Vec<&str> = (0..rounds as usize)
        .map(|i| if i % 2 == 0 { "X" } else { "Y" })
        .collect();
    let ok = gates
        .iter()
        .map(String::as_str)
        .eq(expected.iter().copied());
    println!("  alternation correct: {}", if ok { "yes" } else { "NO" });
    std::process::exit(if ok { 0 } else { 1 });
}
