//! Demonstrates the **quantum operation issue-rate problem** (§1.2):
//! a QuMIS-style instruction stream (one operation per word, explicit
//! waits) exceeds R_allowed = 2 instructions per 20 ns cycle on a dense
//! two-qubit workload and forces timeline slips, while the eQASM
//! encoding (Config 9, w = 2, SOMQ) keeps up.
//!
//! Usage: `cargo run --release -p eqasm-bench --bin issue_rate [cliffords]`

use eqasm_bench::experiments::issue_rate_comparison;

fn main() {
    let cliffords: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    println!("Issue-rate comparison on back-to-back two-qubit RB ({cliffords} Cliffords/qubit)");
    println!("R_allowed = 2 instructions per quantum cycle (100 MHz pipeline, 50 MHz timing)");
    for row in issue_rate_comparison(cliffords, 5) {
        println!(
            "  {:<34} R_req = {:>5.2} instr/cycle, timeline slips = {}",
            row.style, row.required_rate, row.slips
        );
    }
}
