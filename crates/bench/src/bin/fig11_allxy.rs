//! Regenerates **Fig. 11**: the two-qubit AllXY staircase, corrected
//! for readout errors.
//!
//! Usage: `cargo run --release -p eqasm-bench --bin fig11_allxy [shots]`

use eqasm_bench::experiments::{allxy_experiment, AllXyOptions};

fn main() {
    let shots: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let opts = AllXyOptions {
        shots,
        ..AllXyOptions::default()
    };
    println!(
        "Fig. 11 — two-qubit AllXY ({} shots/round, readout eps = {:.2}%, corrected)",
        opts.shots,
        100.0 * opts.readout_error
    );
    println!(
        "{:>5} {:>10} {:>10} {:>10} {:>10}",
        "round", "ideal(q0)", "meas(q0)", "ideal(q2)", "meas(q2)"
    );
    let points = allxy_experiment(&opts);
    let mut max_dev: f64 = 0.0;
    for p in &points {
        println!(
            "{:>5} {:>10.2} {:>10.3} {:>10.2} {:>10.3}",
            p.round, p.expected_a, p.measured_a, p.expected_b, p.measured_b
        );
        max_dev = max_dev
            .max((p.measured_a - p.expected_a).abs())
            .max((p.measured_b - p.expected_b).abs());
    }
    println!(
        "\nmax |measured - ideal| = {max_dev:.3} (paper: 'matches well with the expectation')"
    );
}
