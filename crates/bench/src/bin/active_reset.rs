//! Regenerates the **active qubit reset** experiment (Fig. 4 / §5):
//! probability of measuring |0> after the conditional C_X, with the
//! readout error calibrated to the paper's limit.
//!
//! Paper reference: 82.7 %, "limited by the readout fidelity".
//!
//! Usage: `cargo run --release -p eqasm-bench --bin active_reset [shots]`

use eqasm_bench::experiments::active_reset_experiment;

fn main() {
    let shots: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4000);
    let p0 = active_reset_experiment(shots, 200, 7);
    println!("Active qubit reset ({shots} shots)");
    println!(
        "  P(|0>) after conditional C_X = {:.1}%   (paper: 82.7%)",
        100.0 * p0
    );
}
