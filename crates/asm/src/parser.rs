//! The eQASM assembly parser: tokens → [`SourceProgram`].

use eqasm_core::{CmpFlag, Gpr, Qubit, SReg, TReg};

use crate::ast::*;
use crate::error::{AsmError, AsmErrorKind};
use crate::lexer::{lex, Spanned, Token};

/// Mnemonics of the auxiliary classical and quantum non-bundle
/// instructions (Table 1); everything else on an instruction line is a
/// quantum bundle.
const MNEMONICS: &[&str] = &[
    "NOP", "STOP", "CMP", "BR", "FBR", "LDI", "LDUI", "LD", "ST", "FMR", "AND", "OR", "XOR", "NOT",
    "ADD", "SUB", "QWAIT", "QWAITR", "SMIS", "SMIT",
];

/// Parses eQASM assembly text.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on any lexical or
/// syntactic problem. Name resolution and range checks happen later, in
/// the assembler.
///
/// # Examples
///
/// ```
/// use eqasm_asm::parser::parse;
///
/// let program = parse("SMIS S7, {0, 2}\n0, Y S7\nMEASZ S7").unwrap();
/// assert_eq!(program.instructions().count(), 3);
/// ```
pub fn parse(source: &str) -> Result<SourceProgram, AsmError> {
    let tokens = lex(source)?;
    Parser::new(&tokens).run()
}

struct Parser<'t> {
    tokens: &'t [Spanned],
    pos: usize,
}

impl<'t> Parser<'t> {
    fn new(tokens: &'t [Spanned]) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&'t Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek2(&self) -> Option<&'t Token> {
        self.tokens.get(self.pos + 1).map(|s| &s.token)
    }

    fn line(&self) -> usize {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<&'t Token> {
        let t = self.tokens.get(self.pos).map(|s| &s.token);
        self.pos += 1;
        t
    }

    fn syntax_error(&self, expected: &str) -> AsmError {
        let found = self
            .peek()
            .map(|t| t.describe())
            .unwrap_or_else(|| "end of input".to_owned());
        AsmError::at(
            self.line(),
            AsmErrorKind::Syntax {
                expected: expected.to_owned(),
                found,
            },
        )
    }

    fn expect(&mut self, token: Token, what: &str) -> Result<(), AsmError> {
        if self.peek() == Some(&token) {
            self.next();
            Ok(())
        } else {
            Err(self.syntax_error(what))
        }
    }

    fn expect_ident(&mut self, what: &str) -> Result<&'t str, AsmError> {
        match self.peek() {
            Some(Token::Ident(s)) => {
                self.next();
                Ok(s)
            }
            _ => Err(self.syntax_error(what)),
        }
    }

    fn expect_int(&mut self, what: &str) -> Result<i64, AsmError> {
        let negative = if self.peek() == Some(&Token::Minus) {
            self.next();
            true
        } else {
            false
        };
        match self.peek() {
            Some(Token::Int(v)) => {
                self.next();
                Ok(if negative { -*v } else { *v })
            }
            _ => Err(self.syntax_error(what)),
        }
    }

    fn run(mut self) -> Result<SourceProgram, AsmError> {
        let mut items = Vec::new();
        while self.peek().is_some() {
            if self.peek() == Some(&Token::Newline) {
                self.next();
                continue;
            }
            // Label definitions: ident ':'
            if let (Some(Token::Ident(name)), Some(Token::Colon)) = (self.peek(), self.peek2()) {
                let line = self.line();
                let name = name.clone();
                self.next();
                self.next();
                items.push(Item::Label { name, line });
                continue;
            }
            let line = self.line();
            let instr = self.parse_instruction()?;
            items.push(Item::Instr { instr, line });
            // Consume the trailing newline, if any.
            if self.peek() == Some(&Token::Newline) {
                self.next();
            } else if self.peek().is_some() {
                return Err(self.syntax_error("end of line"));
            }
        }
        Ok(SourceProgram { items })
    }

    fn parse_instruction(&mut self) -> Result<SourceInstr, AsmError> {
        match self.peek() {
            Some(Token::Ident(word)) => {
                let upper = word.to_ascii_uppercase();
                if MNEMONICS.contains(&upper.as_str()) {
                    self.next();
                    self.parse_classical(&upper)
                } else {
                    self.parse_bundle(None)
                }
            }
            Some(Token::Int(pi)) => {
                let pi = *pi;
                if self.peek2() == Some(&Token::Comma) {
                    self.next();
                    self.next();
                    if pi < 0 {
                        return Err(self.syntax_error("a non-negative pre-interval"));
                    }
                    self.parse_bundle(Some(pi as u32))
                } else {
                    Err(self.syntax_error("an instruction"))
                }
            }
            _ => Err(self.syntax_error("an instruction")),
        }
    }

    fn parse_classical(&mut self, mnemonic: &str) -> Result<SourceInstr, AsmError> {
        match mnemonic {
            "NOP" => Ok(SourceInstr::Nop),
            "STOP" => Ok(SourceInstr::Stop),
            "CMP" => {
                let rs = self.gpr()?;
                self.expect(Token::Comma, "`,`")?;
                let rt = self.gpr()?;
                Ok(SourceInstr::Cmp { rs, rt })
            }
            "BR" => {
                let flag = self.cmp_flag()?;
                self.expect(Token::Comma, "`,`")?;
                let target = match self.peek() {
                    Some(Token::Ident(name)) => {
                        let t = BranchTarget::Label(name.clone());
                        self.next();
                        t
                    }
                    _ => {
                        let offset = self.expect_int("a label or offset")?;
                        BranchTarget::Offset(offset as i32)
                    }
                };
                Ok(SourceInstr::Br { flag, target })
            }
            "FBR" => {
                let flag = self.cmp_flag()?;
                self.expect(Token::Comma, "`,`")?;
                let rd = self.gpr()?;
                Ok(SourceInstr::Fbr { flag, rd })
            }
            "LDI" => {
                let rd = self.gpr()?;
                self.expect(Token::Comma, "`,`")?;
                let imm = self.expect_int("an immediate")?;
                Ok(SourceInstr::Ldi { rd, imm })
            }
            "LDUI" => {
                let rd = self.gpr()?;
                self.expect(Token::Comma, "`,`")?;
                let imm = self.expect_int("an immediate")?;
                self.expect(Token::Comma, "`,`")?;
                let rs = self.gpr()?;
                Ok(SourceInstr::Ldui { rd, imm, rs })
            }
            "LD" | "ST" => {
                let first = self.gpr()?;
                self.expect(Token::Comma, "`,`")?;
                let rt = self.gpr()?;
                self.expect(Token::LParen, "`(`")?;
                let imm = self.expect_int("an address offset")?;
                self.expect(Token::RParen, "`)`")?;
                Ok(if mnemonic == "LD" {
                    SourceInstr::Ld { rd: first, rt, imm }
                } else {
                    SourceInstr::St { rs: first, rt, imm }
                })
            }
            "FMR" => {
                let rd = self.gpr()?;
                self.expect(Token::Comma, "`,`")?;
                let qubit = self.qubit_reg()?;
                Ok(SourceInstr::Fmr { rd, qubit })
            }
            "AND" | "OR" | "XOR" | "ADD" | "SUB" => {
                let rd = self.gpr()?;
                self.expect(Token::Comma, "`,`")?;
                let rs = self.gpr()?;
                self.expect(Token::Comma, "`,`")?;
                let rt = self.gpr()?;
                Ok(match mnemonic {
                    "AND" => SourceInstr::And { rd, rs, rt },
                    "OR" => SourceInstr::Or { rd, rs, rt },
                    "XOR" => SourceInstr::Xor { rd, rs, rt },
                    "ADD" => SourceInstr::Add { rd, rs, rt },
                    _ => SourceInstr::Sub { rd, rs, rt },
                })
            }
            "NOT" => {
                let rd = self.gpr()?;
                self.expect(Token::Comma, "`,`")?;
                let rt = self.gpr()?;
                Ok(SourceInstr::Not { rd, rt })
            }
            "QWAIT" => {
                let cycles = self.expect_int("a waiting time")?;
                Ok(SourceInstr::QWait { cycles })
            }
            "QWAITR" => {
                let rs = self.gpr()?;
                Ok(SourceInstr::QWaitR { rs })
            }
            "SMIS" => {
                let sd = self.sreg()?;
                self.expect(Token::Comma, "`,`")?;
                let arg = self.smis_arg()?;
                Ok(SourceInstr::Smis { sd, arg })
            }
            "SMIT" => {
                let td = self.treg()?;
                self.expect(Token::Comma, "`,`")?;
                let arg = self.smit_arg()?;
                Ok(SourceInstr::Smit { td, arg })
            }
            other => Err(AsmError::at(
                self.line(),
                AsmErrorKind::UnknownMnemonic(other.to_owned()),
            )),
        }
    }

    fn parse_bundle(&mut self, pi: Option<u32>) -> Result<SourceInstr, AsmError> {
        let mut ops = Vec::new();
        loop {
            let name = self.expect_ident("a quantum operation name")?.to_owned();
            let target = match self.peek() {
                Some(Token::Ident(reg)) => {
                    let t = self.parse_target(reg)?;
                    self.next();
                    Some(t)
                }
                _ => None,
            };
            ops.push(SourceOp { name, target });
            if self.peek() == Some(&Token::Pipe) {
                self.next();
            } else {
                break;
            }
        }
        Ok(SourceInstr::Bundle(SourceBundle { pi, ops }))
    }

    fn parse_target(&self, text: &str) -> Result<SourceTarget, AsmError> {
        match split_reg(text) {
            Some(('s', idx)) => Ok(SourceTarget::S(SReg::new(idx))),
            Some(('t', idx)) => Ok(SourceTarget::T(TReg::new(idx))),
            _ => Err(AsmError::at(
                self.line(),
                AsmErrorKind::BadRegister(text.to_owned()),
            )),
        }
    }

    fn gpr(&mut self) -> Result<Gpr, AsmError> {
        let line = self.line();
        let text = self.expect_ident("a general purpose register")?;
        match split_reg(text) {
            Some(('r', idx)) => Ok(Gpr::new(idx)),
            _ => Err(AsmError::at(
                line,
                AsmErrorKind::BadRegister(text.to_owned()),
            )),
        }
    }

    fn sreg(&mut self) -> Result<SReg, AsmError> {
        let line = self.line();
        let text = self.expect_ident("a single-qubit target register")?;
        match split_reg(text) {
            Some(('s', idx)) => Ok(SReg::new(idx)),
            _ => Err(AsmError::at(
                line,
                AsmErrorKind::BadRegister(text.to_owned()),
            )),
        }
    }

    fn treg(&mut self) -> Result<TReg, AsmError> {
        let line = self.line();
        let text = self.expect_ident("a two-qubit target register")?;
        match split_reg(text) {
            Some(('t', idx)) => Ok(TReg::new(idx)),
            _ => Err(AsmError::at(
                line,
                AsmErrorKind::BadRegister(text.to_owned()),
            )),
        }
    }

    fn qubit_reg(&mut self) -> Result<Qubit, AsmError> {
        let line = self.line();
        let text = self.expect_ident("a qubit measurement result register")?;
        match split_reg(text) {
            Some(('q', idx)) => Ok(Qubit::new(idx)),
            _ => Err(AsmError::at(
                line,
                AsmErrorKind::BadRegister(text.to_owned()),
            )),
        }
    }

    fn cmp_flag(&mut self) -> Result<CmpFlag, AsmError> {
        let line = self.line();
        let text = self.expect_ident("a comparison flag")?;
        text.parse().map_err(|_| {
            AsmError::at(
                line,
                AsmErrorKind::Syntax {
                    expected: "a comparison flag".to_owned(),
                    found: format!("`{text}`"),
                },
            )
        })
    }

    fn smis_arg(&mut self) -> Result<SmisArg, AsmError> {
        if self.peek() == Some(&Token::LBrace) {
            self.next();
            let mut qubits = Vec::new();
            if self.peek() != Some(&Token::RBrace) {
                loop {
                    let v = self.expect_int("a qubit address")?;
                    if !(0..=255).contains(&v) {
                        return Err(self.syntax_error("a qubit address in 0..=255"));
                    }
                    qubits.push(Qubit::new(v as u8));
                    if self.peek() == Some(&Token::Comma) {
                        self.next();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Token::RBrace, "`}`")?;
            Ok(SmisArg::Qubits(qubits))
        } else {
            let v = self.expect_int("a qubit list or mask")?;
            if !(0..=u32::MAX as i64).contains(&v) {
                return Err(self.syntax_error("a non-negative mask"));
            }
            Ok(SmisArg::Mask(v as u32))
        }
    }

    fn smit_arg(&mut self) -> Result<SmitArg, AsmError> {
        if self.peek() == Some(&Token::LBrace) {
            self.next();
            let mut pairs = Vec::new();
            if self.peek() != Some(&Token::RBrace) {
                loop {
                    self.expect(Token::LParen, "`(`")?;
                    let s = self.expect_int("a source qubit")?;
                    self.expect(Token::Comma, "`,`")?;
                    let t = self.expect_int("a target qubit")?;
                    self.expect(Token::RParen, "`)`")?;
                    if !(0..=255).contains(&s) || !(0..=255).contains(&t) {
                        return Err(self.syntax_error("qubit addresses in 0..=255"));
                    }
                    pairs.push((Qubit::new(s as u8), Qubit::new(t as u8)));
                    if self.peek() == Some(&Token::Comma) {
                        self.next();
                    } else {
                        break;
                    }
                }
            }
            self.expect(Token::RBrace, "`}`")?;
            Ok(SmitArg::Pairs(pairs))
        } else {
            let v = self.expect_int("a pair list or mask")?;
            if !(0..=u32::MAX as i64).contains(&v) {
                return Err(self.syntax_error("a non-negative mask"));
            }
            Ok(SmitArg::Mask(v as u32))
        }
    }
}

/// Splits a register identifier like `r12`, `S7`, `t3` or `q1` into its
/// lower-cased prefix letter and numeric index.
fn split_reg(text: &str) -> Option<(char, u8)> {
    let mut chars = text.chars();
    let head = chars.next()?.to_ascii_lowercase();
    let rest = chars.as_str();
    if rest.is_empty() || !rest.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    rest.parse::<u8>().ok().map(|idx| (head, idx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fig3_program() {
        // The two-qubit AllXY routine of Fig. 3.
        let src = "\
SMIS S0, {0}
SMIS S2, {2}
SMIS S7, {0, 2}
QWAIT 10000
0, Y S7
1, X90 S0 | X S2
1, MEASZ S7
QWAIT 50";
        let p = parse(src).unwrap();
        assert_eq!(p.instructions().count(), 8);
        match &p.items[4] {
            Item::Instr {
                instr: SourceInstr::Bundle(b),
                ..
            } => {
                assert_eq!(b.pi, Some(0));
                assert_eq!(b.ops.len(), 1);
                assert_eq!(b.ops[0].name, "Y");
                assert_eq!(b.ops[0].target, Some(SourceTarget::S(SReg::new(7))));
            }
            other => panic!("expected bundle, got {other:?}"),
        }
    }

    #[test]
    fn parses_fig4_active_reset() {
        let src = "\
SMIS S2, {2}
QWAIT 10000
X90 S2
MEASZ S2
QWAIT 50
C_X S2
MEASZ S2";
        let p = parse(src).unwrap();
        assert_eq!(p.instructions().count(), 7);
        // Bare bundles default to no explicit PI.
        match &p.items[2] {
            Item::Instr {
                instr: SourceInstr::Bundle(b),
                ..
            } => assert_eq!(b.pi, None),
            other => panic!("expected bundle, got {other:?}"),
        }
    }

    #[test]
    fn parses_fig5_cfc_program() {
        let src = "\
SMIS S0, {0}
SMIS S1, {1}
LDI R0, 1
MEASZ S1
QWAIT 30
FMR R1, Q1
CMP R1, R0
BR EQ, eq_path
ne_path:
X S0
BR ALWAYS, next
eq_path:
Y S0
next:
";
        let p = parse(src).unwrap();
        let labels: Vec<&str> = p
            .items
            .iter()
            .filter_map(|i| match i {
                Item::Label { name, .. } => Some(name.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(labels, vec!["ne_path", "eq_path", "next"]);
        assert_eq!(p.instructions().count(), 11);
        assert!(p.instructions().any(|i| matches!(
            i,
            SourceInstr::Br {
                flag: CmpFlag::Always,
                target: BranchTarget::Label(l)
            } if l == "next"
        )));
    }

    #[test]
    fn parses_vliw_bundle() {
        let p = parse("2, X90 S0 | CZ T3 | QNOP").unwrap();
        match &p.items[0] {
            Item::Instr {
                instr: SourceInstr::Bundle(b),
                ..
            } => {
                assert_eq!(b.pi, Some(2));
                assert_eq!(b.ops.len(), 3);
                assert_eq!(b.ops[1].target, Some(SourceTarget::T(TReg::new(3))));
                assert_eq!(b.ops[2].name, "QNOP");
                assert_eq!(b.ops[2].target, None);
            }
            other => panic!("expected bundle, got {other:?}"),
        }
    }

    #[test]
    fn parses_smit_pairs() {
        let p = parse("SMIT T3, {(1, 3), (2, 4)}").unwrap();
        match &p.items[0] {
            Item::Instr {
                instr: SourceInstr::Smit { td, arg },
                ..
            } => {
                assert_eq!(*td, TReg::new(3));
                assert_eq!(
                    *arg,
                    SmitArg::Pairs(vec![
                        (Qubit::new(1), Qubit::new(3)),
                        (Qubit::new(2), Qubit::new(4))
                    ])
                );
            }
            other => panic!("expected SMIT, got {other:?}"),
        }
    }

    #[test]
    fn parses_mask_forms() {
        let p = parse("SMIS S1, 0b101\nSMIT T0, 0x21").unwrap();
        assert!(matches!(
            &p.items[0],
            Item::Instr {
                instr: SourceInstr::Smis {
                    arg: SmisArg::Mask(5),
                    ..
                },
                ..
            }
        ));
        assert!(matches!(
            &p.items[1],
            Item::Instr {
                instr: SourceInstr::Smit {
                    arg: SmitArg::Mask(0x21),
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn parses_memory_instructions() {
        let p = parse("LD r2, r3(-4)\nST r2, r3(8)").unwrap();
        assert!(matches!(
            &p.items[0],
            Item::Instr {
                instr: SourceInstr::Ld { imm: -4, .. },
                ..
            }
        ));
        assert!(matches!(
            &p.items[1],
            Item::Instr {
                instr: SourceInstr::St { imm: 8, .. },
                ..
            }
        ));
    }

    #[test]
    fn parses_ldui() {
        let p = parse("LDUI r5, 100, r5").unwrap();
        assert!(matches!(
            &p.items[0],
            Item::Instr {
                instr: SourceInstr::Ldui { imm: 100, .. },
                ..
            }
        ));
    }

    #[test]
    fn parses_logic_and_arith() {
        let p = parse("AND r1, r2, r3\nXOR r4, r5, r6\nNOT r7, r8\nADD r0, r0, r1\nSUB r2, r3, r4")
            .unwrap();
        assert_eq!(p.instructions().count(), 5);
    }

    #[test]
    fn negative_branch_offset() {
        let p = parse("BR NE, -3").unwrap();
        assert!(matches!(
            &p.items[0],
            Item::Instr {
                instr: SourceInstr::Br {
                    target: BranchTarget::Offset(-3),
                    ..
                },
                ..
            }
        ));
    }

    #[test]
    fn rejects_bad_register() {
        let err = parse("LDI x0, 1").unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::BadRegister(_)));
        let err = parse("CMP r1").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn rejects_bad_flag() {
        let err = parse("BR FROB, 1").unwrap_err();
        assert!(err.to_string().contains("comparison flag"));
    }

    #[test]
    fn rejects_garbage_after_instruction() {
        let err = parse("NOP NOP").unwrap_err();
        // "NOP NOP" parses the first NOP then chokes on the second.
        assert!(err.to_string().contains("end of line"), "{err}");
    }

    #[test]
    fn mnemonics_case_insensitive() {
        let p = parse("ldi r0, 1\nqwait 20").unwrap();
        assert_eq!(p.instructions().count(), 2);
    }

    #[test]
    fn label_then_instruction_on_next_line() {
        let p = parse("loop:\nQWAIT 1\nBR ALWAYS, loop").unwrap();
        assert_eq!(p.items.len(), 3);
    }

    #[test]
    fn split_reg_parses() {
        assert_eq!(split_reg("r12"), Some(('r', 12)));
        assert_eq!(split_reg("S7"), Some(('s', 7)));
        assert_eq!(split_reg("q1"), Some(('q', 1)));
        // "X90" splits but its prefix is not a register-file letter, so
        // register parsers reject it.
        assert_eq!(split_reg("X90"), Some(('x', 90)));
        assert_eq!(split_reg("r"), None);
        assert_eq!(split_reg("r1x"), None);
    }
}
