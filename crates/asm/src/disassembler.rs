//! Binary → assembly text.
//!
//! The disassembler inverts the encoder, resolving quantum opcodes back
//! to their configured names. Its output re-assembles to the identical
//! binary (round-trip property, tested in the crate's property tests).

use eqasm_core::{Instantiation, Instruction, OpTarget};

use crate::encoding::decode_program;
use crate::error::AsmError;

/// Renders one decoded instruction as re-assemblable text.
pub fn format_instruction(instr: &Instruction, inst: &Instantiation) -> String {
    match instr {
        Instruction::Smis { sd, mask } => {
            let qubits: Vec<String> = inst
                .topology()
                .qubits_in_mask(*mask)
                .iter()
                .map(|q| q.index().to_string())
                .collect();
            format!("SMIS {sd}, {{{}}}", qubits.join(", "))
        }
        Instruction::Smit { td, mask } => {
            let pairs: Vec<String> = inst
                .topology()
                .pairs_in_mask(*mask)
                .iter()
                .map(|p| p.to_string())
                .collect();
            format!("SMIT {td}, {{{}}}", pairs.join(", "))
        }
        Instruction::Bundle(b) => {
            let ops: Vec<String> = b
                .ops
                .iter()
                .map(|op| {
                    if op.is_qnop() {
                        "QNOP".to_owned()
                    } else {
                        let name = inst
                            .ops()
                            .by_opcode(op.opcode)
                            .map(|d| d.name().to_owned())
                            .unwrap_or_else(|_| format!("q{:#x}", op.opcode.raw()));
                        match op.target {
                            OpTarget::None => name,
                            t => format!("{name} {t}"),
                        }
                    }
                })
                .collect();
            format!("{}, {}", b.pre_interval, ops.join(" | "))
        }
        other => other.to_string(),
    }
}

/// Disassembles binary words into assembly text, one instruction per
/// line, prefixed with the word address.
///
/// # Errors
///
/// Returns [`AsmError`] when a word cannot be decoded against the
/// instantiation.
///
/// # Examples
///
/// ```
/// use eqasm_asm::{assemble, disassemble, encoding::encode_program};
/// use eqasm_core::Instantiation;
///
/// let inst = Instantiation::paper();
/// let program = assemble("QWAIT 42", &inst)?;
/// let words = encode_program(program.instructions(), &inst)?;
/// let text = disassemble(&words, &inst)?;
/// assert!(text.contains("QWAIT 42"));
/// # Ok::<(), eqasm_asm::AsmError>(())
/// ```
pub fn disassemble(words: &[u32], inst: &Instantiation) -> Result<String, AsmError> {
    let instructions = decode_program(words, inst)?;
    let mut out = String::new();
    for (addr, instr) in instructions.iter().enumerate() {
        out.push_str(&format!("{addr:6}:  {}\n", format_instruction(instr, inst)));
    }
    Ok(out)
}

/// Disassembles to *re-assemblable* source (no address prefixes).
///
/// # Errors
///
/// Returns [`AsmError`] when a word cannot be decoded.
pub fn disassemble_source(words: &[u32], inst: &Instantiation) -> Result<String, AsmError> {
    let instructions = decode_program(words, inst)?;
    let mut out = String::new();
    for instr in &instructions {
        out.push_str(&format_instruction(instr, inst));
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble;
    use crate::encoding::encode_program;

    #[test]
    fn disassembly_reassembles_identically() {
        let inst = Instantiation::paper();
        let src = "\
SMIS S0, {0}
SMIS S2, {2}
SMIS S7, {0, 2}
SMIT T3, {(2, 0)}
QWAIT 10000
0, Y S7
1, X90 S0 | X S2
2, CZ T3
1, MEASZ S7
QWAIT 50
LDI r0, 30
QWAITR r0
STOP";
        let p1 = assemble(src, &inst).unwrap();
        let w1 = encode_program(p1.instructions(), &inst).unwrap();
        let text = disassemble_source(&w1, &inst).unwrap();
        let p2 = assemble(&text, &inst).unwrap();
        let w2 = encode_program(p2.instructions(), &inst).unwrap();
        assert_eq!(
            w1, w2,
            "disassembled source must re-encode identically:\n{text}"
        );
    }

    #[test]
    fn addresses_present_in_listing() {
        let inst = Instantiation::paper();
        let p = assemble("NOP\nNOP\nSTOP", &inst).unwrap();
        let w = encode_program(p.instructions(), &inst).unwrap();
        let text = disassemble(&w, &inst).unwrap();
        assert!(text.contains("0:"));
        assert!(text.contains("2:"));
        assert!(text.contains("STOP"));
    }

    #[test]
    fn bundle_names_resolved() {
        let inst = Instantiation::paper();
        let p = assemble("1, X90 S0 | CZ T1", &inst).unwrap();
        let w = encode_program(p.instructions(), &inst).unwrap();
        let text = disassemble_source(&w, &inst).unwrap();
        assert!(text.contains("X90 s0"));
        assert!(text.contains("CZ t1"));
    }

    #[test]
    fn smis_rendered_as_qubit_list() {
        let inst = Instantiation::paper();
        let p = assemble("SMIS S7, {0, 2}", &inst).unwrap();
        let w = encode_program(p.instructions(), &inst).unwrap();
        let text = disassemble_source(&w, &inst).unwrap();
        assert!(text.contains("SMIS s7, {0, 2}"));
    }
}
