//! Assembler errors with source locations.

use std::error::Error;
use std::fmt;

use eqasm_core::CoreError;

/// An error produced while lexing, parsing, assembling, encoding or
/// decoding eQASM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    line: Option<usize>,
    kind: AsmErrorKind,
}

/// The specific failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AsmErrorKind {
    /// A character the lexer cannot interpret.
    UnexpectedChar(char),
    /// An integer literal that does not parse.
    BadInteger(String),
    /// The parser expected something else.
    Syntax {
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
    },
    /// An unknown instruction mnemonic or quantum operation.
    UnknownMnemonic(String),
    /// A register operand was malformed or out of range.
    BadRegister(String),
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A quantum operation's operand does not match its arity (e.g. a
    /// two-qubit operation with an `Si` register).
    ArityMismatch {
        /// The operation name.
        op: String,
        /// What the operation requires, e.g. "an S register".
        requires: &'static str,
    },
    /// Error bubbled up from the ISA model (bad masks, unknown ops,
    /// immediates out of range, T-register conflicts, …).
    Core(CoreError),
    /// A binary word could not be decoded.
    BadEncoding {
        /// The offending instruction word.
        word: u32,
        /// Why it is invalid.
        reason: String,
    },
    /// The branch target is too far away for the offset field.
    BranchOutOfRange {
        /// The required offset, in instructions.
        offset: i64,
        /// The field width, in bits.
        bits: u32,
    },
}

impl AsmError {
    /// Creates an error at a given 1-based source line.
    pub fn at(line: usize, kind: AsmErrorKind) -> Self {
        AsmError {
            line: Some(line),
            kind,
        }
    }

    /// Creates an error with no line information (binary decode).
    pub fn nowhere(kind: AsmErrorKind) -> Self {
        AsmError { line: None, kind }
    }

    /// The 1-based source line, when known.
    pub fn line(&self) -> Option<usize> {
        self.line
    }

    /// The failure detail.
    pub fn kind(&self) -> &AsmErrorKind {
        &self.kind
    }
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(line) = self.line {
            write!(f, "line {line}: ")?;
        }
        match &self.kind {
            AsmErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            AsmErrorKind::BadInteger(s) => write!(f, "invalid integer literal `{s}`"),
            AsmErrorKind::Syntax { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            AsmErrorKind::UnknownMnemonic(s) => {
                write!(f, "unknown instruction or quantum operation `{s}`")
            }
            AsmErrorKind::BadRegister(s) => write!(f, "invalid register `{s}`"),
            AsmErrorKind::UndefinedLabel(s) => write!(f, "undefined label `{s}`"),
            AsmErrorKind::DuplicateLabel(s) => write!(f, "duplicate label `{s}`"),
            AsmErrorKind::ArityMismatch { op, requires } => {
                write!(f, "operation `{op}` requires {requires}")
            }
            AsmErrorKind::Core(e) => write!(f, "{e}"),
            AsmErrorKind::BadEncoding { word, reason } => {
                write!(f, "cannot decode word {word:#010x}: {reason}")
            }
            AsmErrorKind::BranchOutOfRange { offset, bits } => {
                write!(f, "branch offset {offset} does not fit in {bits} bits")
            }
        }
    }
}

impl Error for AsmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match &self.kind {
            AsmErrorKind::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for AsmError {
    fn from(e: CoreError) -> Self {
        AsmError::nowhere(AsmErrorKind::Core(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line() {
        let e = AsmError::at(7, AsmErrorKind::UnknownMnemonic("FROB".into()));
        let msg = e.to_string();
        assert!(msg.contains("line 7"));
        assert!(msg.contains("FROB"));
        assert_eq!(e.line(), Some(7));
    }

    #[test]
    fn core_error_is_source() {
        let core = CoreError::UnknownOperation { name: "Z".into() };
        let e: AsmError = core.clone().into();
        assert!(e.source().is_some());
        assert_eq!(e.to_string(), core.to_string());
    }

    #[test]
    fn implements_send_sync_error() {
        fn check<E: Error + Send + Sync + 'static>() {}
        check::<AsmError>();
    }
}
