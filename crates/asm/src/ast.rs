//! The parsed (source-level) form of an eQASM program.
//!
//! Unlike [`eqasm_core::Instruction`], the AST still contains symbolic
//! label references, quantum operation *names* (resolved against the
//! compile-time operation configuration during assembly, §3.2) and qubit
//! lists (turned into masks against the chip topology, §3.3.2).

use eqasm_core::{CmpFlag, Gpr, Qubit, SReg, TReg};

/// A branch target: either a symbolic label or an already-resolved
/// instruction offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BranchTarget {
    /// A label to resolve during assembly.
    Label(String),
    /// A raw offset relative to the branch instruction, in instructions.
    Offset(i32),
}

/// The operand of `SMIS`: an explicit qubit list (`{0, 2}`) or a raw
/// mask value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmisArg {
    /// `{q0, q1, …}`.
    Qubits(Vec<Qubit>),
    /// A raw mask immediate.
    Mask(u32),
}

/// The operand of `SMIT`: an explicit list of directed qubit pairs
/// (`{(1, 3), (2, 4)}`), a list of pair addresses, or a raw mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmitArg {
    /// `{(s, t), …}` — pairs of physical qubit addresses.
    Pairs(Vec<(Qubit, Qubit)>),
    /// A raw mask immediate.
    Mask(u32),
}

/// One quantum operation inside a source-level bundle: a configured
/// operation name plus an optional target-register operand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceOp {
    /// The operation name as written (resolved case-insensitively).
    pub name: String,
    /// The target register, if written (`QNOP` has none).
    pub target: Option<SourceTarget>,
}

/// A target-register operand as written in a bundle slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceTarget {
    /// `Si`.
    S(SReg),
    /// `Ti`.
    T(TReg),
}

/// A source-level quantum bundle: `[PI,] op [| op]*` with *any* number
/// of operations (the assembler splits it to the VLIW width, §3.4.2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceBundle {
    /// The explicit pre-interval, or `None` for the default of 1.
    pub pi: Option<u32>,
    /// The operations, in slot order.
    pub ops: Vec<SourceOp>,
}

/// One parsed instruction, still carrying symbolic information.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // operand names mirror Table 1
pub enum SourceInstr {
    Nop,
    Stop,
    Cmp { rs: Gpr, rt: Gpr },
    Br { flag: CmpFlag, target: BranchTarget },
    Fbr { flag: CmpFlag, rd: Gpr },
    Ldi { rd: Gpr, imm: i64 },
    Ldui { rd: Gpr, imm: i64, rs: Gpr },
    Ld { rd: Gpr, rt: Gpr, imm: i64 },
    St { rs: Gpr, rt: Gpr, imm: i64 },
    Fmr { rd: Gpr, qubit: Qubit },
    And { rd: Gpr, rs: Gpr, rt: Gpr },
    Or { rd: Gpr, rs: Gpr, rt: Gpr },
    Xor { rd: Gpr, rs: Gpr, rt: Gpr },
    Not { rd: Gpr, rt: Gpr },
    Add { rd: Gpr, rs: Gpr, rt: Gpr },
    Sub { rd: Gpr, rs: Gpr, rt: Gpr },
    QWait { cycles: i64 },
    QWaitR { rs: Gpr },
    Smis { sd: SReg, arg: SmisArg },
    Smit { td: TReg, arg: SmitArg },
    Bundle(SourceBundle),
}

/// One item of a parsed program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Item {
    /// A label definition (`name:`).
    Label {
        /// The label name.
        name: String,
        /// 1-based source line.
        line: usize,
    },
    /// An instruction.
    Instr {
        /// The parsed instruction.
        instr: SourceInstr,
        /// 1-based source line.
        line: usize,
    },
}

/// A parsed source file: a flat list of labels and instructions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SourceProgram {
    /// Items in source order.
    pub items: Vec<Item>,
}

impl SourceProgram {
    /// Iterates over the instructions (ignoring labels).
    pub fn instructions(&self) -> impl Iterator<Item = &SourceInstr> + '_ {
        self.items.iter().filter_map(|item| match item {
            Item::Instr { instr, .. } => Some(instr),
            Item::Label { .. } => None,
        })
    }
}
