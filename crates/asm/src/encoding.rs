//! The 32-bit binary instruction formats of the paper's instantiation
//! (Fig. 8).
//!
//! Two formats share the 32-bit word: the *single* format (bit 31 = 0)
//! holding one auxiliary classical or quantum non-bundle instruction, and
//! the *bundle* format (bit 31 = 1) holding two quantum operations plus a
//! 3-bit pre-interval:
//!
//! ```text
//!  31 30      22 21  17 16       8 7    3 2  0
//! ┌──┬──────────┬──────┬──────────┬──────┬────┐
//! │ 1│ q opcode │ S/T  │ q opcode │ S/T  │ PI │   bundle format
//! └──┴──────────┴──────┴──────────┴──────┴────┘
//! ```
//!
//! The quantum instruction layouts (`SMIS`, `SMIT`, `QWAIT`, `QWAITR`)
//! follow Fig. 8 exactly; the classical layouts are
//! instantiation-defined (the paper leaves them to the designer) and are
//! documented per opcode below.

use eqasm_core::{
    Bundle, BundleOp, CmpFlag, Gpr, Instantiation, Instruction, OpArity, OpTarget, QOpcode, Qubit,
    SReg, TReg,
};

use crate::error::{AsmError, AsmErrorKind};

/// Classical (single-format) opcode assignments of this instantiation.
pub mod opcodes {
    /// `NOP`.
    pub const NOP: u32 = 0;
    /// `STOP` (instantiation-specific halt).
    pub const STOP: u32 = 1;
    /// `CMP Rs, Rt`.
    pub const CMP: u32 = 2;
    /// `BR <flag>, Offset`.
    pub const BR: u32 = 3;
    /// `FBR <flag>, Rd`.
    pub const FBR: u32 = 4;
    /// `LDI Rd, Imm`.
    pub const LDI: u32 = 5;
    /// `LDUI Rd, Imm, Rs`.
    pub const LDUI: u32 = 6;
    /// `LD Rd, Rt(Imm)`.
    pub const LD: u32 = 7;
    /// `ST Rs, Rt(Imm)`.
    pub const ST: u32 = 8;
    /// `FMR Rd, Qi`.
    pub const FMR: u32 = 9;
    /// `AND Rd, Rs, Rt`.
    pub const AND: u32 = 10;
    /// `OR Rd, Rs, Rt`.
    pub const OR: u32 = 11;
    /// `XOR Rd, Rs, Rt`.
    pub const XOR: u32 = 12;
    /// `NOT Rd, Rt`.
    pub const NOT: u32 = 13;
    /// `ADD Rd, Rs, Rt`.
    pub const ADD: u32 = 14;
    /// `SUB Rd, Rs, Rt`.
    pub const SUB: u32 = 15;
    /// `QWAIT Imm`.
    pub const QWAIT: u32 = 16;
    /// `QWAITR Rs`.
    pub const QWAITR: u32 = 17;
    /// `SMIS Sd, Imm`.
    pub const SMIS: u32 = 18;
    /// `SMIT Td, Imm`.
    pub const SMIT: u32 = 19;
}

/// Width of the `SMIS` qubit mask field (Fig. 8: 7 bits).
pub const SMIS_MASK_BITS: u32 = 7;
/// Width of the `SMIT` qubit-pair mask field (Fig. 8: 16 bits).
pub const SMIT_MASK_BITS: u32 = 16;

fn field(value: u32, shift: u32, bits: u32) -> u32 {
    debug_assert!(value < (1 << bits), "field overflow");
    (value & ((1 << bits) - 1)) << shift
}

fn extract(word: u32, shift: u32, bits: u32) -> u32 {
    (word >> shift) & ((1 << bits) - 1)
}

fn sign_extend(value: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((value << shift) as i32) >> shift
}

fn to_signed_field(value: i32, bits: u32, what: &'static str) -> Result<u32, AsmError> {
    let min = -(1i64 << (bits - 1));
    let max = (1i64 << (bits - 1)) - 1;
    if (value as i64) < min || (value as i64) > max {
        return Err(AsmError::nowhere(AsmErrorKind::Core(
            eqasm_core::CoreError::ImmediateOutOfRange {
                field: what,
                value: value as i64,
                bits,
            },
        )));
    }
    Ok((value as u32) & ((1 << bits) - 1))
}

fn to_unsigned_field(value: u32, bits: u32, what: &'static str) -> Result<u32, AsmError> {
    if bits < 32 && value >= (1 << bits) {
        return Err(AsmError::nowhere(AsmErrorKind::Core(
            eqasm_core::CoreError::ImmediateOutOfRange {
                field: what,
                value: value as i64,
                bits,
            },
        )));
    }
    Ok(value)
}

fn classical(op: u32) -> u32 {
    field(op, 25, 6)
}

/// Encodes one instruction into its 32-bit word.
///
/// # Errors
///
/// Returns [`AsmError`] when a field does not fit (a mask wider than the
/// format allows, a bundle with more operations than the two slots of
/// this 32-bit format, out-of-range immediates).
pub fn encode(instr: &Instruction, inst: &Instantiation) -> Result<u32, AsmError> {
    use opcodes::*;
    let word = match instr {
        Instruction::Nop => classical(NOP),
        Instruction::Stop => classical(STOP),
        Instruction::Cmp { rs, rt } => {
            classical(CMP) | field(rs.raw() as u32, 20, 5) | field(rt.raw() as u32, 15, 5)
        }
        Instruction::Br { flag, offset } => {
            classical(BR)
                | field(flag.encode() as u32, 21, 4)
                | to_signed_field(*offset, 21, "BR offset")?
        }
        Instruction::Fbr { flag, rd } => {
            classical(FBR) | field(flag.encode() as u32, 21, 4) | field(rd.raw() as u32, 16, 5)
        }
        Instruction::Ldi { rd, imm } => {
            classical(LDI) | field(rd.raw() as u32, 20, 5) | to_signed_field(*imm, 20, "LDI imm")?
        }
        Instruction::Ldui { rd, imm, rs } => {
            classical(LDUI)
                | field(rd.raw() as u32, 20, 5)
                | field(rs.raw() as u32, 15, 5)
                | to_unsigned_field(*imm as u32, 15, "LDUI imm")?
        }
        Instruction::Ld { rd, rt, imm } => {
            classical(LD)
                | field(rd.raw() as u32, 20, 5)
                | field(rt.raw() as u32, 15, 5)
                | to_signed_field(*imm, 15, "LD offset")?
        }
        Instruction::St { rs, rt, imm } => {
            classical(ST)
                | field(rs.raw() as u32, 20, 5)
                | field(rt.raw() as u32, 15, 5)
                | to_signed_field(*imm, 15, "ST offset")?
        }
        Instruction::Fmr { rd, qubit } => {
            classical(FMR) | field(rd.raw() as u32, 20, 5) | field(qubit.raw() as u32, 12, 8)
        }
        Instruction::And { rd, rs, rt } => {
            classical(AND)
                | field(rd.raw() as u32, 20, 5)
                | field(rs.raw() as u32, 15, 5)
                | field(rt.raw() as u32, 10, 5)
        }
        Instruction::Or { rd, rs, rt } => {
            classical(OR)
                | field(rd.raw() as u32, 20, 5)
                | field(rs.raw() as u32, 15, 5)
                | field(rt.raw() as u32, 10, 5)
        }
        Instruction::Xor { rd, rs, rt } => {
            classical(XOR)
                | field(rd.raw() as u32, 20, 5)
                | field(rs.raw() as u32, 15, 5)
                | field(rt.raw() as u32, 10, 5)
        }
        Instruction::Not { rd, rt } => {
            classical(NOT) | field(rd.raw() as u32, 20, 5) | field(rt.raw() as u32, 15, 5)
        }
        Instruction::Add { rd, rs, rt } => {
            classical(ADD)
                | field(rd.raw() as u32, 20, 5)
                | field(rs.raw() as u32, 15, 5)
                | field(rt.raw() as u32, 10, 5)
        }
        Instruction::Sub { rd, rs, rt } => {
            classical(SUB)
                | field(rd.raw() as u32, 20, 5)
                | field(rs.raw() as u32, 15, 5)
                | field(rt.raw() as u32, 10, 5)
        }
        Instruction::QWait { cycles } => {
            classical(QWAIT) | to_unsigned_field(*cycles, 20, "QWAIT imm")?
        }
        Instruction::QWaitR { rs } => classical(QWAITR) | field(rs.raw() as u32, 15, 5),
        Instruction::Smis { sd, mask } => {
            classical(SMIS)
                | field(sd.raw() as u32, 20, 5)
                | to_unsigned_field(*mask, SMIS_MASK_BITS, "SMIS mask")?
        }
        Instruction::Smit { td, mask } => {
            classical(SMIT)
                | field(td.raw() as u32, 20, 5)
                | to_unsigned_field(*mask, SMIT_MASK_BITS, "SMIT mask")?
        }
        Instruction::Bundle(b) => return encode_bundle(b, inst),
    };
    Ok(word)
}

fn encode_bundle(b: &Bundle, inst: &Instantiation) -> Result<u32, AsmError> {
    if b.ops.len() > 2 {
        return Err(AsmError::nowhere(AsmErrorKind::BadEncoding {
            word: 0,
            reason: format!(
                "the 32-bit bundle format holds 2 operations, got {}",
                b.ops.len()
            ),
        }));
    }
    let pi = to_unsigned_field(b.pre_interval as u32, inst.params().pi_bits, "bundle PI")?;
    let slot = |op: Option<&BundleOp>| -> Result<(u32, u32), AsmError> {
        match op {
            None => Ok((0, 0)),
            Some(op) => {
                let opcode = to_unsigned_field(op.opcode.raw() as u32, 9, "q opcode")?;
                let reg = match op.target {
                    OpTarget::None => 0,
                    OpTarget::S(s) => s.raw() as u32,
                    OpTarget::T(t) => t.raw() as u32,
                };
                Ok((opcode, reg))
            }
        }
    };
    let (op0, reg0) = slot(b.ops.first())?;
    let (op1, reg1) = slot(b.ops.get(1))?;
    Ok((1 << 31)
        | field(op0, 22, 9)
        | field(reg0, 17, 5)
        | field(op1, 8, 9)
        | field(reg1, 3, 5)
        | field(pi, 0, 3))
}

/// Decodes one 32-bit word.
///
/// Decoding bundles needs the operation configuration to know whether a
/// slot's register field names an `Si` or `Ti` register.
///
/// # Errors
///
/// Returns [`AsmError`] on unknown classical opcodes, unknown quantum
/// opcodes or invalid flag encodings.
pub fn decode(word: u32, inst: &Instantiation) -> Result<Instruction, AsmError> {
    if word >> 31 == 1 {
        return decode_bundle(word, inst);
    }
    use opcodes::*;
    let op = extract(word, 25, 6);
    let gpr = |shift: u32| Gpr::new(extract(word, shift, 5) as u8);
    let flag = || {
        CmpFlag::decode(extract(word, 21, 4) as u8).ok_or_else(|| {
            AsmError::nowhere(AsmErrorKind::BadEncoding {
                word,
                reason: "invalid comparison-flag encoding".to_owned(),
            })
        })
    };
    let instr = match op {
        NOP => Instruction::Nop,
        STOP => Instruction::Stop,
        CMP => Instruction::Cmp {
            rs: gpr(20),
            rt: gpr(15),
        },
        BR => Instruction::Br {
            flag: flag()?,
            offset: sign_extend(extract(word, 0, 21), 21),
        },
        FBR => Instruction::Fbr {
            flag: flag()?,
            rd: gpr(16),
        },
        LDI => Instruction::Ldi {
            rd: gpr(20),
            imm: sign_extend(extract(word, 0, 20), 20),
        },
        LDUI => Instruction::Ldui {
            rd: gpr(20),
            imm: extract(word, 0, 15) as u16,
            rs: gpr(15),
        },
        LD => Instruction::Ld {
            rd: gpr(20),
            rt: gpr(15),
            imm: sign_extend(extract(word, 0, 15), 15),
        },
        ST => Instruction::St {
            rs: gpr(20),
            rt: gpr(15),
            imm: sign_extend(extract(word, 0, 15), 15),
        },
        FMR => Instruction::Fmr {
            rd: gpr(20),
            qubit: Qubit::new(extract(word, 12, 8) as u8),
        },
        AND => Instruction::And {
            rd: gpr(20),
            rs: gpr(15),
            rt: gpr(10),
        },
        OR => Instruction::Or {
            rd: gpr(20),
            rs: gpr(15),
            rt: gpr(10),
        },
        XOR => Instruction::Xor {
            rd: gpr(20),
            rs: gpr(15),
            rt: gpr(10),
        },
        NOT => Instruction::Not {
            rd: gpr(20),
            rt: gpr(15),
        },
        ADD => Instruction::Add {
            rd: gpr(20),
            rs: gpr(15),
            rt: gpr(10),
        },
        SUB => Instruction::Sub {
            rd: gpr(20),
            rs: gpr(15),
            rt: gpr(10),
        },
        QWAIT => Instruction::QWait {
            cycles: extract(word, 0, 20),
        },
        QWAITR => Instruction::QWaitR { rs: gpr(15) },
        SMIS => Instruction::Smis {
            sd: SReg::new(extract(word, 20, 5) as u8),
            mask: extract(word, 0, SMIS_MASK_BITS),
        },
        SMIT => Instruction::Smit {
            td: TReg::new(extract(word, 20, 5) as u8),
            mask: extract(word, 0, SMIT_MASK_BITS),
        },
        other => {
            return Err(AsmError::nowhere(AsmErrorKind::BadEncoding {
                word,
                reason: format!("unknown classical opcode {other}"),
            }))
        }
    };
    Ok(instr)
}

fn decode_bundle(word: u32, inst: &Instantiation) -> Result<Instruction, AsmError> {
    let pi = extract(word, 0, 3) as u8;
    let mut ops = Vec::with_capacity(2);
    for (op_shift, reg_shift) in [(22u32, 17u32), (8, 3)] {
        let opcode = extract(word, op_shift, 9) as u16;
        if opcode == 0 {
            ops.push(BundleOp::QNOP);
            continue;
        }
        let def = inst.ops().by_opcode(QOpcode::new(opcode)).map_err(|_| {
            AsmError::nowhere(AsmErrorKind::BadEncoding {
                word,
                reason: format!("unknown quantum opcode {opcode:#x}"),
            })
        })?;
        let reg = extract(word, reg_shift, 5) as u8;
        let target = match def.arity() {
            OpArity::SingleQubit => OpTarget::S(SReg::new(reg)),
            OpArity::TwoQubit => OpTarget::T(TReg::new(reg)),
        };
        ops.push(BundleOp {
            opcode: QOpcode::new(opcode),
            target,
        });
    }
    Ok(Instruction::Bundle(Bundle::with_pre_interval(pi, ops)))
}

/// Encodes a whole program.
///
/// # Errors
///
/// See [`encode`].
pub fn encode_program(
    instructions: &[Instruction],
    inst: &Instantiation,
) -> Result<Vec<u32>, AsmError> {
    instructions.iter().map(|i| encode(i, inst)).collect()
}

/// Decodes a whole program.
///
/// # Errors
///
/// See [`decode`].
pub fn decode_program(words: &[u32], inst: &Instantiation) -> Result<Vec<Instruction>, AsmError> {
    words.iter().map(|&w| decode(w, inst)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqasm_core::Instantiation;

    fn inst() -> Instantiation {
        Instantiation::paper()
    }

    fn roundtrip(i: Instruction) {
        let inst = inst();
        let word = encode(&i, &inst).unwrap();
        let back = decode(word, &inst).unwrap();
        assert_eq!(back, i, "word {word:#010x}");
    }

    #[test]
    fn single_format_has_zero_msb() {
        let inst = inst();
        let word = encode(&Instruction::QWait { cycles: 100 }, &inst).unwrap();
        assert_eq!(word >> 31, 0);
    }

    #[test]
    fn bundle_format_has_one_msb() {
        let inst = inst();
        let x = inst.ops().by_name("X").unwrap().opcode();
        let b = Instruction::Bundle(Bundle::with_pre_interval(
            1,
            vec![BundleOp::single(x, SReg::new(0)), BundleOp::QNOP],
        ));
        let word = encode(&b, &inst).unwrap();
        assert_eq!(word >> 31, 1);
    }

    #[test]
    fn classical_roundtrips() {
        roundtrip(Instruction::Nop);
        roundtrip(Instruction::Stop);
        roundtrip(Instruction::Cmp {
            rs: Gpr::new(1),
            rt: Gpr::new(2),
        });
        roundtrip(Instruction::Br {
            flag: CmpFlag::Eq,
            offset: -5,
        });
        roundtrip(Instruction::Br {
            flag: CmpFlag::Always,
            offset: 1000,
        });
        roundtrip(Instruction::Fbr {
            flag: CmpFlag::Gtu,
            rd: Gpr::new(31),
        });
        roundtrip(Instruction::Ldi {
            rd: Gpr::new(0),
            imm: -524288,
        });
        roundtrip(Instruction::Ldi {
            rd: Gpr::new(7),
            imm: 524287,
        });
        roundtrip(Instruction::Ldui {
            rd: Gpr::new(1),
            imm: 32767,
            rs: Gpr::new(1),
        });
        roundtrip(Instruction::Ld {
            rd: Gpr::new(3),
            rt: Gpr::new(4),
            imm: -16384,
        });
        roundtrip(Instruction::St {
            rs: Gpr::new(3),
            rt: Gpr::new(4),
            imm: 16383,
        });
        roundtrip(Instruction::Fmr {
            rd: Gpr::new(9),
            qubit: Qubit::new(6),
        });
        roundtrip(Instruction::And {
            rd: Gpr::new(1),
            rs: Gpr::new(2),
            rt: Gpr::new(3),
        });
        roundtrip(Instruction::Not {
            rd: Gpr::new(1),
            rt: Gpr::new(2),
        });
        roundtrip(Instruction::Add {
            rd: Gpr::new(30),
            rs: Gpr::new(29),
            rt: Gpr::new(28),
        });
        roundtrip(Instruction::Sub {
            rd: Gpr::new(0),
            rs: Gpr::new(0),
            rt: Gpr::new(0),
        });
        roundtrip(Instruction::QWait { cycles: 1048575 });
        roundtrip(Instruction::QWaitR { rs: Gpr::new(17) });
    }

    #[test]
    fn quantum_roundtrips() {
        let inst = inst();
        roundtrip(Instruction::Smis {
            sd: SReg::new(31),
            mask: 0b1111111,
        });
        roundtrip(Instruction::Smit {
            td: TReg::new(5),
            mask: 0x8421,
        });
        let x = inst.ops().by_name("X").unwrap().opcode();
        let cz = inst.ops().by_name("CZ").unwrap().opcode();
        roundtrip(Instruction::Bundle(Bundle::with_pre_interval(
            7,
            vec![
                BundleOp::single(x, SReg::new(31)),
                BundleOp::two(cz, TReg::new(30)),
            ],
        )));
        roundtrip(Instruction::Bundle(Bundle::with_pre_interval(
            0,
            vec![BundleOp::QNOP, BundleOp::QNOP],
        )));
    }

    #[test]
    fn smis_field_positions_match_fig8() {
        // Fig. 8: 0 | opcode(6) | Sd(5) | pad(13) | mask(7).
        let inst = inst();
        let word = encode(
            &Instruction::Smis {
                sd: SReg::new(0b10101),
                mask: 0b1010101,
            },
            &inst,
        )
        .unwrap();
        assert_eq!(word >> 31, 0);
        assert_eq!((word >> 25) & 0x3f, opcodes::SMIS);
        assert_eq!((word >> 20) & 0x1f, 0b10101);
        assert_eq!(word & 0x7f, 0b1010101);
    }

    #[test]
    fn qwait_field_positions_match_fig8() {
        // Fig. 8: 0 | opcode(6) | pad(5) | imm(20).
        let inst = inst();
        let word = encode(&Instruction::QWait { cycles: 0xabcde }, &inst).unwrap();
        assert_eq!((word >> 25) & 0x3f, opcodes::QWAIT);
        assert_eq!(word & 0xfffff, 0xabcde);
    }

    #[test]
    fn bundle_field_positions_match_fig8() {
        // Fig. 8: 1 | q opcode(9) | S/T(5) | q opcode(9) | S/T(5) | PI(3).
        let inst = inst();
        let x = inst.ops().by_name("X").unwrap().opcode();
        let y = inst.ops().by_name("Y").unwrap().opcode();
        let word = encode(
            &Instruction::Bundle(Bundle::with_pre_interval(
                5,
                vec![
                    BundleOp::single(x, SReg::new(3)),
                    BundleOp::single(y, SReg::new(9)),
                ],
            )),
            &inst,
        )
        .unwrap();
        assert_eq!(word & 0b111, 5);
        assert_eq!((word >> 3) & 0x1f, 9);
        assert_eq!((word >> 8) & 0x1ff, y.raw() as u32);
        assert_eq!((word >> 17) & 0x1f, 3);
        assert_eq!((word >> 22) & 0x1ff, x.raw() as u32);
    }

    #[test]
    fn mask_overflow_rejected() {
        let inst = inst();
        let err = encode(
            &Instruction::Smis {
                sd: SReg::new(0),
                mask: 1 << 7,
            },
            &inst,
        )
        .unwrap_err();
        assert!(err.to_string().contains("SMIS mask"));
        let err = encode(
            &Instruction::Smit {
                td: TReg::new(0),
                mask: 1 << 16,
            },
            &inst,
        )
        .unwrap_err();
        assert!(err.to_string().contains("SMIT mask"));
    }

    #[test]
    fn oversized_bundle_rejected() {
        let inst = inst();
        let x = inst.ops().by_name("X").unwrap().opcode();
        let b = Instruction::Bundle(Bundle::with_pre_interval(
            1,
            vec![
                BundleOp::single(x, SReg::new(0)),
                BundleOp::single(x, SReg::new(1)),
                BundleOp::single(x, SReg::new(2)),
            ],
        ));
        assert!(encode(&b, &inst).is_err());
    }

    #[test]
    fn unknown_opcode_decode_fails() {
        let inst = inst();
        // Classical opcode 63 is unused.
        let err = decode(63 << 25, &inst).unwrap_err();
        assert!(err.to_string().contains("unknown classical opcode"));
        // Bundle with unconfigured q opcode 500.
        let word = (1u32 << 31) | (500 << 22);
        let err = decode(word, &inst).unwrap_err();
        assert!(err.to_string().contains("unknown quantum opcode"));
    }

    #[test]
    fn program_roundtrip() {
        let inst = inst();
        let program = crate::assemble(
            "SMIS S0, {0}\nSMIS S7, {0, 2}\nQWAIT 10000\n0, Y S7\n1, X90 S0 | X S2\nMEASZ S7\nSTOP",
            &inst,
        )
        .unwrap();
        let words = encode_program(program.instructions(), &inst).unwrap();
        assert_eq!(words.len(), program.len());
        let back = decode_program(&words, &inst).unwrap();
        assert_eq!(back.as_slice(), program.instructions());
    }
}
