//! The eQASM assembly tokenizer.
//!
//! The surface syntax follows the paper's listings: `#` comments, one
//! instruction per line, `|` separating bundle slots, `{…}` qubit and
//! qubit-pair lists, `label:` definitions.

use crate::error::{AsmError, AsmErrorKind};

/// One token of assembly source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier: mnemonic, operation name, register or label.
    Ident(String),
    /// An integer literal (decimal or `0x…`; sign handled by the parser).
    Int(i64),
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `|`
    Pipe,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `-`
    Minus,
    /// End of line (newlines are significant — one instruction per line).
    Newline,
}

impl Token {
    /// Human-readable description for diagnostics.
    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("`{s}`"),
            Token::Int(v) => format!("`{v}`"),
            Token::Comma => "`,`".to_owned(),
            Token::Colon => "`:`".to_owned(),
            Token::Pipe => "`|`".to_owned(),
            Token::LBrace => "`{`".to_owned(),
            Token::RBrace => "`}`".to_owned(),
            Token::LParen => "`(`".to_owned(),
            Token::RParen => "`)`".to_owned(),
            Token::Minus => "`-`".to_owned(),
            Token::Newline => "end of line".to_owned(),
        }
    }
}

/// A token tagged with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line number.
    pub line: usize,
}

/// Tokenizes assembly source.
///
/// # Errors
///
/// Returns [`AsmError`] on characters outside the language or malformed
/// integer literals.
///
/// # Examples
///
/// ```
/// use eqasm_asm::lexer::{lex, Token};
///
/// let tokens = lex("LDI r0, 1").unwrap();
/// assert_eq!(tokens[0].token, Token::Ident("LDI".into()));
/// assert_eq!(tokens[2].token, Token::Comma);
/// ```
pub fn lex(source: &str) -> Result<Vec<Spanned>, AsmError> {
    let mut out = Vec::new();
    for (line_idx, line) in source.lines().enumerate() {
        let line_no = line_idx + 1;
        let code = match line.find('#') {
            Some(pos) => &line[..pos],
            None => line,
        };
        let mut chars = code.char_indices().peekable();
        let mut emitted = false;
        while let Some(&(start, c)) = chars.peek() {
            match c {
                ' ' | '\t' | '\r' => {
                    chars.next();
                }
                ',' => {
                    chars.next();
                    out.push(Spanned {
                        token: Token::Comma,
                        line: line_no,
                    });
                    emitted = true;
                }
                ':' => {
                    chars.next();
                    out.push(Spanned {
                        token: Token::Colon,
                        line: line_no,
                    });
                    emitted = true;
                }
                '|' => {
                    chars.next();
                    out.push(Spanned {
                        token: Token::Pipe,
                        line: line_no,
                    });
                    emitted = true;
                }
                '{' => {
                    chars.next();
                    out.push(Spanned {
                        token: Token::LBrace,
                        line: line_no,
                    });
                    emitted = true;
                }
                '}' => {
                    chars.next();
                    out.push(Spanned {
                        token: Token::RBrace,
                        line: line_no,
                    });
                    emitted = true;
                }
                '(' => {
                    chars.next();
                    out.push(Spanned {
                        token: Token::LParen,
                        line: line_no,
                    });
                    emitted = true;
                }
                ')' => {
                    chars.next();
                    out.push(Spanned {
                        token: Token::RParen,
                        line: line_no,
                    });
                    emitted = true;
                }
                '-' => {
                    chars.next();
                    out.push(Spanned {
                        token: Token::Minus,
                        line: line_no,
                    });
                    emitted = true;
                }
                '0'..='9' => {
                    let mut end = start;
                    while let Some(&(i, d)) = chars.peek() {
                        if d.is_ascii_alphanumeric() || d == '_' {
                            end = i + d.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let text = &code[start..end];
                    let value = parse_int(text).ok_or_else(|| {
                        AsmError::at(line_no, AsmErrorKind::BadInteger(text.to_owned()))
                    })?;
                    out.push(Spanned {
                        token: Token::Int(value),
                        line: line_no,
                    });
                    emitted = true;
                }
                c if c.is_ascii_alphabetic() || c == '_' || c == '.' => {
                    let mut end = start;
                    while let Some(&(i, d)) = chars.peek() {
                        if d.is_ascii_alphanumeric() || d == '_' || d == '.' {
                            end = i + d.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push(Spanned {
                        token: Token::Ident(code[start..end].to_owned()),
                        line: line_no,
                    });
                    emitted = true;
                }
                other => {
                    return Err(AsmError::at(line_no, AsmErrorKind::UnexpectedChar(other)));
                }
            }
        }
        if emitted {
            out.push(Spanned {
                token: Token::Newline,
                line: line_no,
            });
        }
    }
    Ok(out)
}

fn parse_int(text: &str) -> Option<i64> {
    let clean = text.replace('_', "");
    if let Some(hex) = clean
        .strip_prefix("0x")
        .or_else(|| clean.strip_prefix("0X"))
    {
        i64::from_str_radix(hex, 16).ok()
    } else if let Some(bin) = clean
        .strip_prefix("0b")
        .or_else(|| clean.strip_prefix("0B"))
    {
        i64::from_str_radix(bin, 2).ok()
    } else {
        clean.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_classical_instruction() {
        assert_eq!(
            toks("LDI r0, 1"),
            vec![
                Token::Ident("LDI".into()),
                Token::Ident("r0".into()),
                Token::Comma,
                Token::Int(1),
                Token::Newline
            ]
        );
    }

    #[test]
    fn comments_are_stripped() {
        assert_eq!(
            toks("QWAIT 0 # Equivalent to NOP"),
            vec![Token::Ident("QWAIT".into()), Token::Int(0), Token::Newline]
        );
        assert!(toks("# whole line comment").is_empty());
    }

    #[test]
    fn bundle_tokens() {
        assert_eq!(
            toks("1, X90 S0 | X S2"),
            vec![
                Token::Int(1),
                Token::Comma,
                Token::Ident("X90".into()),
                Token::Ident("S0".into()),
                Token::Pipe,
                Token::Ident("X".into()),
                Token::Ident("S2".into()),
                Token::Newline
            ]
        );
    }

    #[test]
    fn smit_pair_list() {
        assert_eq!(
            toks("SMIT T3, {(1, 3), (2, 4)}"),
            vec![
                Token::Ident("SMIT".into()),
                Token::Ident("T3".into()),
                Token::Comma,
                Token::LBrace,
                Token::LParen,
                Token::Int(1),
                Token::Comma,
                Token::Int(3),
                Token::RParen,
                Token::Comma,
                Token::LParen,
                Token::Int(2),
                Token::Comma,
                Token::Int(4),
                Token::RParen,
                Token::RBrace,
                Token::Newline
            ]
        );
    }

    #[test]
    fn labels_and_negative_numbers() {
        assert_eq!(
            toks("ne_path:\nBR ALWAYS, -2"),
            vec![
                Token::Ident("ne_path".into()),
                Token::Colon,
                Token::Newline,
                Token::Ident("BR".into()),
                Token::Ident("ALWAYS".into()),
                Token::Comma,
                Token::Minus,
                Token::Int(2),
                Token::Newline
            ]
        );
    }

    #[test]
    fn hex_and_binary_literals() {
        assert_eq!(
            toks("QWAIT 0x10"),
            vec![Token::Ident("QWAIT".into()), Token::Int(16), Token::Newline]
        );
        assert_eq!(
            toks("QWAIT 0b101"),
            vec![Token::Ident("QWAIT".into()), Token::Int(5), Token::Newline]
        );
    }

    #[test]
    fn empty_lines_produce_no_tokens() {
        assert!(toks("\n\n   \n").is_empty());
    }

    #[test]
    fn bad_integer_is_an_error() {
        let err = lex("QWAIT 0xzz").unwrap_err();
        assert!(err.to_string().contains("invalid integer"));
        assert_eq!(err.line(), Some(1));
    }

    #[test]
    fn unexpected_character() {
        let err = lex("LDI r0, $1").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn lines_tracked_correctly() {
        let spanned = lex("NOP\nNOP\nNOP").unwrap();
        let lines: Vec<usize> = spanned.iter().map(|s| s.line).collect();
        assert_eq!(lines, vec![1, 1, 2, 2, 3, 3]);
    }
}
