//! The two-pass assembler: [`SourceProgram`] → executable [`Program`].
//!
//! The assembler performs the duties §3–4 of the paper assign to it:
//!
//! * resolve quantum operation names against the compile-time operation
//!   configuration (§3.2);
//! * translate qubit lists and qubit-pair lists into the
//!   instantiation's mask format, rejecting invalid two-qubit target
//!   register values — two selected pairs sharing a qubit (§4.3);
//! * split long quantum bundles into consecutive bundle instructions of
//!   the VLIW width, with PI = 0 continuations, padding the last word
//!   with `QNOP` (§3.4.2);
//! * resolve labels to branch offsets;
//! * range-check every immediate against the instantiation's field
//!   widths.

use std::collections::BTreeMap;

use eqasm_core::{Bundle, BundleOp, CoreError, Instantiation, Instruction, OpArity, Qubit};

use crate::ast::{
    BranchTarget, Item, SmisArg, SmitArg, SourceBundle, SourceInstr, SourceProgram, SourceTarget,
};
use crate::error::{AsmError, AsmErrorKind};
use crate::parser::parse;

/// An assembled eQASM program: executable instructions plus symbol and
/// source-line metadata.
///
/// # Examples
///
/// ```
/// use eqasm_asm::Assembler;
/// use eqasm_core::Instantiation;
///
/// let inst = Instantiation::paper();
/// let asm = Assembler::new(&inst);
/// let program = asm.assemble("SMIS S7, {0, 1}\nY S7")?;
/// assert_eq!(program.len(), 2);
/// # Ok::<(), eqasm_asm::AsmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    instructions: Vec<Instruction>,
    labels: BTreeMap<String, usize>,
    source_lines: Vec<usize>,
}

impl Program {
    /// Wraps compiler-generated instructions (no labels, no source map).
    pub fn from_instructions(instructions: Vec<Instruction>) -> Self {
        let source_lines = vec![0; instructions.len()];
        Program {
            instructions,
            labels: BTreeMap::new(),
            source_lines,
        }
    }

    /// The executable instructions.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instruction words.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` for an empty program.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The address of a label, if defined.
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }

    /// All labels with their addresses.
    pub fn labels(&self) -> impl Iterator<Item = (&str, usize)> + '_ {
        self.labels.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The 1-based source line an instruction came from (0 when
    /// synthesised).
    pub fn source_line(&self, addr: usize) -> Option<usize> {
        self.source_lines.get(addr).copied()
    }
}

impl std::ops::Index<usize> for Program {
    type Output = Instruction;
    fn index(&self, addr: usize) -> &Instruction {
        &self.instructions[addr]
    }
}

/// The eQASM assembler for one instantiation.
///
/// Holds the chip topology, architecture parameters and quantum
/// operation configuration the source is assembled against.
#[derive(Debug, Clone, Copy)]
pub struct Assembler<'a> {
    inst: &'a Instantiation,
}

impl<'a> Assembler<'a> {
    /// Creates an assembler for the given instantiation.
    pub fn new(inst: &'a Instantiation) -> Self {
        Assembler { inst }
    }

    /// Parses and assembles source text.
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] on any lexical, syntactic or semantic
    /// problem; the error carries the offending source line.
    pub fn assemble(&self, source: &str) -> Result<Program, AsmError> {
        let ast = parse(source)?;
        self.assemble_ast(&ast)
    }

    /// Assembles an already-parsed program.
    ///
    /// # Errors
    ///
    /// Same as [`Assembler::assemble`].
    pub fn assemble_ast(&self, ast: &SourceProgram) -> Result<Program, AsmError> {
        // Pass 1: instruction addresses (bundles may expand to several
        // words) and label addresses.
        let mut labels: BTreeMap<String, usize> = BTreeMap::new();
        let mut addr = 0usize;
        for item in &ast.items {
            match item {
                Item::Label { name, line } => {
                    if labels.insert(name.clone(), addr).is_some() {
                        return Err(AsmError::at(
                            *line,
                            AsmErrorKind::DuplicateLabel(name.clone()),
                        ));
                    }
                }
                Item::Instr { instr, line } => {
                    addr += self.word_count(instr, *line)?;
                }
            }
        }

        // Pass 2: emit.
        let mut instructions = Vec::with_capacity(addr);
        let mut source_lines = Vec::with_capacity(addr);
        for item in &ast.items {
            if let Item::Instr { instr, line } = item {
                let here = instructions.len();
                let emitted = self.emit(instr, here, &labels, *line)?;
                for i in emitted {
                    instructions.push(i);
                    source_lines.push(*line);
                }
            }
        }
        Ok(Program {
            instructions,
            labels,
            source_lines,
        })
    }

    fn word_count(&self, instr: &SourceInstr, line: usize) -> Result<usize, AsmError> {
        Ok(match instr {
            SourceInstr::Bundle(b) => {
                let w = self.inst.params().vliw_width;
                if b.ops.is_empty() {
                    return Err(AsmError::at(
                        line,
                        AsmErrorKind::Syntax {
                            expected: "at least one quantum operation".to_owned(),
                            found: "an empty bundle".to_owned(),
                        },
                    ));
                }
                b.ops.len().div_ceil(w)
            }
            _ => 1,
        })
    }

    fn core_err(line: usize, e: CoreError) -> AsmError {
        AsmError::at(line, AsmErrorKind::Core(e))
    }

    fn check_signed(
        &self,
        line: usize,
        field: &'static str,
        value: i64,
        bits: u32,
    ) -> Result<i32, AsmError> {
        let min = -(1i64 << (bits - 1));
        let max = (1i64 << (bits - 1)) - 1;
        if value < min || value > max {
            return Err(Self::core_err(
                line,
                CoreError::ImmediateOutOfRange { field, value, bits },
            ));
        }
        Ok(value as i32)
    }

    fn check_unsigned(
        &self,
        line: usize,
        field: &'static str,
        value: i64,
        bits: u32,
    ) -> Result<u32, AsmError> {
        let max = (1i64 << bits) - 1;
        if value < 0 || value > max {
            return Err(Self::core_err(
                line,
                CoreError::ImmediateOutOfRange { field, value, bits },
            ));
        }
        Ok(value as u32)
    }

    fn emit(
        &self,
        instr: &SourceInstr,
        addr: usize,
        labels: &BTreeMap<String, usize>,
        line: usize,
    ) -> Result<Vec<Instruction>, AsmError> {
        let p = self.inst.params();
        let topo = self.inst.topology();
        let gpr = |g: eqasm_core::Gpr| g.checked(p.num_gprs).map_err(|e| Self::core_err(line, e));
        let one = |i: Instruction| Ok(vec![i]);
        match instr {
            SourceInstr::Nop => one(Instruction::Nop),
            SourceInstr::Stop => one(Instruction::Stop),
            SourceInstr::Cmp { rs, rt } => one(Instruction::Cmp {
                rs: gpr(*rs)?,
                rt: gpr(*rt)?,
            }),
            SourceInstr::Br { flag, target } => {
                let offset = match target {
                    BranchTarget::Offset(o) => *o as i64,
                    BranchTarget::Label(name) => {
                        let dest = labels.get(name).ok_or_else(|| {
                            AsmError::at(line, AsmErrorKind::UndefinedLabel(name.clone()))
                        })?;
                        *dest as i64 - addr as i64
                    }
                };
                let bits = p.branch_offset_bits;
                let min = -(1i64 << (bits - 1));
                let max = (1i64 << (bits - 1)) - 1;
                if offset < min || offset > max {
                    return Err(AsmError::at(
                        line,
                        AsmErrorKind::BranchOutOfRange { offset, bits },
                    ));
                }
                one(Instruction::Br {
                    flag: *flag,
                    offset: offset as i32,
                })
            }
            SourceInstr::Fbr { flag, rd } => one(Instruction::Fbr {
                flag: *flag,
                rd: gpr(*rd)?,
            }),
            SourceInstr::Ldi { rd, imm } => one(Instruction::Ldi {
                rd: gpr(*rd)?,
                imm: self.check_signed(line, "LDI imm", *imm, p.ldi_bits)?,
            }),
            SourceInstr::Ldui { rd, imm, rs } => one(Instruction::Ldui {
                rd: gpr(*rd)?,
                imm: self.check_unsigned(line, "LDUI imm", *imm, p.ldui_bits)? as u16,
                rs: gpr(*rs)?,
            }),
            SourceInstr::Ld { rd, rt, imm } => one(Instruction::Ld {
                rd: gpr(*rd)?,
                rt: gpr(*rt)?,
                imm: self.check_signed(line, "LD offset", *imm, p.mem_offset_bits)?,
            }),
            SourceInstr::St { rs, rt, imm } => one(Instruction::St {
                rs: gpr(*rs)?,
                rt: gpr(*rt)?,
                imm: self.check_signed(line, "ST offset", *imm, p.mem_offset_bits)?,
            }),
            SourceInstr::Fmr { rd, qubit } => {
                if qubit.index() >= topo.num_qubits() {
                    return Err(Self::core_err(
                        line,
                        CoreError::InvalidQubit {
                            qubit: *qubit,
                            num_qubits: topo.num_qubits(),
                        },
                    ));
                }
                one(Instruction::Fmr {
                    rd: gpr(*rd)?,
                    qubit: *qubit,
                })
            }
            SourceInstr::And { rd, rs, rt } => one(Instruction::And {
                rd: gpr(*rd)?,
                rs: gpr(*rs)?,
                rt: gpr(*rt)?,
            }),
            SourceInstr::Or { rd, rs, rt } => one(Instruction::Or {
                rd: gpr(*rd)?,
                rs: gpr(*rs)?,
                rt: gpr(*rt)?,
            }),
            SourceInstr::Xor { rd, rs, rt } => one(Instruction::Xor {
                rd: gpr(*rd)?,
                rs: gpr(*rs)?,
                rt: gpr(*rt)?,
            }),
            SourceInstr::Not { rd, rt } => one(Instruction::Not {
                rd: gpr(*rd)?,
                rt: gpr(*rt)?,
            }),
            SourceInstr::Add { rd, rs, rt } => one(Instruction::Add {
                rd: gpr(*rd)?,
                rs: gpr(*rs)?,
                rt: gpr(*rt)?,
            }),
            SourceInstr::Sub { rd, rs, rt } => one(Instruction::Sub {
                rd: gpr(*rd)?,
                rs: gpr(*rs)?,
                rt: gpr(*rt)?,
            }),
            SourceInstr::QWait { cycles } => {
                let cycles = self.check_unsigned(line, "QWAIT imm", *cycles, p.qwait_bits)?;
                one(Instruction::QWait { cycles })
            }
            SourceInstr::QWaitR { rs } => one(Instruction::QWaitR { rs: gpr(*rs)? }),
            SourceInstr::Smis { sd, arg } => {
                let sd = sd
                    .checked(p.num_sregs)
                    .map_err(|e| Self::core_err(line, e))?;
                let mask = match arg {
                    SmisArg::Qubits(qs) => {
                        topo.single_mask(qs).map_err(|e| Self::core_err(line, e))?
                    }
                    SmisArg::Mask(m) => {
                        topo.check_single_mask(*m)
                            .map_err(|e| Self::core_err(line, e))?;
                        *m
                    }
                };
                one(Instruction::Smis { sd, mask })
            }
            SourceInstr::Smit { td, arg } => {
                let td = td
                    .checked(p.num_tregs)
                    .map_err(|e| Self::core_err(line, e))?;
                let mask = match arg {
                    SmitArg::Pairs(pairs) => {
                        let pairs: Vec<eqasm_core::QubitPair> = pairs
                            .iter()
                            .map(|&(s, t)| eqasm_core::QubitPair::new(s, t))
                            .collect();
                        topo.pair_mask(&pairs)
                            .map_err(|e| Self::core_err(line, e))?
                    }
                    SmitArg::Mask(m) => {
                        topo.check_pair_mask(*m)
                            .map_err(|e| Self::core_err(line, e))?;
                        *m
                    }
                };
                one(Instruction::Smit { td, mask })
            }
            SourceInstr::Bundle(b) => self.emit_bundle(b, line),
        }
    }

    fn emit_bundle(&self, b: &SourceBundle, line: usize) -> Result<Vec<Instruction>, AsmError> {
        let p = self.inst.params();
        let pi = b.pi.unwrap_or(1);
        p.check_pi(pi).map_err(|e| Self::core_err(line, e))?;

        // Resolve names and check arities.
        let mut slots: Vec<BundleOp> = Vec::with_capacity(b.ops.len());
        for op in &b.ops {
            if op.name.eq_ignore_ascii_case("QNOP") {
                if op.target.is_some() {
                    return Err(AsmError::at(
                        line,
                        AsmErrorKind::ArityMismatch {
                            op: op.name.clone(),
                            requires: "no target register",
                        },
                    ));
                }
                slots.push(BundleOp::QNOP);
                continue;
            }
            let def =
                self.inst.ops().by_name(&op.name).map_err(|_| {
                    AsmError::at(line, AsmErrorKind::UnknownMnemonic(op.name.clone()))
                })?;
            let slot = match (def.arity(), op.target) {
                (OpArity::SingleQubit, Some(SourceTarget::S(s))) => {
                    let s = s
                        .checked(p.num_sregs)
                        .map_err(|e| Self::core_err(line, e))?;
                    BundleOp::single(def.opcode(), s)
                }
                (OpArity::TwoQubit, Some(SourceTarget::T(t))) => {
                    let t = t
                        .checked(p.num_tregs)
                        .map_err(|e| Self::core_err(line, e))?;
                    BundleOp::two(def.opcode(), t)
                }
                (OpArity::SingleQubit, _) => {
                    return Err(AsmError::at(
                        line,
                        AsmErrorKind::ArityMismatch {
                            op: op.name.clone(),
                            requires: "an S (single-qubit target) register",
                        },
                    ))
                }
                (OpArity::TwoQubit, _) => {
                    return Err(AsmError::at(
                        line,
                        AsmErrorKind::ArityMismatch {
                            op: op.name.clone(),
                            requires: "a T (two-qubit target) register",
                        },
                    ))
                }
            };
            slots.push(slot);
        }

        // Split to the VLIW width; continuations carry PI = 0 and the
        // final word is padded with QNOPs (§3.4.2).
        let w = p.vliw_width;
        let mut out = Vec::new();
        for (chunk_idx, chunk) in slots.chunks(w).enumerate() {
            let mut ops = chunk.to_vec();
            while ops.len() < w {
                ops.push(BundleOp::QNOP);
            }
            let chunk_pi = if chunk_idx == 0 { pi as u8 } else { 0 };
            out.push(Instruction::Bundle(Bundle::with_pre_interval(
                chunk_pi, ops,
            )));
        }
        Ok(out)
    }
}

/// Convenience free function: parse and assemble in one call.
///
/// # Errors
///
/// See [`Assembler::assemble`].
pub fn assemble(source: &str, inst: &Instantiation) -> Result<Program, AsmError> {
    Assembler::new(inst).assemble(source)
}

/// Looks up the qubits a measured `SMIS` mask refers to — a helper used
/// by harnesses that need to know which qubits a program measures.
pub fn qubits_of_mask(inst: &Instantiation, mask: u32) -> Vec<Qubit> {
    inst.topology().qubits_in_mask(mask)
}

#[cfg(test)]
mod tests {
    use super::*;
    use eqasm_core::{CmpFlag, QOpcode};

    fn inst() -> Instantiation {
        Instantiation::paper()
    }

    fn opcode(i: &Instantiation, name: &str) -> QOpcode {
        i.ops().by_name(name).unwrap().opcode()
    }

    #[test]
    fn assembles_fig3_with_correct_shapes() {
        let inst = inst();
        let program = assemble(
            "SMIS S0, {0}\nSMIS S2, {2}\nSMIS S7, {0, 2}\nQWAIT 10000\n0, Y S7\n1, X90 S0 | X S2\n1, MEASZ S7\nQWAIT 50",
            &inst,
        )
        .unwrap();
        assert_eq!(program.len(), 8);
        assert_eq!(
            program[0],
            Instruction::Smis {
                sd: eqasm_core::SReg::new(0),
                mask: 0b1
            }
        );
        assert_eq!(
            program[2],
            Instruction::Smis {
                sd: eqasm_core::SReg::new(7),
                mask: 0b101
            }
        );
        assert_eq!(program[3], Instruction::QWait { cycles: 10000 });
        // `1, X90 S0 | X S2` keeps both ops in one word (w = 2).
        match &program[5] {
            Instruction::Bundle(b) => {
                assert_eq!(b.pre_interval, 1);
                assert_eq!(b.ops.len(), 2);
                assert_eq!(b.ops[0].opcode, opcode(&inst, "X90"));
                assert_eq!(b.ops[1].opcode, opcode(&inst, "X"));
            }
            other => panic!("expected bundle, got {other:?}"),
        }
    }

    #[test]
    fn single_op_bundle_padded_with_qnop() {
        let inst = inst();
        let program = assemble("0, Y S7", &inst).unwrap();
        match &program[0] {
            Instruction::Bundle(b) => {
                assert_eq!(b.ops.len(), 2);
                assert!(b.ops[1].is_qnop());
                assert_eq!(b.effective_ops(), 1);
            }
            other => panic!("expected bundle, got {other:?}"),
        }
    }

    #[test]
    fn long_bundle_split_with_zero_pi_continuation() {
        // §3.4.2: "PI, X S5 | H S7 | CNOT T3" with w = 2 becomes
        // "PI, X S5 | H S7" then "0, CNOT T3 | QNOP".
        let inst = inst();
        let program = assemble("3, X S5 | H S7 | CNOT T3", &inst).unwrap();
        assert_eq!(program.len(), 2);
        match (&program[0], &program[1]) {
            (Instruction::Bundle(b0), Instruction::Bundle(b1)) => {
                assert_eq!(b0.pre_interval, 3);
                assert_eq!(b0.ops.len(), 2);
                assert_eq!(b1.pre_interval, 0);
                assert_eq!(b1.ops[0].opcode, opcode(&inst, "CNOT"));
                assert!(b1.ops[1].is_qnop());
            }
            other => panic!("expected two bundles, got {other:?}"),
        }
    }

    #[test]
    fn label_resolution_forward_and_backward() {
        let inst = inst();
        let program = assemble(
            "loop:\nQWAIT 1\nBR ALWAYS, loop\nBR EQ, done\nNOP\ndone:\nSTOP",
            &inst,
        )
        .unwrap();
        assert_eq!(program.label("loop"), Some(0));
        assert_eq!(program.label("done"), Some(4));
        assert_eq!(
            program[1],
            Instruction::Br {
                flag: CmpFlag::Always,
                offset: -1
            }
        );
        assert_eq!(
            program[2],
            Instruction::Br {
                flag: CmpFlag::Eq,
                offset: 2
            }
        );
    }

    #[test]
    fn labels_account_for_bundle_splitting() {
        // A 3-op bundle occupies two words, so the label after it is at
        // address 3 (1 QWAIT + 2 bundle words).
        let inst = inst();
        let program = assemble(
            "QWAIT 1\n1, X S0 | Y S1 | X90 S2\nafter:\nBR ALWAYS, after",
            &inst,
        )
        .unwrap();
        assert_eq!(program.label("after"), Some(3));
        assert_eq!(
            program[3],
            Instruction::Br {
                flag: CmpFlag::Always,
                offset: 0
            }
        );
    }

    #[test]
    fn duplicate_label_rejected() {
        let err = assemble("a:\nNOP\na:\nNOP", &inst()).unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::DuplicateLabel(_)));
    }

    #[test]
    fn undefined_label_rejected() {
        let err = assemble("BR ALWAYS, nowhere", &inst()).unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::UndefinedLabel(_)));
    }

    #[test]
    fn smit_pair_list_resolves_to_edge_mask() {
        let inst = inst();
        // (2, 0) is edge 0 and (3, 1) is edge 5 of surface7.
        let program = assemble("SMIT T3, {(2, 0), (3, 1)}", &inst).unwrap();
        assert_eq!(
            program[0],
            Instruction::Smit {
                td: eqasm_core::TReg::new(3),
                mask: (1 << 0) | (1 << 5)
            }
        );
    }

    #[test]
    fn smit_conflicting_pairs_rejected() {
        // (2, 0) and (0, 3) share qubit 0 — invalid per §4.3.
        let err = assemble("SMIT T0, {(2, 0), (0, 3)}", &inst()).unwrap_err();
        assert!(
            matches!(
                err.kind(),
                AsmErrorKind::Core(CoreError::TargetRegisterConflict { .. })
            ),
            "{err}"
        );
    }

    #[test]
    fn smit_disallowed_pair_rejected() {
        // Qubits 0 and 1 are not coupled on surface7.
        let err = assemble("SMIT T0, {(0, 1)}", &inst()).unwrap_err();
        assert!(matches!(
            err.kind(),
            AsmErrorKind::Core(CoreError::InvalidPair { .. })
        ));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = assemble("CZ S0", &inst()).unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::ArityMismatch { .. }));
        let err = assemble("X T0", &inst()).unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::ArityMismatch { .. }));
        let err = assemble("X", &inst()).unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::ArityMismatch { .. }));
    }

    #[test]
    fn unknown_operation_rejected() {
        let err = assemble("WIBBLE S0", &inst()).unwrap_err();
        assert!(matches!(err.kind(), AsmErrorKind::UnknownMnemonic(_)));
    }

    #[test]
    fn pi_out_of_range_rejected() {
        // 3-bit PI: max 7.
        assert!(assemble("7, X S0", &inst()).is_ok());
        let err = assemble("8, X S0", &inst()).unwrap_err();
        assert!(matches!(
            err.kind(),
            AsmErrorKind::Core(CoreError::ImmediateOutOfRange { .. })
        ));
    }

    #[test]
    fn qwait_range_checked() {
        assert!(assemble("QWAIT 1048575", &inst()).is_ok());
        assert!(assemble("QWAIT 1048576", &inst()).is_err());
        assert!(assemble("QWAIT -1", &inst()).is_err());
    }

    #[test]
    fn ldi_range_checked() {
        assert!(assemble("LDI r0, 524287", &inst()).is_ok());
        assert!(assemble("LDI r0, -524288", &inst()).is_ok());
        assert!(assemble("LDI r0, 524288", &inst()).is_err());
    }

    #[test]
    fn register_indices_checked() {
        assert!(assemble("LDI r31, 0", &inst()).is_ok());
        let err = assemble("LDI r32, 0", &inst()).unwrap_err();
        assert!(matches!(
            err.kind(),
            AsmErrorKind::Core(CoreError::InvalidRegister { .. })
        ));
        assert!(assemble("SMIS S32, {0}", &inst()).is_err());
        assert!(assemble("SMIT T32, {(2, 0)}", &inst()).is_err());
    }

    #[test]
    fn fmr_qubit_checked() {
        assert!(assemble("FMR r0, q6", &inst()).is_ok());
        let err = assemble("FMR r0, q7", &inst()).unwrap_err();
        assert!(matches!(
            err.kind(),
            AsmErrorKind::Core(CoreError::InvalidQubit { .. })
        ));
    }

    #[test]
    fn source_lines_tracked() {
        let program = assemble("NOP\n# comment\nQWAIT 3", &inst()).unwrap();
        assert_eq!(program.source_line(0), Some(1));
        assert_eq!(program.source_line(1), Some(3));
    }

    #[test]
    fn mask_forms_accepted_and_validated() {
        let inst = inst();
        assert!(assemble("SMIS S0, 0b1111111", &inst).is_ok());
        assert!(assemble("SMIS S0, 0b11111111", &inst).is_err()); // 8th bit
                                                                  // Raw T mask with conflict (edges 0 and 1 share qubit 0).
        assert!(assemble("SMIT T0, 0b11", &inst).is_err());
        assert!(assemble("SMIT T0, 0b100001", &inst).is_ok()); // edges 0, 5
    }

    #[test]
    fn program_from_instructions() {
        let p = Program::from_instructions(vec![Instruction::Nop, Instruction::Stop]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.source_line(0), Some(0));
        assert!(p.labels().next().is_none());
    }

    #[test]
    fn empty_bundle_rejected() {
        // An integer PI with no ops cannot parse as a bundle; craft via
        // AST to hit the assembler check.
        let ast = SourceProgram {
            items: vec![Item::Instr {
                instr: SourceInstr::Bundle(SourceBundle {
                    pi: Some(1),
                    ops: vec![],
                }),
                line: 1,
            }],
        };
        let inst = inst();
        let err = Assembler::new(&inst).assemble_ast(&ast).unwrap_err();
        assert!(err.to_string().contains("empty bundle"));
    }
}
