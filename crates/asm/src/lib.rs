//! # eqasm-asm — the eQASM assembler
//!
//! Translates eQASM assembly (the syntax of the paper's listings,
//! Table 1 and Figs. 3–5) into executable instructions and the 32-bit
//! binary of the paper's instantiation (Fig. 8), and back.
//!
//! The assembler is configured by an [`eqasm_core::Instantiation`]: the
//! chip topology defines the target-register mask formats (§3.3.2), the
//! operation configuration defines which quantum operation names exist
//! (§3.2), and the architecture parameters define field widths and the
//! VLIW width used to split long bundles (§3.4.2).
//!
//! ```
//! use eqasm_asm::{assemble, encoding::encode_program};
//! use eqasm_core::Instantiation;
//!
//! let inst = Instantiation::paper();
//! // Fig. 4: active qubit reset.
//! let program = assemble(
//!     "SMIS S2, {2}\nQWAIT 10000\nX90 S2\nMEASZ S2\nQWAIT 50\nC_X S2\nMEASZ S2",
//!     &inst,
//! )?;
//! let binary = encode_program(program.instructions(), &inst)?;
//! assert_eq!(binary.len(), 7);
//! # Ok::<(), eqasm_asm::AsmError>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod assembler;
pub mod ast;
mod disassembler;
pub mod encoding;
mod error;
pub mod lexer;
pub mod parser;

pub use assembler::{assemble, qubits_of_mask, Assembler, Program};
pub use disassembler::{disassemble, disassemble_source, format_instruction};
pub use error::{AsmError, AsmErrorKind};
