//! Property-based tests of the assembler front end: the lexer and
//! parser never panic on arbitrary input, generated programs round-trip
//! through text, and immediates are range-checked exactly at the field
//! boundaries.

use eqasm_asm::{assemble, lexer::lex, parser::parse};
use eqasm_core::Instantiation;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The lexer returns Ok or Err — it never panics — on arbitrary
    /// input, including non-ASCII.
    #[test]
    fn lexer_total(input in ".{0,200}") {
        let _ = lex(&input);
    }

    /// The parser is total over arbitrary token-ish text.
    #[test]
    fn parser_total(input in "[A-Za-z0-9 ,:(){}|#\\n\\-]{0,200}") {
        let _ = parse(&input);
    }

    /// The full assembler is total over arbitrary printable programs.
    #[test]
    fn assembler_total(input in "[ -~\\n]{0,300}") {
        let inst = Instantiation::paper();
        let _ = assemble(&input, &inst);
    }

    /// LDI range checking is exact at the signed 20-bit boundary.
    #[test]
    fn ldi_boundary(v in -(1i64 << 21)..(1i64 << 21)) {
        let inst = Instantiation::paper();
        let src = format!("LDI r0, {v}");
        let ok = assemble(&src, &inst).is_ok();
        let in_range = (-(1i64 << 19)..(1i64 << 19)).contains(&v);
        prop_assert_eq!(ok, in_range, "value {}", v);
    }

    /// QWAIT range checking is exact at the 20-bit boundary.
    #[test]
    fn qwait_boundary(v in 0i64..(1i64 << 22)) {
        let inst = Instantiation::paper();
        let src = format!("QWAIT {v}");
        let ok = assemble(&src, &inst).is_ok();
        prop_assert_eq!(ok, v < (1 << 20));
    }

    /// PI range checking is exact at the 3-bit boundary.
    #[test]
    fn pi_boundary(v in 0u32..32) {
        let inst = Instantiation::paper();
        let src = format!("{v}, X S0");
        let ok = assemble(&src, &inst).is_ok();
        prop_assert_eq!(ok, v <= 7);
    }

    /// Register indices are checked against the 32-entry files.
    #[test]
    fn register_boundary(r in 0u32..64) {
        let inst = Instantiation::paper();
        prop_assert_eq!(assemble(&format!("LDI r{r}, 0"), &inst).is_ok(), r < 32);
        prop_assert_eq!(assemble(&format!("SMIS S{r}, {{0}}"), &inst).is_ok(), r < 32);
        prop_assert_eq!(
            assemble(&format!("SMIT T{r}, {{(2, 0)}}"), &inst).is_ok(),
            r < 32
        );
    }

    /// Generated straight-line programs survive a text round trip:
    /// assemble → render via Display/pretty → re-assemble equal.
    #[test]
    fn text_roundtrip(
        ldis in prop::collection::vec((0u8..32, -1000i32..1000), 1..20),
        waits in prop::collection::vec(1u32..1000, 1..10),
    ) {
        let inst = Instantiation::paper();
        let mut src = String::new();
        for (r, v) in &ldis {
            src.push_str(&format!("LDI r{r}, {v}\n"));
        }
        for w in &waits {
            src.push_str(&format!("QWAIT {w}\n"));
        }
        src.push_str("STOP\n");
        let p1 = assemble(&src, &inst).unwrap();
        let rendered: String = p1
            .instructions()
            .iter()
            .map(|i| i.pretty(inst.ops()) + "\n")
            .collect();
        let p2 = assemble(&rendered, &inst).unwrap();
        prop_assert_eq!(p1.instructions(), p2.instructions());
    }

    /// Labels may appear anywhere; resolved offsets always land inside
    /// (or one past) the program.
    #[test]
    fn label_offsets_in_bounds(pos in 0usize..10, n in 1usize..10) {
        let inst = Instantiation::paper();
        let pos = pos.min(n);
        let mut src = String::new();
        for i in 0..n {
            if i == pos {
                src.push_str("target:\n");
            }
            src.push_str("NOP\n");
        }
        if pos == n {
            src.push_str("target:\n");
        }
        src.push_str("BR ALWAYS, target\n");
        let program = assemble(&src, &inst).unwrap();
        let br_addr = program.len() - 1;
        if let eqasm_core::Instruction::Br { offset, .. } = program[br_addr] {
            let dest = br_addr as i64 + offset as i64;
            prop_assert!(dest >= 0 && dest <= program.len() as i64);
            prop_assert_eq!(dest as usize, pos);
        } else {
            prop_assert!(false, "last instruction must be BR");
        }
    }
}
