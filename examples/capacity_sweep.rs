//! Capacity sweep: find the knee of a serve coordinator with the
//! open-loop load generator.
//!
//! Spawns an in-process coordinator (2 local slots) with a live
//! `/metrics` endpoint, then ramps a mixed two-tenant workload
//! through `eqasm::runtime::capacity_sweep`: each rung offers a fixed
//! submissions/sec rate for a measurement window — the pacer never
//! slows when the server lags, so saturation shows up as latency —
//! and the ramp stops the moment a rung breaches a failure-rate or
//! p50-latency ceiling. The result is the same `capacity` section the
//! throughput bench emits into `BENCH_runtime.json`: a rung table
//! with client-side percentiles and server-side truth (peak queue
//! depth, admission rejections, shots completed) scraped from
//! `/metrics`, plus the max sustainable rate.
//!
//! Run with: `cargo run --release --example capacity_sweep`
//!
//! Against a *real* deployment, the same sweep is one CLI invocation:
//!
//! ```text
//! eqasm-cli serve --listen 127.0.0.1:7700 --metrics 9464 --workers 4 &
//! eqasm-cli loadgen mix --connect 127.0.0.1:7700 --scrape 127.0.0.1:9464 --json
//! ```

use std::net::TcpListener;
use std::sync::Arc;
use std::time::Duration;

use eqasm::runtime::loadgen::RpsStep;
use eqasm::runtime::serve::{JobQueue, ServeConfig};
use eqasm::runtime::{
    capacity_sweep, spawn_serve, Ceilings, LoadClass, LoadSpec, MetricsServer, ServeNetConfig,
    ShotsDist, SweepConfig, SweepTarget, WorkloadKind, WorkloadSpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The system under test: a coordinator with 2 local slots, its
    // front door and its metrics endpoint both on loopback.
    let queue = Arc::new(JobQueue::new(
        ServeConfig::default().with_workers(2).with_batch_size(64),
    ));
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let server = spawn_serve(listener, Arc::clone(&queue), ServeNetConfig::default())?;
    let metrics = MetricsServer::spawn("127.0.0.1:0", eqasm::runtime::metrics::default_registry())?;
    println!(
        "coordinator on {}, /metrics on {}",
        server.addr(),
        metrics.local_addr()
    );

    // The traffic shape: a two-tenant mix — calibration RB (2 shares)
    // and a Clifford chain past the 10-qubit dense ceiling (1 share)
    // — 500 shots per job, a quarter of jobs watched by a subscriber.
    let spec = LoadSpec::new(vec![
        LoadClass {
            tenant: "cal".into(),
            spec: WorkloadSpec::new(
                "rb",
                WorkloadKind::Rb {
                    k: 24,
                    interval_cycles: 1,
                    sequence_seed: 0x5eed,
                },
                500,
            ),
            share: 2,
        },
        LoadClass {
            tenant: "batch".into(),
            spec: WorkloadSpec::new(
                "stabilizer",
                WorkloadKind::CliffordChain {
                    qubits: 12,
                    layers: 2,
                },
                500,
            ),
            share: 1,
        },
    ])
    .with_shots(ShotsDist::fixed(500))
    .with_subscribe_ratio(0.25)
    .with_connections(2)
    .with_watchers(1)
    .with_seed(7);

    // The ramp: 16 rps doubling each rung, 1.5 s windows, stopping
    // when a rung's failure rate reaches 40% or its p50 reaches 1.5 s.
    let config = SweepConfig {
        initial_rps: 16.0,
        step: RpsStep::Mul(2.0),
        max_rps: 4096.0,
        window: Duration::from_millis(1500),
        drain_timeout: Duration::from_secs(8),
        stop: Ceilings {
            failure_rate: 0.4,
            p50: Duration::from_millis(1500),
        },
        ..SweepConfig::default()
    };
    let target =
        SweepTarget::new(server.addr().to_string()).with_metrics(metrics.local_addr().to_string());

    let report = capacity_sweep(&spec, &target, &config)?;

    println!();
    print!("{}", report.table());
    println!();
    println!("capacity JSON (the BENCH_runtime.json section):");
    println!("{}", report.to_json(""));

    assert!(
        report.max_sustainable_rps > 0.0,
        "a healthy loopback coordinator must sustain some rate"
    );
    Ok(())
}
