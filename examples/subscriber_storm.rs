//! Connection-scale probe: thousands of idle subscribers on one
//! reactor thread.
//!
//! The serve front door's event loop exists for exactly one number:
//! how many mostly-idle `SUBSCRIBE` streams one coordinator can hold
//! without spending a thread per peer. This probe opens N (default
//! 5,000) raw loopback subscriber connections against a single
//! in-flight job, then reads the answer off the process itself:
//!
//! * `Threads:` from `/proc/self/status` — must stay O(1) in N
//!   (reactor + queue workers + this main thread), never O(N);
//! * open file descriptors from `/proc/self/fd` — which *is* O(N),
//!   two per loopback connection, and is the resource the event loop
//!   trades the threads for;
//! * time-to-first-snapshot for a late subscriber — how fast the
//!   reactor turns a `SUBSCRIBE` around while already holding N
//!   streams.
//!
//! Every subscriber then drains its stream to completion and the
//! probe asserts the serve invariant at scale: each snapshot is a
//! monotonic prefix, and all N final results are byte-identical.
//!
//! The measured numbers feed the `subscribers` section of
//! `BENCH_runtime.json`.
//!
//! Run with: `cargo run --release --example subscriber_storm [n] [addr]`
//!
//! With `addr`, the storm targets an **external** `eqasm-cli serve
//! --listen` process instead of an in-process acceptor — CI uses this
//! to assert the *server* process's thread count from
//! `/proc/<pid>/status` while 2,000 subscribers are parked on it. (In
//! external mode the in-process thread assertion is skipped; this
//! process's threads say nothing about the server's.)

use std::io::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use eqasm::core::{Instantiation, Qubit, Topology};
use eqasm::microarch::SimConfig;
use eqasm::quantum::ReadoutModel;
use eqasm::runtime::serve::{JobQueue, ServeConfig, Submission};
use eqasm::runtime::{spawn_serve, wire, Client, Job, ServeNetConfig};
use eqasm::workloads::rb_program;

/// `Threads:` from `/proc/self/status` — the whole-process thread
/// count, exactly what an operator's `ps -o nlwp` would report.
fn thread_count() -> usize {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("Threads:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|n| n.parse().ok())
        })
        .unwrap_or(0)
}

/// Open file descriptors, counted the way `lsof` would.
fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd").map_or(0, |d| d.count())
}

/// Raises the soft `RLIMIT_NOFILE` to the hard limit so N loopback
/// connections (two fds each, both ends in this process) fit under
/// the default 1024. Same raw-FFI route the reactor takes for epoll.
#[cfg(target_os = "linux")]
fn raise_fd_limit() -> u64 {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }
    const RLIMIT_NOFILE: i32 = 7;
    unsafe {
        let mut lim = Rlimit { cur: 0, max: 0 };
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return 0;
        }
        if lim.cur < lim.max {
            let raised = Rlimit {
                cur: lim.max,
                max: lim.max,
            };
            let _ = setrlimit(RLIMIT_NOFILE, &raised);
            if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
                return 0;
            }
        }
        lim.cur
    }
}

#[cfg(not(target_os = "linux"))]
fn raise_fd_limit() -> u64 {
    0
}

/// One raw wire-v4 subscriber: connect, HELLO/HELLO_ACK, SUBSCRIBE —
/// then park. No reader thread; the stream's frames sit in the kernel
/// buffer until [`drain`] collects them.
fn subscribe(addr: &std::net::SocketAddr, job_id: u64) -> Result<TcpStream, wire::WireError> {
    let mut stream = TcpStream::connect(addr).map_err(wire::WireError::Io)?;
    stream.set_nodelay(true).map_err(wire::WireError::Io)?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(wire::WireError::Io)?;
    let hello = wire::Hello {
        version: wire::PROTOCOL_VERSION,
    };
    wire::write_frame(&mut stream, wire::tag::HELLO, &hello.encode())?;
    let (tag, payload) = wire::read_frame(&mut stream)?;
    if tag != wire::tag::HELLO_ACK {
        return Err(wire::WireError::UnknownTag {
            what: "storm handshake",
            tag,
        });
    }
    wire::HelloAck::decode(&payload)?;
    let sub = wire::Subscribe {
        job_id,
        resume_after: None,
    };
    wire::write_frame(
        &mut stream,
        wire::tag::SUBSCRIBE,
        &wire::encode_subscribe(&sub),
    )?;
    Ok(stream)
}

/// Drains one subscription stream to its final `RESULT`, asserting
/// the prefix invariant on the way: `batches_done` and `shots_done`
/// only ever grow. Returns (snapshots seen, final result bytes).
fn drain(stream: &mut TcpStream) -> Result<(usize, Vec<u8>), wire::WireError> {
    let mut snapshots = 0usize;
    let mut last_batches = 0usize;
    let mut last_shots = 0u64;
    loop {
        let (tag, payload) = wire::read_frame(stream)?;
        match tag {
            wire::tag::SNAPSHOT => {
                let snap = wire::decode_partial_result(&payload)?;
                assert!(
                    snap.batches_done >= last_batches && snap.shots_done >= last_shots,
                    "snapshot stream went backwards: {}/{} after {}/{}",
                    snap.batches_done,
                    snap.shots_done,
                    last_batches,
                    last_shots,
                );
                last_batches = snap.batches_done;
                last_shots = snap.shots_done;
                snapshots += 1;
            }
            wire::tag::RESULT => return Ok((snapshots, payload)),
            other => {
                return Err(wire::WireError::UnknownTag {
                    what: "subscription stream",
                    tag: other,
                })
            }
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5000);
    let external: Option<String> = std::env::args().nth(2);
    let fd_limit = raise_fd_limit();
    let workers = 2usize;

    // A big batch size keeps the probe honest at N=5,000: few, small
    // snapshot frames per subscriber, so parked (unread) streams fit
    // in kernel socket buffers instead of tripping the outbound-queue
    // backpressure eviction this probe is not about.
    let shots = 30_000u64;
    let inst = Instantiation::paper().with_topology(Topology::linear(1));
    let (program, _) = rb_program(&inst, Qubit::new(0), 16, 1, 0x5702)?;
    let job = Job::new("storm", inst, program)
        .with_config(SimConfig::default().with_readout(ReadoutModel::symmetric(0.03)))
        .with_shots(shots)
        .with_seed(7);

    // In-process mode spins up the full front door here (identical
    // code path to `eqasm-cli serve --listen`); external mode keeps
    // the server handle alive only to pin the addr's lifetime.
    let mut _server = None;
    let addr: std::net::SocketAddr = match &external {
        Some(a) => a.parse()?,
        None => {
            let queue = Arc::new(JobQueue::new(
                ServeConfig::default()
                    .with_workers(workers)
                    .with_batch_size(2048),
            ));
            let listener = TcpListener::bind("127.0.0.1:0")?;
            let server = spawn_serve(
                listener,
                Arc::clone(&queue),
                ServeNetConfig::default().with_name("storm-serve"),
            )?;
            let addr = server.addr();
            _server = Some((server, queue));
            addr
        }
    };
    let threads_baseline = thread_count();
    println!(
        "storm: serve on {addr}{}, fd limit {fd_limit}, \
         {threads_baseline} threads before any subscriber",
        if external.is_some() {
            " (external)".to_owned()
        } else {
            format!(", {workers} queue workers")
        }
    );

    // Submit over the wire so the job id is exactly what a remote
    // subscriber would have been handed.
    let client = Client::connect(addr.to_string())?;
    let handles = client.submit(Submission::job("storm", job))?;
    let job_id = handles[0].job_id();

    // The storm: N raw subscribers, no threads, no readers.
    let connect_started = Instant::now();
    let mut streams = Vec::with_capacity(n);
    for i in 0..n {
        match subscribe(&addr, job_id) {
            Ok(s) => streams.push(s),
            Err(e) => {
                eprintln!("subscriber {i}/{n} failed: {e} (fd limit {fd_limit}?)");
                return Err(e.into());
            }
        }
        if (i + 1) % 1000 == 0 {
            println!(
                "  {:>5} subscribers, {} threads, {} fds",
                i + 1,
                thread_count(),
                fd_count()
            );
            std::io::stdout().flush().ok();
        }
    }
    let connect_secs = connect_started.elapsed().as_secs_f64();
    let threads_peak = thread_count();
    let fds_peak = fd_count();

    // Time-to-first-snapshot for subscriber N+1: the reactor's
    // turnaround while already holding N streams.
    let ttfs_started = Instant::now();
    let mut probe = subscribe(&addr, job_id)?;
    let (probe_tag, _) = wire::read_frame(&mut probe)?;
    assert!(
        probe_tag == wire::tag::SNAPSHOT || probe_tag == wire::tag::RESULT,
        "probe subscriber expected a snapshot, got tag {probe_tag}"
    );
    let ttfs_us = ttfs_started.elapsed().as_secs_f64() * 1e6;
    drop(probe);

    println!(
        "{n} subscribers in {connect_secs:.2}s: {threads_peak} threads (baseline {threads_baseline}), \
         {fds_peak} fds, first snapshot for a late subscriber in {ttfs_us:.0} µs"
    );
    if external.is_none() {
        assert!(
            threads_peak <= threads_baseline + 2,
            "thread count grew with subscribers: {threads_baseline} -> {threads_peak}"
        );
    }

    // Let the job run out, then drain all N streams and hold the
    // invariant: monotonic prefixes everywhere, one identical final
    // result for everyone.
    let reference = handles[0].wait()?;
    let mut total_snapshots = 0usize;
    let mut final_bytes: Option<Vec<u8>> = None;
    for (i, stream) in streams.iter_mut().enumerate() {
        let (snaps, result) = drain(stream)
            .map_err(|e| std::io::Error::other(format!("subscriber {i} stream broke: {e}")))?;
        total_snapshots += snaps;
        match &final_bytes {
            None => {
                let decoded = wire::decode_job_result(&result)?;
                assert_eq!(decoded.histogram, reference.histogram);
                assert_eq!(decoded.stats, reference.stats);
                final_bytes = Some(result);
            }
            Some(first) => assert_eq!(
                first, &result,
                "subscriber {i} got a different final result"
            ),
        }
    }
    println!(
        "drained {total_snapshots} snapshots across {n} streams; all {n} final results \
         byte-identical to the watch result ✓"
    );

    // The JSON fragment BENCH_runtime.json carries as `subscribers`.
    println!(
        "\n  \"subscribers\": {{\n    \"connections\": {n},\n    \"queue_workers\": {workers},\n    \
         \"threads_baseline\": {threads_baseline},\n    \"threads_peak\": {threads_peak},\n    \
         \"fds_peak\": {fds_peak},\n    \"connect_s\": {connect_secs:.2},\n    \
         \"first_snapshot_us\": {ttfs_us:.0},\n    \"snapshots_drained\": {total_snapshots},\n    \
         \"bit_identical\": true\n  }}"
    );
    Ok(())
}
