//! Cross-host job sharding over the wire protocol — in one process.
//!
//! Spawns an in-process worker daemon on a loopback socket (exactly
//! what `eqasm-cli worker --listen` runs across hosts), builds a
//! mixed backend pool — local threads plus remote slots — and runs a
//! noisy randomized-benchmarking job through the serve queue both
//! ways, verifying the cross-host determinism contract: histograms,
//! machine statistics and mean-`P(|1⟩)` are **bit-identical** no
//! matter where the shot ranges ran.
//!
//! Run with: `cargo run --release --example remote_shard`

use std::net::TcpListener;

use eqasm::core::{Instantiation, Qubit, Topology};
use eqasm::microarch::{BackendSelect, SimConfig};
use eqasm::quantum::{NoiseModel, ReadoutModel};
use eqasm::runtime::serve::{JobQueue, ServeConfig, Submission};
use eqasm::runtime::{
    spawn_worker, ExecBackend, Job, LocalBackend, RemoteBackend, ShotEngine, WorkerConfig,
};
use eqasm::workloads::rb_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A job whose shots consume real randomness (trajectory noise +
    // readout corruption): any divergence between local and remote
    // execution would show in the aggregates immediately.
    let inst = Instantiation::paper().with_topology(Topology::linear(1));
    let (program, _) = rb_program(&inst, Qubit::new(0), 16, 1, 0x5eed)?;
    let mut config = SimConfig::default()
        .with_noise(NoiseModel::with_coherence(25_000.0, 20_000.0).with_gate_error(0.001, 0.0))
        .with_readout(ReadoutModel::symmetric(0.05));
    config.backend = BackendSelect::Pure;
    let job = Job::new("rb-shard", inst, program)
        .with_config(config)
        .with_shots(2000)
        .with_seed(11);

    // The "remote host": a worker daemon on a loopback socket. Across
    // machines this is `eqasm-cli worker --listen 0.0.0.0:7777`.
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let worker = spawn_worker(
        listener,
        WorkerConfig::default()
            .with_name("shard-host")
            .with_capacity(2),
    )?;
    println!("worker daemon on {}", worker.addr());

    // Reference: the plain in-process engine.
    let reference = ShotEngine::new(2).with_batch_size(64).run_job(&job)?;
    println!(
        "local engine : {} shots, {} distinct outcomes, {:.0} shots/s",
        reference.shots,
        reference.histogram.len(),
        reference.shots_per_sec
    );

    // The sharded pool: one local slot + every slot the worker
    // advertises, behind the same serve queue.
    let mut backends: Vec<Box<dyn ExecBackend>> = vec![Box::new(LocalBackend::new(0))];
    for backend in RemoteBackend::connect_pool(worker.addr().to_string())? {
        println!("attached    : {}", backend.descriptor());
        backends.push(Box::new(backend));
    }
    let queue = JobQueue::with_backends(ServeConfig::default().with_batch_size(64), backends);
    let handles = queue.submit(Submission::job("lab", job))?;

    // Stream progress: partial snapshots are exact prefixes of the
    // final fold, so the histogram total always equals shots_done.
    loop {
        let snap = handles[0].snapshot();
        println!(
            "sharded pool : {:>5}/{} shots folded ({} batches)",
            snap.shots_done, snap.shots_total, snap.batches_done
        );
        assert_eq!(snap.histogram.total(), snap.shots_done);
        if snap.done {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    let sharded = handles[0].wait()?;
    println!(
        "sharded pool : {} shots, {} distinct outcomes, {:.0} shots/s",
        sharded.shots,
        sharded.histogram.len(),
        sharded.shots_per_sec
    );

    // The contract this architecture is built on.
    assert_eq!(sharded.histogram, reference.histogram);
    assert_eq!(sharded.stats, reference.stats);
    assert_eq!(sharded.mean_prob1, reference.mean_prob1);
    println!("bit-identical: histogram, machine stats and mean P(1) all match");
    Ok(())
}
