//! Batched-execution quickstart: run a randomized-benchmarking
//! workload through the `eqasm-runtime` shot engine and compare the
//! serial and pooled paths.
//!
//! Usage: `cargo run --release --example parallel_rb [shots] [workers]`

use eqasm::core::{Instantiation, Qubit, Topology};
use eqasm::microarch::SimConfig;
use eqasm::quantum::{NoiseModel, ReadoutModel};
use eqasm::runtime::{Job, ShotEngine};
use eqasm::workloads::rb_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shots: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2000);
    let workers: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    // A 48-Clifford RB sequence on a one-qubit chip, with the Fig. 12
    // noise story: finite coherence plus a per-gate error floor, and a
    // 5% readout assignment error.
    let inst = Instantiation::paper().with_topology(Topology::linear(1));
    let (program, sequence) = rb_program(&inst, Qubit::new(0), 48, 1, 0x5eed)?;
    let config = SimConfig::default()
        .with_noise(NoiseModel::with_coherence(25_000.0, 25_000.0).with_gate_error(0.0009, 0.0))
        .with_readout(ReadoutModel::symmetric(0.05));

    let job = Job::new("rb-k48", inst, program)
        .with_config(config)
        .with_shots(shots)
        .with_seed(7);

    println!(
        "RB job: {} Cliffords + recovery, {} shots",
        sequence.cliffords.len(),
        shots
    );

    // Serial reference.
    let serial = ShotEngine::serial().run_job(&job)?;
    println!(
        "serial:  {:>8.0} shots/s  (p50 {:.1} µs, p99 {:.1} µs)",
        serial.shots_per_sec,
        serial.latency.p50_ns as f64 / 1e3,
        serial.latency.p99_ns as f64 / 1e3,
    );

    // Pooled execution — same job, same seeds, same results.
    let engine = ShotEngine::new(workers);
    let pooled = engine.run_job(&job)?;
    println!(
        "pooled:  {:>8.0} shots/s on {} workers  (p50 {:.1} µs, p99 {:.1} µs)",
        pooled.shots_per_sec,
        engine.workers(),
        pooled.latency.p50_ns as f64 / 1e3,
        pooled.latency.p99_ns as f64 / 1e3,
    );

    // The runtime's determinism contract: aggregates are bit-identical
    // whatever the worker count.
    assert_eq!(serial.histogram, pooled.histogram);
    assert_eq!(serial.stats, pooled.stats);
    assert_eq!(serial.mean_prob1, pooled.mean_prob1);

    let survival = 1.0 - pooled.ones_fraction(0).expect("qubit measured");
    println!("sequence survival (readout-corrupted): {survival:.4}");
    println!("outcome histogram:");
    for (outcome, count) in pooled.histogram.iter() {
        println!("  {outcome}  {count}");
    }
    Ok(())
}
