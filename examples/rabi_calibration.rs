//! The Rabi calibration experiment of §5 — the showcase of eQASM's
//! compile-time configurable operations: a sweep of `X_Amp_i` pulses is
//! configured into the QISA (assembler + microcode + pulse library stay
//! consistent automatically) without any ISA change.
//!
//! Run with: `cargo run --release --example rabi_calibration`

use eqasm::prelude::*;
use eqasm::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = Instantiation::paper_two_qubit();
    // Reconfigure the QISA at 'compile time' with 17 amplitude points.
    let amps: Vec<f64> = (0..17).map(|i| i as f64 / 8.0).collect();
    let inst = workloads::rabi_instantiation(&base, &amps);
    println!(
        "configured {} quantum operations (X_AMP_0..X_AMP_{} and MEASZ)",
        inst.ops().len(),
        amps.len() - 1
    );

    let q = Qubit::new(0);
    println!("\n{:>8} {:>10} {:>10}", "amp", "P(1)", "ideal");
    let mut peak_amp = 0.0;
    let mut peak_p1 = 0.0f64;
    for (i, &amp) in amps.iter().enumerate() {
        let program = workloads::rabi_program(&inst, q, i)?;
        // Shot-based readout, as on hardware.
        let mut machine = QuMa::new(inst.clone(), SimConfig::default());
        machine.load(&program)?;
        let shots = 300;
        let mut ones = 0u32;
        for shot in 0..shots {
            machine.reset_with_seed(shot);
            machine.run();
            ones += machine.measurement_value(q).unwrap() as u32;
        }
        let p1 = ones as f64 / shots as f64;
        if p1 > peak_p1 {
            peak_p1 = p1;
            peak_amp = amp;
        }
        println!(
            "{amp:>8.3} {p1:>10.3} {:>10.3}",
            workloads::rabi_expected_p1(amp)
        );
    }
    println!(
        "\ncalibrated pi-pulse amplitude: {peak_amp:.3} (ideal 1.000) -> configure X := X_AMP at that amplitude"
    );
    Ok(())
}
