//! Comprehensive feedback control (Fig. 5): branch on a measurement
//! result with FMR/CMP/BR, validated exactly like the paper — the
//! measurement unit produces alternating mock results and the selected
//! X/Y gates must alternate.
//!
//! Run with: `cargo run --release --example cfc_feedback`

use eqasm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inst = Instantiation::paper_two_qubit();
    // Fig. 5 wrapped in a counted loop: measure qubit 1; if the result
    // is 1 apply Y to qubit 0, else X.
    let source = "\
        SMIS S0, {0}\n\
        SMIS S1, {1}\n\
        LDI R0, 1\n\
        LDI r2, 0\n\
        LDI r3, 6\n\
        LDI r4, 1\n\
        loop:\n\
        QWAIT 100\n\
        0, MEASZ S1\n\
        QWAIT 30\n\
        FMR R1, Q1        # fetch msmt result (stalls until valid)\n\
        CMP R1, R0        # compare\n\
        BR EQ, eq_path    # jump if R0 == R1\n\
        ne_path:\n\
        X S0              # happens if msmt result is 0\n\
        BR ALWAYS, next\n\
        eq_path:\n\
        Y S0              # happens if msmt result is 1\n\
        next:\n\
        QWAIT 10\n\
        ADD r2, r2, r4\n\
        CMP r2, r3\n\
        BR NE, loop\n\
        STOP";
    let program = assemble(source, &inst)?;

    // 'The UHFQC is programmed to generate alternative mock measurement
    // results for qubit 0' (here: for the measured qubit).
    let config = SimConfig::default()
        .with_measurement_source(MeasurementSource::MockAlternating { start: false });
    let mut machine = QuMa::new(inst, config);
    machine.load(program.instructions())?;
    machine.run();

    let selected: Vec<&str> = machine
        .trace()
        .executed_ops()
        .iter()
        .filter(|(_, q, _)| *q == Qubit::new(0))
        .map(|(_, _, n)| *n)
        .collect();
    println!("mock measurement results: 0 1 0 1 0 1");
    println!("selected feedback gates : {}", selected.join(" "));
    assert_eq!(selected, vec!["X", "Y", "X", "Y", "X", "Y"]);
    println!("alternation verified — CFC works as in the paper's oscilloscope check");

    // Also report how long the classical pipeline stalled on FMR.
    println!(
        "FMR stall cycles across the run: {}",
        machine.stats().fmr_stall_cycles
    );
    Ok(())
}
