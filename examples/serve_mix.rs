//! Service-mode quickstart: submit a mixed tenant load to the
//! `eqasm-serve` job queue, stream partial histograms while it runs,
//! and verify the final results are bit-identical to the synchronous
//! engine.
//!
//! Usage: `cargo run --release --example serve_mix [shots] [workers]`

use std::time::Duration;

use eqasm::core::{Instantiation, Qubit, Topology};
use eqasm::microarch::SimConfig;
use eqasm::quantum::{NoiseModel, ReadoutModel};
use eqasm::runtime::{
    Job, JobQueue, ServeConfig, ShotEngine, Submission, WorkloadKind, WorkloadSpec,
};
use eqasm::workloads::rb_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let shots: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let workers: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);

    let queue = JobQueue::new(ServeConfig::default().with_workers(workers));
    // Two tenants: the calibration team gets 3× the pool share of the
    // bulk-benchmarking tenant, and the bulk tenant may keep at most
    // 256 shots in flight at once.
    queue.register_tenant("cal-team", 3, u64::MAX);
    queue.register_tenant("bulk", 1, 256);

    // The calibration tenant submits a prebuilt RB job...
    let inst = Instantiation::paper().with_topology(Topology::linear(1));
    let (program, _) = rb_program(&inst, Qubit::new(0), 24, 1, 0x5eed)?;
    let config = SimConfig::default()
        .with_noise(NoiseModel::with_coherence(25_000.0, 25_000.0).with_gate_error(0.0009, 0.0))
        .with_readout(ReadoutModel::symmetric(0.05));
    let rb_job = Job::new("rb-cal", inst, program)
        .with_config(config)
        .with_shots(shots)
        .with_seed(7);
    let cal = queue.submit(Submission::job("cal-team", rb_job.clone()))?;

    // ...while the bulk tenant submits a 4-instance active-reset spec
    // twice — the second submission reuses the cached program build.
    let reset = WorkloadSpec::new(
        "reset",
        WorkloadKind::ActiveReset { init_cycles: 100 },
        shots,
    )
    .with_weight(4);
    let mut bulk = queue.submit(Submission::workload("bulk", reset.clone()))?;
    bulk.extend(queue.submit(Submission::workload("bulk", reset.with_seed(1 << 40)))?);

    // Poll: streaming partial histograms, readable at any time.
    let all: Vec<_> = cal.iter().chain(&bulk).collect();
    loop {
        let snaps: Vec<_> = all.iter().map(|h| h.snapshot()).collect();
        let done: u64 = snaps.iter().map(|s| s.shots_done).sum();
        let total: u64 = snaps.iter().map(|s| s.shots_total).sum();
        let rb = &snaps[0];
        println!(
            "progress {done:>6}/{total}  (rb-cal {:>5.1}%, histogram outcomes so far: {})",
            rb.progress() * 100.0,
            rb.histogram.len()
        );
        if snaps.iter().all(|s| s.done) {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }

    // Every partial was an exact prefix; the final result is exactly
    // the synchronous engine's answer (queue and engine share the
    // same default batch partition, so the folds are identical).
    let served = cal[0].wait()?;
    let batch = ShotEngine::serial().run_job(&rb_job)?;
    assert_eq!(served.histogram, batch.histogram, "bit-identical merge");
    assert_eq!(served.stats, batch.stats);

    println!("\nfinal results (queue wait → active):");
    for handle in &all {
        let snap = handle.snapshot();
        let result = handle.wait()?;
        println!(
            "  {:>10} [{}]  {:>7} shots  {:>8.0} shots/s  {:>7.1} ms waiting, {:>7.1} ms active",
            result.name,
            snap.tenant,
            result.shots,
            result.shots_per_sec,
            snap.queue_wait.as_secs_f64() * 1e3,
            snap.active.as_secs_f64() * 1e3,
        );
    }
    let cache = queue.cache_stats();
    println!(
        "program cache: built {} programs, reused {} times",
        cache.misses, cache.hits
    );
    Ok(())
}
