//! The active qubit reset experiment of Fig. 4: fast conditional
//! execution resets a qubit to |0> regardless of its measured state,
//! limited only by readout fidelity (paper: 82.7%).
//!
//! Run with: `cargo run --release --example active_reset`

use eqasm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inst = Instantiation::paper_two_qubit();
    // Fig. 4, verbatim (plus STOP for the simulator).
    let source = "\
        SMIS S2, {2}\n\
        QWAIT 10000\n\
        X90 S2\n\
        MEASZ S2\n\
        QWAIT 50\n\
        C_X S2\n\
        MEASZ S2\n\
        QWAIT 50\n\
        STOP";
    let program = assemble(source, &inst)?;

    // The paper's result is limited by readout fidelity; use the
    // calibrated assignment error (eps ~ 9.56%, see DESIGN.md).
    let readout = ReadoutModel::paper_reset();
    let config = SimConfig::default().with_readout(readout);
    let mut machine = QuMa::new(inst, config);
    machine.load(program.instructions())?;

    let shots = 2000;
    let mut zeros = 0u32;
    let mut conditional_fired = 0u32;
    for shot in 0..shots {
        machine.reset_with_seed(shot);
        machine.run();
        let results: Vec<bool> = machine
            .trace()
            .measurement_results()
            .iter()
            .map(|(_, _, _, reported)| *reported)
            .collect();
        if !results[1] {
            zeros += 1;
        }
        // Count how often the C_X actually fired.
        let fired = machine
            .trace()
            .executed_ops()
            .iter()
            .any(|(_, _, n)| *n == "C_X");
        conditional_fired += fired as u32;
    }
    println!("active qubit reset over {shots} shots:");
    println!(
        "  conditional C_X fired in {:.1}% of shots (ideal 50%: the X90 prepares an equal superposition)",
        100.0 * conditional_fired as f64 / shots as f64
    );
    println!(
        "  P(|0>) after reset = {:.1}%   (paper: 82.7%, limited by readout fidelity)",
        100.0 * zeros as f64 / shots as f64
    );
    Ok(())
}
