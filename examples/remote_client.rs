//! The serve front door, end to end — in one process.
//!
//! Stands up the full networked service on a loopback socket (exactly
//! what `eqasm-cli serve --listen` runs for real clients): a job
//! queue with local execution slots behind the wire-v2 acceptor.
//! Then drives it as a remote client would — `Client::connect`,
//! submit a multi-tenant mix (prebuilt jobs and a workload spec),
//! stream `PartialResult` snapshots over TCP, and collect the final
//! results — verifying at every step that what crosses the wire is
//! **bit-identical** to local execution: each streamed snapshot is an
//! exact prefix of the final aggregate, and each final aggregate
//! matches a serial `ShotEngine::run_job` of the same job. (CI runs
//! the same contract against a separate `eqasm-cli serve` *process*
//! via `eqasm-cli submit --connect --verify-serial`.)
//!
//! Run with: `cargo run --release --example remote_client`

use std::net::TcpListener;
use std::sync::Arc;

use eqasm::core::{Instantiation, Qubit, Topology};
use eqasm::microarch::SimConfig;
use eqasm::quantum::{NoiseModel, ReadoutModel};
use eqasm::runtime::serve::{JobQueue, ServeConfig, Submission};
use eqasm::runtime::{
    spawn_serve, Client, Job, ServeNetConfig, ShotEngine, WorkloadKind, WorkloadSpec,
};
use eqasm::workloads::rb_program;

fn noisy_job(name: &str, shots: u64, seed: u64) -> Result<Job, Box<dyn std::error::Error>> {
    let inst = Instantiation::paper().with_topology(Topology::linear(1));
    let (program, _) = rb_program(&inst, Qubit::new(0), 12, 1, 0x5eed)?;
    let config = SimConfig::default()
        .with_noise(NoiseModel::with_coherence(20_000.0, 15_000.0).with_gate_error(0.002, 0.0))
        .with_readout(ReadoutModel::symmetric(0.05));
    Ok(Job::new(name, inst, program)
        .with_config(config)
        .with_shots(shots)
        .with_seed(seed))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let batch = 16u64;

    // The service side: a queue with two local slots behind the
    // network acceptor. Across hosts this is `eqasm-cli serve
    // --listen 0.0.0.0:7000 --workers 2`.
    let queue = Arc::new(JobQueue::new(
        ServeConfig::default()
            .with_workers(2)
            .with_batch_size(batch),
    ));
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let server = spawn_serve(
        listener,
        Arc::clone(&queue),
        ServeNetConfig::default().with_name("example-serve"),
    )?;
    println!("serve front door listening on {}", server.addr());

    // The client side: a plain TCP connection speaking wire v2.
    let client = Client::connect(server.addr().to_string())?;
    println!(
        "connected to `{}` (wire v{})",
        client.server_name(),
        client.protocol()
    );

    // A multi-tenant mix: a calibration tenant's prebuilt job plus a
    // batch tenant's two-instance workload spec.
    let cal_job = noisy_job("cal-rb", 96, 1234)?;
    let sweep = WorkloadSpec::new(
        "reset-sweep",
        WorkloadKind::ActiveReset { init_cycles: 60 },
        64,
    )
    .with_weight(2)
    .with_seed(99);

    let cal_handles = client.submit(Submission::job("cal-team", cal_job.clone()))?;
    let sweep_handles = client.submit(Submission::workload("batch-team", sweep.clone()))?;
    println!(
        "submitted: job id {} (cal) + job ids {:?} (sweep)",
        cal_handles[0].job_id(),
        sweep_handles.iter().map(|h| h.job_id()).collect::<Vec<_>>()
    );

    // Stream the calibration job: every snapshot that arrives over
    // the wire is an exact bit-identical prefix of the final answer.
    let mut streamed = 0usize;
    let cal_result = cal_handles[0].watch(|snap| {
        streamed += 1;
        println!(
            "  [stream] {:>8} {:>3}/{} shots ({:3.0}%)",
            snap.name,
            snap.shots_done,
            snap.shots_total,
            snap.progress() * 100.0
        );
    })?;
    println!("streamed {streamed} snapshots over TCP");

    let reference = ShotEngine::serial()
        .with_batch_size(batch)
        .run_job(&cal_job)?;
    assert_eq!(cal_result.histogram, reference.histogram);
    assert_eq!(cal_result.stats, reference.stats);
    assert_eq!(cal_result.mean_prob1, reference.mean_prob1);
    println!("cal job: remote aggregate bit-identical to a serial local run ✓");

    // The sweep instances: wait for finals and verify each against a
    // locally rebuilt instance (the spec is a deterministic
    // generator, so both sides construct the identical job).
    for (i, handle) in sweep_handles.iter().enumerate() {
        let remote = handle.wait()?;
        let local = ShotEngine::serial()
            .with_batch_size(batch)
            .run_job(&sweep.build_instance(i as u32)?)?;
        assert_eq!(remote.histogram, local.histogram);
        assert_eq!(remote.stats, local.stats);
        assert_eq!(remote.mean_prob1, local.mean_prob1);
        println!(
            "sweep instance {i}: {} shots, bit-identical ✓",
            remote.shots
        );
    }

    println!("\nremote client round trip complete: submit → stream → verify, all bit-identical");
    Ok(())
}
