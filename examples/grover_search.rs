//! The two-qubit Grover search of §5, including the tomography + MLE
//! fidelity analysis (paper: 85.6%, limited by the CZ gate).
//!
//! Run with: `cargo run --release --example grover_search`

use eqasm::prelude::*;
use eqasm::quantum::tomography;
use eqasm::quantum::TomographyAccumulator;
use eqasm::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let inst = Instantiation::paper_two_qubit();
    let (qa, qb) = (Qubit::new(0), Qubit::new(2));
    let target = 0b10u8;

    // Noise calibrated to the paper: the CZ dominates the error budget.
    let noise = NoiseModel::ideal().with_gate_error(0.001, 0.083);

    // First: a plain run — how often does one Grover iteration find the
    // marked state?
    let programs = workloads::grover_tomography_programs(&inst, qa, qb, target)?;
    // The last setting is (Z, Z): a computational-basis readout.
    let (_, _, zz_program) = &programs[8];
    let mut machine = QuMa::new(inst.clone(), SimConfig::default().with_noise(noise));
    machine.load(zz_program)?;
    let shots = 500;
    let mut hits = 0u32;
    for shot in 0..shots {
        machine.reset_with_seed(shot);
        machine.run();
        let results = machine.trace().measurement_results();
        let bit = |q: Qubit| {
            results
                .iter()
                .find(|(_, qq, _, _)| *qq == q)
                .map(|(_, _, _, r)| *r)
                .unwrap()
        };
        let found = ((bit(qa) as u8) << 1) | bit(qb) as u8;
        hits += (found == target) as u32;
    }
    println!(
        "Grover search for |{target:02b}>: found in {:.1}% of {shots} shots",
        100.0 * hits as f64 / shots as f64
    );

    // Second: full state tomography over the nine Pauli settings with
    // maximum-likelihood estimation, as the paper reports.
    let mut acc = TomographyAccumulator::new();
    for (idx, (ba, bb, program)) in programs.iter().enumerate() {
        let mut machine = QuMa::new(inst.clone(), SimConfig::default().with_noise(noise));
        machine.load(program)?;
        for shot in 0..400u64 {
            machine.reset_with_seed(((idx as u64) << 32) | shot);
            machine.run();
            let results = machine.trace().measurement_results();
            let bit = |q: Qubit| {
                results
                    .iter()
                    .find(|(_, qq, _, _)| *qq == q)
                    .map(|(_, _, _, r)| *r)
                    .unwrap()
            };
            acc.add_shot(*ba, *bb, bit(qa), bit(qb));
        }
    }
    let rho = tomography::mle_project(&tomography::linear_inversion(&acc.expectations()));
    let fidelity = tomography::fidelity_pure(&rho, &workloads::grover_target_state(target));
    println!(
        "algorithmic fidelity from tomography + MLE: {:.1}%   (paper: 85.6%)",
        100.0 * fidelity
    );
    Ok(())
}
