//! Live pool membership — attach, drain, kill and rediscover, in one
//! process.
//!
//! A coordinator that serves real traffic cannot be restarted to
//! resize its worker pool. This example drives one job through every
//! membership event a long-running deployment sees:
//!
//! 1. the job starts on a deliberately degraded pool (one local slot);
//! 2. a remote worker daemon is **attached mid-run**
//!    ([`JobQueue::attach_backend`]) — throughput recovers;
//! 3. the original slot is **drained** ([`JobQueue::detach_backend`])
//!    — it finishes its current batch and retires, losing nothing;
//! 4. the worker is **killed** and restarted on the same address — the
//!    [`PoolSupervisor`] notices, re-handshakes and attaches fresh
//!    slots without any coordinator involvement.
//!
//! Through all of it, batch-index-ordered folding keeps the result
//! **bit-identical** to a serial run — churn only ever moves
//! wall-clock, never a single bit of the aggregates.
//!
//! Run with: `cargo run --release --example elastic_pool`

use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

use eqasm::core::{Instantiation, Qubit, Topology};
use eqasm::microarch::{BackendSelect, SimConfig};
use eqasm::quantum::{NoiseModel, ReadoutModel};
use eqasm::runtime::serve::{JobQueue, ServeConfig, Submission};
use eqasm::runtime::{
    spawn_worker, ExecBackend, Job, LocalBackend, PoolSupervisor, ShotEngine, SupervisorConfig,
    WorkerConfig,
};
use eqasm::workloads::rb_program;

fn print_pool(queue: &JobQueue) {
    for slot in queue.pool_status() {
        println!(
            "    slot {:>2}  {:>8}  {:>4} batches  {}",
            slot.slot_id, slot.state, slot.batches_completed, slot.descriptor
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A noisy RB job: every shot consumes randomness, so any fold or
    // placement bug under churn would corrupt the aggregates visibly.
    let inst = Instantiation::paper().with_topology(Topology::linear(1));
    let (program, _) = rb_program(&inst, Qubit::new(0), 12, 1, 0xe1a5)?;
    let mut config = SimConfig::default()
        .with_noise(NoiseModel::with_coherence(25_000.0, 20_000.0).with_gate_error(0.001, 0.0))
        .with_readout(ReadoutModel::symmetric(0.05));
    config.backend = BackendSelect::Pure;
    let job = Job::new("rb-elastic", inst, program)
        .with_config(config)
        .with_shots(3000)
        .with_seed(7);

    let reference = ShotEngine::serial().with_batch_size(64).run_job(&job)?;

    // The worker fleet: one daemon on a loopback socket (across hosts:
    // `eqasm-cli worker --listen 0.0.0.0:7777`).
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let addr = listener.local_addr()?;
    let worker = spawn_worker(
        listener,
        WorkerConfig::default()
            .with_name("fleet-1")
            .with_capacity(2),
    )?;
    println!("worker daemon on {addr}");

    // Degraded start: one local slot, holding jobs through any
    // empty-pool window (the supervisor will bring capacity back).
    let queue = Arc::new(JobQueue::with_backends(
        ServeConfig::default()
            .with_batch_size(64)
            .with_hold_when_empty(true),
        vec![Box::new(LocalBackend::new(0)) as Box<dyn ExecBackend>],
    ));
    let supervisor = PoolSupervisor::spawn(
        Arc::clone(&queue),
        vec![addr.to_string()],
        SupervisorConfig::default()
            .with_probe_interval(Duration::from_millis(100))
            .with_max_backoff(Duration::from_secs(1)),
    );

    let started = Instant::now();
    let handles = queue.submit(Submission::job("lab", job))?;
    let handle = &handles[0];
    println!("\n[1] job started on a degraded pool:");
    print_pool(&queue);

    // Let the supervisor attach the fleet (it probes, sees capacity 2,
    // opens two slots).
    while queue.workers() < 3 && !handle.is_done() {
        std::thread::sleep(Duration::from_millis(10));
    }
    println!(
        "\n[2] supervisor attached the worker at t={:.2}s:",
        started.elapsed().as_secs_f64()
    );
    print_pool(&queue);

    // Drain the original local slot mid-run: it finishes its batch and
    // retires cleanly.
    queue.detach_backend(0)?;
    println!("\n[3] local slot 0 draining (finishes its batch, then retires)");

    // Kill the worker mid-run and restart it on the same address; the
    // supervisor re-handshakes and attaches replacement slots.
    std::thread::sleep(Duration::from_millis(200));
    worker.kill();
    drop(worker);
    println!(
        "\n[4] worker killed at t={:.2}s; restarting on {addr}...",
        started.elapsed().as_secs_f64()
    );
    let listener2 = {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpListener::bind(addr) {
                Ok(l) => break l,
                Err(e) if Instant::now() < deadline => {
                    let _ = e;
                    std::thread::sleep(Duration::from_millis(50));
                }
                Err(e) => return Err(e.into()),
            }
        }
    };
    let _worker2 = spawn_worker(
        listener2,
        WorkerConfig::default()
            .with_name("fleet-2")
            .with_capacity(2),
    )?;

    let sharded = handle.wait()?;
    println!(
        "\n[5] job done at t={:.2}s: {} shots, {} outcomes, {:.0} shots/s",
        started.elapsed().as_secs_f64(),
        sharded.shots,
        sharded.histogram.len(),
        sharded.shots_per_sec
    );
    print_pool(&queue);
    for w in supervisor.status() {
        println!(
            "    supervisor: {} live={} advertised={:?} attached_total={}",
            w.addr, w.live_slots, w.advertised, w.attached_total
        );
    }

    // The contract: all that churn moved wall-clock, not one bit of
    // the answer.
    assert_eq!(sharded.histogram, reference.histogram);
    assert_eq!(sharded.stats, reference.stats);
    assert_eq!(sharded.mean_prob1, reference.mean_prob1);
    println!("\nbit-identical to the serial run through attach, drain, kill and rediscovery");
    supervisor.shutdown();
    Ok(())
}
