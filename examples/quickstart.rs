//! Quickstart: assemble an eQASM program, encode it to the 32-bit
//! binary of the paper's instantiation, run it on the QuMA v2
//! microarchitecture simulator and inspect the result.
//!
//! Run with: `cargo run --example quickstart`

use eqasm::asm::encoding;
use eqasm::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The paper's instantiation: seven-qubit surface-code chip,
    //    VLIW width 2, 3-bit pre-interval, 9-bit quantum opcodes.
    let inst = Instantiation::paper();
    println!("instantiation: {}", inst.topology());

    // 2. An eQASM program in the paper's syntax (Fig. 3 style):
    //    initialise by idling, create a Bell pair on the coupled qubits
    //    2 and 0, and measure both.
    let source = "\
        SMIS S0, {2}          # target register: qubit 2\n\
        SMIS S1, {0, 2}       # target register: both qubits\n\
        SMIT T0, {(2, 0)}     # allowed pair 0 of the topology\n\
        QWAIT 10000           # 200 us initialisation by relaxation\n\
        0, H S0               # Hadamard on qubit 2\n\
        2, CNOT T0            # entangle (CNOT takes 2 cycles)\n\
        2, MEASZ S1           # simultaneous SOMQ measurement\n\
        QWAIT 50\n\
        STOP";
    let program = assemble(source, &inst)?;
    println!("\nassembled {} instructions:", program.len());
    for (addr, instr) in program.instructions().iter().enumerate() {
        println!("  {addr:3}: {}", instr.pretty(inst.ops()));
    }

    // 3. Encode to the 32-bit binary of Fig. 8 (and back).
    let words = encoding::encode_program(program.instructions(), &inst)?;
    println!("\nbinary ({} words):", words.len());
    for w in &words {
        println!("  {w:#010x}");
    }

    // 4. Execute on the cycle-accurate microarchitecture.
    let mut ones = [0u32; 2];
    let shots = 200;
    let mut machine = QuMa::new(inst.clone(), SimConfig::default());
    machine.load(program.instructions())?;
    for shot in 0..shots {
        machine.reset_with_seed(shot);
        let result = machine.run();
        assert!(result.status.is_halted());
        // Bell correlations: both qubits always agree.
        let m2 = machine.measurement_value(Qubit::new(2)).unwrap();
        let m0 = machine.measurement_value(Qubit::new(0)).unwrap();
        assert_eq!(m2, m0, "Bell pair must be perfectly correlated");
        ones[0] += m2 as u32;
        ones[1] += m0 as u32;
    }
    println!(
        "\nBell-state statistics over {shots} shots: P(1) = {:.2} / {:.2} (ideal 0.50), always correlated",
        ones[0] as f64 / shots as f64,
        ones[1] as f64 / shots as f64
    );

    // 5. The machine reports architecture-level statistics.
    let stats = machine.stats();
    println!(
        "last run: {} classical cycles, {} quantum instructions, {} bundles, {} measurements",
        stats.classical_cycles, stats.quantum_instructions, stats.bundle_words, stats.measurements
    );
    Ok(())
}
