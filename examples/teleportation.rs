//! Quantum teleportation — the paper's introduction names it as a
//! motivating application of the "quantum data, classical control"
//! paradigm, and it exercises everything eQASM adds over data-flow-only
//! ISAs: entanglement across allowed pairs, simultaneous SOMQ
//! measurement, `FMR` result fetches and *two* dependent feedback
//! branches applying the X and Z corrections.
//!
//! The surface-7 topology provides the needed line: source qubit 2 —
//! ancilla qubit 0 — target qubit 3 (allowed pairs (2,0) and (0,3)).
//!
//! Run with: `cargo run --release --example teleportation`

use eqasm::prelude::*;

/// Builds the teleportation program with a configurable preparation
/// gate on the source qubit and an optional verification gate on the
/// target after the corrections.
fn teleport_program(prep: &str, verify: Option<&str>) -> String {
    let verify_code = match verify {
        Some(g) => format!("1, {g} S3\n"),
        None => String::new(),
    };
    format!(
        "SMIS S2, {{2}}        # source\n\
         SMIS S0, {{0}}        # ancilla\n\
         SMIS S3, {{3}}        # target\n\
         SMIS S4, {{0, 2}}     # source + ancilla (SOMQ measurement)\n\
         SMIT T0, {{(0, 3)}}   # ancilla -> target\n\
         SMIT T1, {{(2, 0)}}   # source -> ancilla\n\
         LDI r0, 1\n\
         QWAIT 100\n\
         0, {prep} S2          # prepare |psi> on the source\n\
         1, H S0               # Bell pair between ancilla and target...\n\
         2, CNOT T0\n\
         2, CNOT T1            # ...Bell measurement of source + ancilla\n\
         2, H S2\n\
         1, MEASZ S4\n\
         QWAIT 30\n\
         FMR r1, q0            # ancilla outcome -> X correction\n\
         CMP r1, r0\n\
         BR NE, skip_x\n\
         X S3\n\
         skip_x:\n\
         FMR r2, q2            # source outcome -> Z correction\n\
         CMP r2, r0\n\
         BR NE, skip_z\n\
         Z S3\n\
         skip_z:\n\
         QWAIT 5\n\
         {verify_code}\
         QWAIT 5\n\
         STOP"
    )
}

fn run_case(inst: &Instantiation, prep: &str, verify: Option<&str>, shots: u64) -> (f64, [u32; 4]) {
    let program = assemble(&teleport_program(prep, verify), inst).expect("assembles");
    let mut machine = QuMa::new(inst.clone(), SimConfig::default());
    machine.load(program.instructions()).expect("loads");
    let mut p1_total = 0.0;
    let mut branch_counts = [0u32; 4];
    for shot in 0..shots {
        machine.reset_with_seed(0x7e1e ^ shot);
        let result = machine.run();
        assert!(result.status.is_halted(), "{:?}", result.status);
        let m_src = machine.measurement_value(Qubit::new(2)).unwrap() as usize;
        let m_anc = machine.measurement_value(Qubit::new(0)).unwrap() as usize;
        branch_counts[(m_src << 1) | m_anc] += 1;
        p1_total += machine.prob1(Qubit::new(3));
    }
    (p1_total / shots as f64, branch_counts)
}

fn main() {
    let inst = Instantiation::paper();
    let shots = 200;

    println!("Quantum teleportation over surface-7 qubits 2 -> 0 -> 3 ({shots} shots each)\n");
    for (prep, verify, expect, what) in [
        ("I", None, 0.0, "teleport |0>          -> target P(1)"),
        ("X", None, 1.0, "teleport |1>          -> target P(1)"),
        ("H", Some("H"), 0.0, "teleport |+>, then H  -> target P(1)"),
        (
            "X90",
            Some("XM90"),
            0.0,
            "teleport Rx(90)|0>, undo -> target P(1)",
        ),
    ] {
        let (p1, branches) = run_case(&inst, prep, verify, shots);
        println!(
            "  {what} = {p1:.4} (ideal {expect:.1}); Bell outcomes (00,01,10,11) = {branches:?}"
        );
        assert!(
            (p1 - expect).abs() < 1e-9,
            "teleportation broken for prep {prep}"
        );
    }
    println!("\nall corrections exact: the X/Z feedback branches reproduce the state on qubit 3");
    println!("(every one of the four Bell outcomes occurs, and each is corrected)");
}
