//! `eqasm-cli` — assemble, disassemble, inspect and execute eQASM
//! programs from the command line.
//!
//! ```text
//! eqasm-cli asm    <file.eqasm>            assemble; print 32-bit words
//! eqasm-cli disasm <file.hex>              decode hex words; print assembly
//! eqasm-cli run    <file.eqasm> [options]  execute on the QuMA v2 simulator
//! eqasm-cli lift   <file.eqasm>            strip timing; print the circuit
//!
//! options for `run`:
//!   --seed <n>       RNG seed (default 0)
//!   --shots <n>      repeat execution n times (default 1)
//!   --chip <name>    surface7 | two-qubit (default surface7)
//!   --trace          print the executed-operation trace
//! ```

use std::process::ExitCode;

use eqasm::asm::{disassemble_source, encoding};
use eqasm::compiler::lift_program;
use eqasm::prelude::*;

fn load_instantiation(chip: &str) -> Result<Instantiation, String> {
    match chip {
        "surface7" => Ok(Instantiation::paper()),
        "two-qubit" => Ok(Instantiation::paper_two_qubit()),
        other => Err(format!(
            "unknown chip `{other}` (expected `surface7` or `two-qubit`)"
        )),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: eqasm-cli <asm|disasm|run|lift> <file> [--seed n] [--shots n] [--chip name] [--trace]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        return usage();
    }
    let command = args[0].as_str();
    let path = args[1].as_str();

    let mut seed = 0u64;
    let mut shots = 1u64;
    let mut chip = "surface7".to_owned();
    let mut trace = false;
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().unwrap_or(0);
                i += 2;
            }
            "--shots" if i + 1 < args.len() => {
                shots = args[i + 1].parse().unwrap_or(1);
                i += 2;
            }
            "--chip" if i + 1 < args.len() => {
                chip = args[i + 1].clone();
                i += 2;
            }
            "--trace" => {
                trace = true;
                i += 1;
            }
            other => {
                eprintln!("unknown option `{other}`");
                return usage();
            }
        }
    }

    let inst = match load_instantiation(&chip) {
        Ok(inst) => inst,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let result = match command {
        "asm" => cmd_asm(&text, &inst),
        "disasm" => cmd_disasm(&text, &inst),
        "run" => cmd_run(&text, &inst, seed, shots, trace),
        "lift" => cmd_lift(&text, &inst),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_asm(text: &str, inst: &Instantiation) -> Result<(), String> {
    let program = assemble(text, inst).map_err(|e| e.to_string())?;
    let words =
        encoding::encode_program(program.instructions(), inst).map_err(|e| e.to_string())?;
    for w in words {
        println!("{w:08x}");
    }
    Ok(())
}

fn cmd_disasm(text: &str, inst: &Instantiation) -> Result<(), String> {
    let mut words = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let clean = line.trim().trim_start_matches("0x");
        if clean.is_empty() || clean.starts_with('#') {
            continue;
        }
        let w = u32::from_str_radix(clean, 16)
            .map_err(|e| format!("line {}: bad hex word `{clean}`: {e}", line_no + 1))?;
        words.push(w);
    }
    let out = disassemble_source(&words, inst).map_err(|e| e.to_string())?;
    print!("{out}");
    Ok(())
}

fn cmd_run(
    text: &str,
    inst: &Instantiation,
    seed: u64,
    shots: u64,
    trace: bool,
) -> Result<(), String> {
    let program = assemble(text, inst).map_err(|e| e.to_string())?;
    let mut machine = QuMa::new(inst.clone(), SimConfig::default().with_seed(seed));
    machine
        .load(program.instructions())
        .map_err(|e| e.to_string())?;
    let num_qubits = inst.topology().num_qubits();
    let mut ones = vec![0u64; num_qubits];
    let mut measured = vec![false; num_qubits];
    for shot in 0..shots {
        machine.reset_with_seed(seed.wrapping_add(shot));
        let result = machine.run();
        match result.status {
            RunStatus::Halted => {}
            RunStatus::MaxCycles => return Err("cycle budget exhausted".to_owned()),
            RunStatus::Fault(f) => return Err(format!("fault: {f}")),
        }
        for q in 0..num_qubits {
            if let Some(v) = machine.measurement_value(Qubit::new(q as u8)) {
                measured[q] = true;
                ones[q] += v as u64;
            }
        }
        if trace && shot == 0 {
            println!("# trace (shot 0):");
            for (cc, q, name) in machine.trace().executed_ops() {
                println!("#   cc {cc:>8}  {q}  {name}");
            }
        }
    }
    let stats = machine.stats();
    println!(
        "halted after {} classical cycles ({} instructions, {} bundles, {} measurements/shot)",
        stats.classical_cycles,
        stats.total_instructions(),
        stats.bundle_words,
        stats.measurements
    );
    for q in 0..num_qubits {
        if measured[q] {
            println!(
                "q{q}: P(1) = {:.4}  ({} / {shots} shots)",
                ones[q] as f64 / shots as f64,
                ones[q]
            );
        }
    }
    if stats.timeline_slips > 0 {
        println!("warning: {} timeline slips (issue rate exceeded)", stats.timeline_slips);
    }
    Ok(())
}

fn cmd_lift(text: &str, inst: &Instantiation) -> Result<(), String> {
    let program = assemble(text, inst).map_err(|e| e.to_string())?;
    let circuit = lift_program(program.instructions(), inst).map_err(|e| e.to_string())?;
    println!("# timing-free circuit ({} gates):", circuit.len());
    for gate in circuit.gates() {
        match &gate.kind {
            eqasm::compiler::GateKind::Single { qubit } => println!("{} q{}", gate.name, qubit.index()),
            eqasm::compiler::GateKind::Two { pair } => println!(
                "{} q{} q{}",
                gate.name,
                pair.source().index(),
                pair.target().index()
            ),
            eqasm::compiler::GateKind::Measure { qubit } => {
                println!("MEASZ q{}", qubit.index())
            }
        }
    }
    Ok(())
}
