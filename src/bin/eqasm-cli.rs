//! `eqasm-cli` — assemble, disassemble, inspect and execute eQASM
//! programs from the command line.
//!
//! ```text
//! eqasm-cli asm      <file.eqasm>            assemble; print 32-bit words
//! eqasm-cli disasm   <file.hex>              decode hex words; print assembly
//! eqasm-cli run      <file.eqasm> [options]  execute on the QuMA v2 simulator
//! eqasm-cli lift     <file.eqasm>            strip timing; print the circuit
//! eqasm-cli workload <spec> [options]        drive a built-in workload mix
//! eqasm-cli serve    <spec> [options]        same mix through the job queue:
//!                                            per-tenant fair scheduling with
//!                                            streaming progress lines
//! eqasm-cli serve    --listen <addr>         no spec: run the queue as a
//!                                            network service — remote clients
//!                                            submit over the wire protocol
//! eqasm-cli submit   <spec> --connect <addr> submit the named mix to a remote
//!                                            serve coordinator, stream partial
//!                                            results, print the final table
//! eqasm-cli status   --connect <addr> --job <id>   one snapshot per job id
//! eqasm-cli watch    --connect <addr> --job <id>   stream one job to completion
//!                    [--resume-after batches]       …skipping an already-folded prefix
//! eqasm-cli loadgen  [spec] --connect <addr> drive a running coordinator
//!                                            open-loop at stepped target
//!                                            submission rates until a
//!                                            failure-rate or p50-latency
//!                                            ceiling is breached; print the
//!                                            per-rung capacity table
//! eqasm-cli worker   --listen <addr>         long-lived remote shot worker
//!                                            speaking the versioned wire
//!                                            protocol
//!
//! options for `run`:
//!   --seed <n>       RNG seed (default 0)
//!   --shots <n>      repeat execution n times (default 1)
//!   --workers <n>    shot-engine worker threads (default: machine parallelism)
//!   --chip <name>    surface7 | two-qubit (default surface7)
//!   --trace          print the executed-operation trace of shot 0
//!
//! workload specs: rabi | allxy | rb | active-reset | mix
//! options for `workload` and `serve`:
//!   --shots <n>      shots per job instance (default 400)
//!   --workers <n>    local worker threads (default: machine parallelism)
//!   --seed <n>       base seed (default 0)
//!   --remote <a,b>   (serve only) comma-separated worker addresses; the
//!                    queue opens one slot per advertised worker slot and
//!                    mixes them with the local pool
//!   --rediscover <s> (serve only) run a pool supervisor that re-probes
//!                    the --remote (and --registry) addresses every <s>
//!                    seconds, reattaching workers that restart mid-run
//!                    and attaching newly listed ones
//!   --registry <f>   (serve only, with --rediscover) a worker-address
//!                    file (one host:port per line) re-read every probe
//!                    sweep; addresses that leave the file are drained
//!   --metrics <a>    (serve and worker) serve Prometheus text metrics
//!                    on `GET http://<a>/metrics`; a bare port binds
//!                    loopback (see METRICS.md for the series catalogue)
//!   --journal <dir>  (serve only) durable coordinator: append every
//!                    admission and folded range to a write-ahead
//!                    journal in <dir>; on startup, replay the journal
//!                    and resume incomplete jobs bit-identically (see
//!                    PROTOCOL.md "Durability")
//!   --journal-fsync <every|batch|off>
//!                    journal fsync policy (default batch: group-commit
//!                    one fsync per append burst)
//!
//! options for `submit`:
//!   --connect <addr>  the serve coordinator (required)
//!   --shots / --seed  as for `serve`
//!   --verify-serial   after the remote run, re-run every job locally on a
//!                     serial engine and require bit-identical aggregates
//!   --psk-file <f>    authenticate with the fleet pre-shared key
//!
//! options for `loadgen` (spec defaults to `mix`):
//!   --connect <addr>       the serve coordinator (required)
//!   --scrape <addr>        the coordinator's `/metrics` endpoint — scraped
//!                          per rung for server-side truth (queue depth,
//!                          admission rejections, shots completed)
//!   --initial-rps <r>      first rung's target submissions/sec (default 4)
//!   --rps-factor <f>       multiply the rate by f per rung (default 2)
//!   --rps-step <r>         …or add r per rung instead
//!   --max-rps <r>          stop ramping past this rate (default 256)
//!   --rung-secs <s>        measurement window per rung (default 5)
//!   --drain-secs <s>       post-window completion grace (default 10)
//!   --stop-failure-rate <x>  stop ceiling on failed/offered (default 0.4)
//!   --stop-p50-ms <ms>     stop ceiling on median latency (default 2000)
//!   --connections <n>      concurrent submitter connections (default 4)
//!   --watchers <n>         watcher connections for --subscribe-ratio
//!   --subscribe-ratio <x>  fraction of jobs watched via SUBSCRIBE (0..=1)
//!   --shots / --seed       per-job shots and base seed, as for `submit`
//!   --json                 print the `capacity` JSON object instead of
//!                          (well, after) the rung table
//!   --churn                subscriber-churn sweep instead of a rate ramp:
//!                          cycle connect/subscribe/resume/disconnect
//!                          watchers, verify resume correctness, report
//!                          cycles/sec and reactor wakeups/sec
//!   --churn-secs <s>       churn sweep duration (default 5)
//!
//! options for `worker`:
//!   --listen <addr>  address to bind, e.g. 127.0.0.1:7777 (required)
//!   --capacity <n>   advertised concurrent slots (default: parallelism)
//!   --name <s>       worker name shown to coordinators (default: hostname-ish)
//!   --psk-file <f>   require the fleet pre-shared key on every connection
//!   --job-cache <n>  per-connection v2 job-registry capacity (default 8)
//!   --max-frame <n>  per-connection frame-size budget, bytes
//!   --rate-limit <n> per-connection request-rate budget, requests/sec
//!   --metrics <a>    Prometheus endpoint, as for `serve`
//!
//! `serve --listen` and `serve ... --remote` accept --psk-file too: the
//! same key then guards the client front door and the worker pool.
//!
//! `worker` drains cleanly on SIGINT/SIGTERM: it stops accepting, lets
//! in-flight batches finish (coordinators see slots retire, never a
//! lost batch), then exits — so rolling restarts compose with a
//! coordinator-side `--rediscover` supervisor into zero-intervention
//! fleet churn.
//! ```

use std::process::ExitCode;

use eqasm::asm::{disassemble_source, encoding};
use eqasm::compiler::lift_program;
use eqasm::prelude::*;
use eqasm::runtime::{
    capacity_sweep, churn_sweep, Ceilings, ChurnConfig, Client, ConnectOptions, ExecBackend,
    FsyncPolicy, Job, JobHandle, JobQueue, JournalConfig, LoadClass, LoadSpec, LocalBackend,
    MixedWorkload, PartialResult, PoolSupervisor, Psk, RemoteBackend, ServeConfig, ServeNetConfig,
    ShotEngine, Submission, SupervisorConfig, SweepConfig, SweepTarget, WorkerConfig, WorkloadKind,
    WorkloadReport, WorkloadSpec,
};

/// SIGINT/SIGTERM → one atomic flag, so the worker daemon can drain
/// (finish in-flight batches, then exit) instead of dying mid-range.
/// Raw `signal(2)` over FFI — the environment has no `libc`-style
/// crate, and an async-signal-safe handler needs nothing more than a
/// single atomic store.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    /// Flipped by the handler; `run_worker_until` watches it.
    pub static SHUTDOWN: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        SHUTDOWN.store(true, Ordering::Release);
        // Wake a serve reactor parked in epoll_wait/poll with no
        // timeout — an atomic load plus one write(2) on a pipe, both
        // async-signal-safe. (The syscalls also return EINTR on
        // signal delivery, but only if the signal lands on the
        // reactor's own thread; the wake covers every thread.)
        eqasm::runtime::wake_serve_shutdown();
    }

    extern "C" {
        // The previous handler may be SIG_DFL (null), so the return
        // type must not be a (non-nullable) fn pointer.
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

fn load_instantiation(chip: &str) -> Result<Instantiation, String> {
    match chip {
        "surface7" => Ok(Instantiation::paper()),
        "two-qubit" => Ok(Instantiation::paper_two_qubit()),
        other => Err(format!(
            "unknown chip `{other}` (expected `surface7` or `two-qubit`)"
        )),
    }
}

/// The `loadgen` subcommand's knobs, parsed alongside the shared
/// flags and rejected on any other subcommand.
struct LoadgenOpts {
    initial_rps: f64,
    rps_step: Option<f64>,
    rps_factor: Option<f64>,
    max_rps: f64,
    rung_secs: f64,
    drain_secs: f64,
    stop_failure_rate: f64,
    stop_p50_ms: f64,
    connections: usize,
    watchers: usize,
    subscribe_ratio: f64,
    scrape: Option<String>,
    json: bool,
    churn: bool,
    churn_secs: f64,
}

impl Default for LoadgenOpts {
    fn default() -> LoadgenOpts {
        LoadgenOpts {
            initial_rps: 4.0,
            rps_step: None,
            rps_factor: None,
            max_rps: 256.0,
            rung_secs: 5.0,
            drain_secs: 10.0,
            stop_failure_rate: 0.4,
            stop_p50_ms: 2000.0,
            connections: 4,
            watchers: 2,
            subscribe_ratio: 0.0,
            scrape: None,
            json: false,
            churn: false,
            churn_secs: 5.0,
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: eqasm-cli <asm|disasm|run|lift> <file> [--seed n] [--shots n] [--workers n] [--chip name] [--trace]\n       eqasm-cli <workload|serve> <rabi|allxy|rb|active-reset|mix> [--shots n] [--workers n] [--seed n] [--remote host:port,...] [--rediscover secs] [--registry file] [--psk-file f] [--metrics addr] [--journal dir] [--journal-fsync every|batch|off]\n       eqasm-cli serve --listen <addr> [--workers n] [--remote ...] [--rediscover secs] [--registry file] [--psk-file f] [--metrics addr] [--journal dir] [--journal-fsync every|batch|off]\n       eqasm-cli submit <rabi|allxy|rb|active-reset|mix> --connect <addr> [--shots n] [--seed n] [--verify-serial] [--psk-file f]\n       eqasm-cli status --connect <addr> --job <id> [--job <id> ...] [--psk-file f]\n       eqasm-cli loadgen [rabi|allxy|rb|active-reset|stabilizer|mix] --connect <addr> [--scrape addr] [--initial-rps r] [--rps-factor f | --rps-step r] [--max-rps r] [--rung-secs s] [--drain-secs s] [--stop-failure-rate x] [--stop-p50-ms ms] [--connections n] [--watchers n] [--subscribe-ratio x] [--shots n] [--seed n] [--json] [--churn] [--churn-secs s] [--psk-file f]\n       eqasm-cli watch --connect <addr> --job <id> [--resume-after batches] [--psk-file f]\n       eqasm-cli worker --listen <addr> [--capacity n] [--name s] [--psk-file f] [--job-cache n] [--max-frame bytes] [--rate-limit req/s] [--metrics addr]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    let command = args[0].as_str();

    // `worker`, `status` and `watch` take only flags; `serve` may run
    // spec-less as a pure network service (`serve --listen`), and
    // `loadgen`'s spec is optional (defaulting to `mix`).
    let flag_start = match command {
        "worker" | "status" | "watch" => 1,
        "serve" | "loadgen" if args.len() > 1 && args[1].starts_with("--") => 1,
        _ => 2,
    };
    if args.len() < flag_start {
        return usage();
    }
    let target = if flag_start == 1 {
        ""
    } else {
        args[1].as_str()
    };

    let mut seed = 0u64;
    let mut shots: Option<u64> = None;
    let mut workers = 0usize;
    let mut chip = "surface7".to_owned();
    let mut trace = false;
    let mut listen: Option<String> = None;
    let mut capacity: Option<usize> = None;
    let mut name: Option<String> = None;
    let mut remotes: Vec<String> = Vec::new();
    let mut rediscover: Option<f64> = None;
    let mut registry: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut psk_file: Option<String> = None;
    let mut job_ids: Vec<u64> = Vec::new();
    let mut verify_serial = false;
    let mut resume_after: Option<u64> = None;
    let mut job_cache: Option<usize> = None;
    let mut max_frame: Option<u32> = None;
    let mut rate_limit: Option<u32> = None;
    let mut metrics_addr: Option<String> = None;
    let mut journal_dir: Option<String> = None;
    let mut journal_fsync: Option<FsyncPolicy> = None;
    let mut lg = LoadgenOpts::default();
    // Flags that only mean something to `loadgen`; accepting them
    // elsewhere would silently do nothing.
    let mut loadgen_flags: Vec<&'static str> = Vec::new();
    let mut i = flag_start;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().unwrap_or(0);
                i += 2;
            }
            "--shots" if i + 1 < args.len() => {
                shots = args[i + 1].parse().ok();
                i += 2;
            }
            "--workers" if i + 1 < args.len() => {
                workers = args[i + 1].parse().unwrap_or(0);
                i += 2;
            }
            "--chip" if i + 1 < args.len() => {
                chip = args[i + 1].clone();
                i += 2;
            }
            "--trace" => {
                trace = true;
                i += 1;
            }
            "--listen" if i + 1 < args.len() => {
                listen = Some(args[i + 1].clone());
                i += 2;
            }
            "--capacity" if i + 1 < args.len() => {
                capacity = args[i + 1].parse().ok();
                i += 2;
            }
            "--name" if i + 1 < args.len() => {
                name = Some(args[i + 1].clone());
                i += 2;
            }
            "--remote" if i + 1 < args.len() => {
                remotes.extend(
                    args[i + 1]
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_owned),
                );
                i += 2;
            }
            "--rediscover" if i + 1 < args.len() => {
                rediscover = args[i + 1].parse().ok().filter(|s: &f64| *s > 0.0);
                if rediscover.is_none() {
                    eprintln!("error: --rediscover wants a positive interval in seconds");
                    return usage();
                }
                i += 2;
            }
            "--registry" if i + 1 < args.len() => {
                registry = Some(args[i + 1].clone());
                i += 2;
            }
            "--connect" if i + 1 < args.len() => {
                connect = Some(args[i + 1].clone());
                i += 2;
            }
            "--psk-file" if i + 1 < args.len() => {
                psk_file = Some(args[i + 1].clone());
                i += 2;
            }
            "--job" if i + 1 < args.len() => {
                match args[i + 1].parse() {
                    Ok(id) => job_ids.push(id),
                    Err(_) => {
                        eprintln!("error: --job wants a numeric job id");
                        return usage();
                    }
                }
                i += 2;
            }
            "--verify-serial" => {
                verify_serial = true;
                i += 1;
            }
            "--resume-after" if i + 1 < args.len() => {
                match args[i + 1].parse() {
                    Ok(n) => resume_after = Some(n),
                    Err(_) => {
                        eprintln!(
                            "error: --resume-after wants a folded-batch count, got `{}`",
                            args[i + 1]
                        );
                        return usage();
                    }
                }
                i += 2;
            }
            // The budget flags must never fail open: a typo in a
            // security limit silently disabling it is worse than a
            // refusal to start.
            "--job-cache" if i + 1 < args.len() => {
                match args[i + 1].parse() {
                    Ok(n) => job_cache = Some(n),
                    Err(_) => {
                        eprintln!(
                            "error: --job-cache wants a job count, got `{}`",
                            args[i + 1]
                        );
                        return usage();
                    }
                }
                i += 2;
            }
            "--max-frame" if i + 1 < args.len() => {
                match args[i + 1].parse() {
                    Ok(n) => max_frame = Some(n),
                    Err(_) => {
                        eprintln!(
                            "error: --max-frame wants a byte count, got `{}`",
                            args[i + 1]
                        );
                        return usage();
                    }
                }
                i += 2;
            }
            "--metrics" if i + 1 < args.len() => {
                metrics_addr = Some(args[i + 1].clone());
                i += 2;
            }
            "--journal" if i + 1 < args.len() => {
                journal_dir = Some(args[i + 1].clone());
                i += 2;
            }
            // Like the budget flags: a typo in a durability setting
            // must refuse to start, not silently fall back.
            "--journal-fsync" if i + 1 < args.len() => {
                match FsyncPolicy::parse(&args[i + 1]) {
                    Some(policy) => journal_fsync = Some(policy),
                    None => {
                        eprintln!(
                            "error: --journal-fsync wants every|batch|off, got `{}`",
                            args[i + 1]
                        );
                        return usage();
                    }
                }
                i += 2;
            }
            "--rate-limit" if i + 1 < args.len() => {
                match args[i + 1].parse() {
                    Ok(n) => rate_limit = Some(n),
                    Err(_) => {
                        eprintln!(
                            "error: --rate-limit wants requests/sec, got `{}`",
                            args[i + 1]
                        );
                        return usage();
                    }
                }
                i += 2;
            }
            // The loadgen knobs fail closed like the budget flags: a
            // typo in a ceiling must refuse to start, not silently
            // sweep with the default.
            "--initial-rps" if i + 1 < args.len() => {
                match args[i + 1].parse::<f64>().ok().filter(|r| *r > 0.0) {
                    Some(r) => lg.initial_rps = r,
                    None => {
                        eprintln!("error: --initial-rps wants a positive rate");
                        return usage();
                    }
                }
                loadgen_flags.push("--initial-rps");
                i += 2;
            }
            "--rps-step" if i + 1 < args.len() => {
                match args[i + 1].parse::<f64>().ok().filter(|r| *r > 0.0) {
                    Some(r) => lg.rps_step = Some(r),
                    None => {
                        eprintln!("error: --rps-step wants a positive rate increment");
                        return usage();
                    }
                }
                loadgen_flags.push("--rps-step");
                i += 2;
            }
            "--rps-factor" if i + 1 < args.len() => {
                match args[i + 1].parse::<f64>().ok().filter(|f| *f > 1.0) {
                    Some(f) => lg.rps_factor = Some(f),
                    None => {
                        eprintln!("error: --rps-factor wants a factor > 1");
                        return usage();
                    }
                }
                loadgen_flags.push("--rps-factor");
                i += 2;
            }
            "--max-rps" if i + 1 < args.len() => {
                match args[i + 1].parse::<f64>().ok().filter(|r| *r > 0.0) {
                    Some(r) => lg.max_rps = r,
                    None => {
                        eprintln!("error: --max-rps wants a positive rate");
                        return usage();
                    }
                }
                loadgen_flags.push("--max-rps");
                i += 2;
            }
            "--rung-secs" if i + 1 < args.len() => {
                match args[i + 1].parse::<f64>().ok().filter(|s| *s > 0.0) {
                    Some(s) => lg.rung_secs = s,
                    None => {
                        eprintln!("error: --rung-secs wants a positive duration");
                        return usage();
                    }
                }
                loadgen_flags.push("--rung-secs");
                i += 2;
            }
            "--drain-secs" if i + 1 < args.len() => {
                match args[i + 1].parse::<f64>().ok().filter(|s| *s >= 0.0) {
                    Some(s) => lg.drain_secs = s,
                    None => {
                        eprintln!("error: --drain-secs wants a duration in seconds");
                        return usage();
                    }
                }
                loadgen_flags.push("--drain-secs");
                i += 2;
            }
            "--stop-failure-rate" if i + 1 < args.len() => {
                match args[i + 1]
                    .parse::<f64>()
                    .ok()
                    .filter(|x| (0.0..=1.0).contains(x))
                {
                    Some(x) => lg.stop_failure_rate = x,
                    None => {
                        eprintln!("error: --stop-failure-rate wants a fraction in 0..=1");
                        return usage();
                    }
                }
                loadgen_flags.push("--stop-failure-rate");
                i += 2;
            }
            "--stop-p50-ms" if i + 1 < args.len() => {
                match args[i + 1].parse::<f64>().ok().filter(|x| *x > 0.0) {
                    Some(x) => lg.stop_p50_ms = x,
                    None => {
                        eprintln!("error: --stop-p50-ms wants a positive duration in ms");
                        return usage();
                    }
                }
                loadgen_flags.push("--stop-p50-ms");
                i += 2;
            }
            "--connections" if i + 1 < args.len() => {
                match args[i + 1].parse::<usize>().ok().filter(|n| *n > 0) {
                    Some(n) => lg.connections = n,
                    None => {
                        eprintln!("error: --connections wants a positive count");
                        return usage();
                    }
                }
                loadgen_flags.push("--connections");
                i += 2;
            }
            "--watchers" if i + 1 < args.len() => {
                match args[i + 1].parse::<usize>() {
                    Ok(n) => lg.watchers = n,
                    Err(_) => {
                        eprintln!("error: --watchers wants a connection count");
                        return usage();
                    }
                }
                loadgen_flags.push("--watchers");
                i += 2;
            }
            "--subscribe-ratio" if i + 1 < args.len() => {
                match args[i + 1]
                    .parse::<f64>()
                    .ok()
                    .filter(|x| (0.0..=1.0).contains(x))
                {
                    Some(x) => lg.subscribe_ratio = x,
                    None => {
                        eprintln!("error: --subscribe-ratio wants a fraction in 0..=1");
                        return usage();
                    }
                }
                loadgen_flags.push("--subscribe-ratio");
                i += 2;
            }
            "--scrape" if i + 1 < args.len() => {
                lg.scrape = Some(args[i + 1].clone());
                loadgen_flags.push("--scrape");
                i += 2;
            }
            "--json" => {
                lg.json = true;
                loadgen_flags.push("--json");
                i += 1;
            }
            "--churn" => {
                lg.churn = true;
                loadgen_flags.push("--churn");
                i += 1;
            }
            "--churn-secs" if i + 1 < args.len() => {
                match args[i + 1].parse::<f64>().ok().filter(|s| *s > 0.0) {
                    Some(s) => lg.churn_secs = s,
                    None => {
                        eprintln!("error: --churn-secs wants a positive duration");
                        return usage();
                    }
                }
                loadgen_flags.push("--churn-secs");
                i += 2;
            }
            other => {
                eprintln!("unknown option `{other}`");
                return usage();
            }
        }
    }

    // One parse of the optional PSK file, shared by every networked
    // subcommand.
    let psk = match psk_file.as_deref().map(Psk::from_file) {
        None => None,
        Some(Ok(psk)) => Some(psk),
        Some(Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    if command != "loadgen" && !loadgen_flags.is_empty() {
        eprintln!(
            "error: {} applies to `loadgen` only",
            loadgen_flags.join(", ")
        );
        return usage();
    }

    // The journal is a property of the coordinator; accepting the flags
    // anywhere else would silently do nothing.
    if journal_dir.is_some() && command != "serve" {
        eprintln!("error: --journal applies to `serve` only");
        return usage();
    }
    if journal_fsync.is_some() && journal_dir.is_none() {
        eprintln!("error: --journal-fsync requires --journal <dir>");
        return usage();
    }
    let journal_config = journal_dir.map(|dir| {
        let mut jc = JournalConfig::new(dir);
        if let Some(policy) = journal_fsync {
            jc = jc.with_fsync(policy);
        }
        jc
    });

    if command == "worker" {
        let Some(addr) = listen else {
            eprintln!("error: worker requires --listen <addr>");
            return usage();
        };
        return match cmd_worker(
            &addr,
            capacity,
            name,
            psk,
            job_cache,
            max_frame,
            rate_limit,
            metrics_addr.as_deref(),
        ) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if command == "loadgen" {
        let Some(addr) = connect else {
            eprintln!("error: loadgen requires --connect <addr>");
            return usage();
        };
        let spec = if target.is_empty() { "mix" } else { target };
        return match cmd_loadgen(spec, &addr, shots.unwrap_or(200), seed, psk, &lg) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if matches!(command, "submit" | "status" | "watch") {
        let Some(addr) = connect else {
            eprintln!("error: {command} requires --connect <addr>");
            return usage();
        };
        let result = match command {
            "submit" => cmd_submit(
                target,
                &addr,
                shots.unwrap_or(400),
                seed,
                psk,
                verify_serial,
            ),
            "status" => cmd_status(&addr, &job_ids, psk),
            _ => cmd_watch(&addr, &job_ids, resume_after, psk),
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    if command == "workload" || command == "serve" {
        let result = if command == "workload" {
            cmd_workload(target, shots.unwrap_or(400), workers, seed)
        } else if let Some(listen_addr) = listen {
            if !target.is_empty() {
                eprintln!(
                    "error: `serve --listen` runs as a pure network service; drive it with \
                     `eqasm-cli submit <spec> --connect <addr>` instead of a local spec"
                );
                return usage();
            }
            cmd_serve_listen(
                &listen_addr,
                workers,
                &remotes,
                rediscover,
                registry,
                psk,
                max_frame,
                rate_limit,
                metrics_addr.as_deref(),
                journal_config,
            )
        } else {
            cmd_serve(
                target,
                shots.unwrap_or(400),
                workers,
                seed,
                &remotes,
                rediscover,
                registry,
                psk,
                metrics_addr.as_deref(),
                journal_config,
            )
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let inst = match load_instantiation(&chip) {
        Ok(inst) => inst,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = match std::fs::read_to_string(target) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {target}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let result = match command {
        "asm" => cmd_asm(&text, &inst),
        "disasm" => cmd_disasm(&text, &inst),
        "run" => cmd_run(&text, &inst, seed, shots.unwrap_or(1), workers, trace),
        "lift" => cmd_lift(&text, &inst),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_asm(text: &str, inst: &Instantiation) -> Result<(), String> {
    let program = assemble(text, inst).map_err(|e| e.to_string())?;
    let words =
        encoding::encode_program(program.instructions(), inst).map_err(|e| e.to_string())?;
    for w in words {
        println!("{w:08x}");
    }
    Ok(())
}

fn cmd_disasm(text: &str, inst: &Instantiation) -> Result<(), String> {
    let mut words = Vec::new();
    for (line_no, line) in text.lines().enumerate() {
        let clean = line.trim().trim_start_matches("0x");
        if clean.is_empty() || clean.starts_with('#') {
            continue;
        }
        let w = u32::from_str_radix(clean, 16)
            .map_err(|e| format!("line {}: bad hex word `{clean}`: {e}", line_no + 1))?;
        words.push(w);
    }
    let out = disassemble_source(&words, inst).map_err(|e| e.to_string())?;
    print!("{out}");
    Ok(())
}

fn cmd_run(
    text: &str,
    inst: &Instantiation,
    seed: u64,
    shots: u64,
    workers: usize,
    trace: bool,
) -> Result<(), String> {
    let program = assemble(text, inst).map_err(|e| e.to_string())?;

    if trace {
        // The trace of shot 0, reproduced on a local machine — the
        // engine disables trace recording on its workers.
        let mut machine = QuMa::new(inst.clone(), SimConfig::default().with_seed(seed));
        machine
            .load(program.instructions())
            .map_err(|e| e.to_string())?;
        machine.run_shot(seed);
        println!("# trace (shot 0):");
        for (cc, q, name) in machine.trace().executed_ops() {
            println!("#   cc {cc:>8}  {q}  {name}");
        }
    }

    let job = Job::new("cli-run", inst.clone(), program.instructions().to_vec())
        .with_config(SimConfig::default().with_seed(seed))
        .with_shots(shots)
        .with_seed(seed);
    let engine = ShotEngine::new(workers);
    let result = engine.run_job(&job).map_err(|e| e.to_string())?;

    if let Some((shot, status)) = &result.first_failure {
        return Err(format!(
            "{} of {} shots did not halt (first: shot {shot}: {status})",
            result.non_halted, result.shots
        ));
    }

    let per_shot = |v: u64| v / shots.max(1);
    println!(
        "halted after {} classical cycles/shot ({} instructions, {} bundles, {} measurements/shot)",
        per_shot(result.stats.classical_cycles),
        per_shot(result.stats.total_instructions()),
        per_shot(result.stats.bundle_words),
        per_shot(result.stats.measurements)
    );
    println!(
        "{} shots on {} workers in {:.1} ms ({:.0} shots/s; latency p50 {:.1} µs, p95 {:.1} µs, p99 {:.1} µs)",
        result.shots,
        engine.workers(),
        result.elapsed.as_secs_f64() * 1e3,
        result.shots_per_sec,
        result.latency.p50_ns as f64 / 1e3,
        result.latency.p95_ns as f64 / 1e3,
        result.latency.p99_ns as f64 / 1e3,
    );
    for q in 0..inst.topology().num_qubits() {
        // Count from the histogram: a qubit whose measurement is
        // conditional may be measured in only a subset of shots, so
        // the denominator is measured shots, not total shots.
        let (mut ones, mut measured) = (0u64, 0u64);
        for (outcome, &count) in result.histogram.iter() {
            if let Some(v) = outcome.get(q) {
                measured += count;
                if v {
                    ones += count;
                }
            }
        }
        if measured > 0 {
            println!(
                "q{q}: P(1) = {:.4}  ({ones} / {measured} measured shots)",
                ones as f64 / measured as f64
            );
        }
    }
    if result.histogram.len() > 1 {
        println!("outcomes:");
        for (outcome, count) in result.histogram.iter() {
            println!(
                "  {outcome}  {count:>8}  ({:.2}%)",
                *count as f64 * 100.0 / shots.max(1) as f64
            );
        }
    }
    if result.stats.timeline_slips > 0 {
        println!(
            "warning: {} timeline slips (issue rate exceeded)",
            result.stats.timeline_slips
        );
    }
    Ok(())
}

/// Builds the named built-in workload list: one weighted spec per
/// traffic class, shared by the `workload` (synchronous mix) and
/// `serve` (job queue) subcommands.
fn built_in_specs(spec: &str, shots: u64, seed: u64) -> Result<Vec<WorkloadSpec>, String> {
    let rabi = || {
        let amplitudes: Vec<f64> = (0..8).map(|i| i as f64 / 4.0).collect();
        WorkloadSpec::new(
            "rabi",
            WorkloadKind::Rabi {
                amplitudes,
                amplitude_index: 2,
            },
            shots,
        )
    };
    let allxy = || {
        WorkloadSpec::new(
            "allxy",
            WorkloadKind::AllXy {
                round: 21,
                init_cycles: 100,
            },
            shots,
        )
    };
    let rb = || {
        WorkloadSpec::new(
            "rb",
            WorkloadKind::Rb {
                k: 48,
                interval_cycles: 1,
                sequence_seed: seed ^ 0x5eed,
            },
            shots,
        )
    };
    let reset = || {
        WorkloadSpec::new(
            "active-reset",
            WorkloadKind::ActiveReset { init_cycles: 100 },
            shots,
        )
    };
    // Clifford-only brick-wall chains above the 10-qubit dense
    // ceiling: program-aware selection routes them to the stabilizer
    // backend — the scale regime no dense backend reaches. The mix
    // carries a 12-qubit chain (just past the ceiling, cheap even
    // when CI forces the dense path); the standalone spec goes wider.
    let stabilizer = |qubits: usize| {
        WorkloadSpec::new(
            "stabilizer",
            WorkloadKind::CliffordChain { qubits, layers: 2 },
            shots,
        )
    };

    match spec {
        "rabi" => Ok(vec![rabi().with_seed(seed)]),
        "allxy" => Ok(vec![allxy().with_seed(seed)]),
        "rb" => Ok(vec![rb().with_seed(seed)]),
        "active-reset" => Ok(vec![reset().with_seed(seed)]),
        "stabilizer" => Ok(vec![stabilizer(16).with_seed(seed)]),
        "mix" => Ok(vec![
            rb().with_seed(seed).with_weight(4),
            allxy().with_seed(seed ^ 1).with_weight(2),
            reset().with_seed(seed ^ 2).with_weight(2),
            rabi().with_seed(seed ^ 3),
            stabilizer(12).with_seed(seed ^ 4),
        ]),
        other => Err(format!(
            "unknown workload `{other}` (expected rabi|allxy|rb|active-reset|stabilizer|mix)"
        )),
    }
}

/// Builds the named workload mix and drives it on the shot engine.
fn cmd_workload(spec: &str, shots: u64, workers: usize, seed: u64) -> Result<(), String> {
    let mut mix = MixedWorkload::new();
    for s in built_in_specs(spec, shots, seed)? {
        mix = mix.push(s);
    }

    let engine = ShotEngine::new(workers);
    let report = mix.run(&engine).map_err(|e| e.to_string())?;
    println!(
        "workload `{spec}`: {} jobs, {} shots on {} workers",
        report.aggregate.jobs,
        report.aggregate.shots,
        engine.workers()
    );
    println!(
        "{:>14} {:>6} {:>9} {:>11} {:>10} {:>10} {:>10} {:>8}",
        "workload", "jobs", "shots", "shots/s", "p50 µs", "p95 µs", "p99 µs", "slips"
    );
    for w in report.per_workload.iter().chain([&report.aggregate]) {
        print_workload_row(w);
    }
    Ok(())
}

fn print_workload_row(w: &WorkloadReport) {
    println!(
        "{:>14} {:>6} {:>9} {:>11.0} {:>10.1} {:>10.1} {:>10.1} {:>8}",
        w.name,
        w.jobs,
        w.shots,
        w.shots_per_sec,
        w.latency.p50_ns as f64 / 1e3,
        w.latency.p95_ns as f64 / 1e3,
        w.latency.p99_ns as f64 / 1e3,
        w.stats.timeline_slips,
    );
}

/// Spawns the Prometheus `/metrics` listener when `--metrics` was
/// given. The returned handle must stay alive for the command's
/// lifetime — dropping it stops the endpoint.
fn spawn_metrics(addr: Option<&str>) -> Result<Option<eqasm::runtime::MetricsServer>, String> {
    let Some(addr) = addr else {
        return Ok(None);
    };
    let server =
        eqasm::runtime::MetricsServer::spawn(addr, eqasm::runtime::metrics::default_registry())
            .map_err(|e| format!("cannot bind metrics endpoint {addr}: {e}"))?;
    println!("metrics: http://{}/metrics", server.local_addr());
    Ok(Some(server))
}

/// Runs the long-lived remote shot worker: binds `addr`, prints one
/// status line and serves coordinators until killed.
#[allow(clippy::too_many_arguments)]
fn cmd_worker(
    addr: &str,
    capacity: Option<usize>,
    name: Option<String>,
    psk: Option<Psk>,
    job_cache: Option<usize>,
    max_frame: Option<u32>,
    rate_limit: Option<u32>,
    metrics_addr: Option<&str>,
) -> Result<(), String> {
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let _metrics = spawn_metrics(metrics_addr)?;
    let mut config = WorkerConfig::default();
    if let Some(capacity) = capacity {
        config = config.with_capacity(capacity);
    }
    if let Some(name) = name {
        config = config.with_name(name);
    }
    let authed = psk.is_some();
    if let Some(psk) = psk {
        config = config.with_psk(psk);
    }
    if let Some(n) = job_cache {
        config = config.with_job_cache_capacity(n);
    }
    if let Some(n) = max_frame {
        config = config.with_max_frame_len(n);
    }
    config = config.with_max_requests_per_sec(rate_limit);
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| addr.to_owned());
    println!(
        "eqasm worker `{}` listening on {bound} ({} slots, wire protocol v{}{}, job cache {})",
        config.name,
        config.capacity,
        eqasm::runtime::wire::PROTOCOL_VERSION,
        if authed { ", PSK auth" } else { "" },
        config.job_cache_capacity,
    );
    #[cfg(unix)]
    {
        // SIGINT/SIGTERM drain instead of kill: in-flight batches
        // finish and reach their coordinators, then the daemon exits.
        signals::install();
        eqasm::runtime::run_worker_until(listener, config, &signals::SHUTDOWN)
            .map_err(|e| e.to_string())?;
        println!("eqasm worker drained cleanly; exiting");
        Ok(())
    }
    #[cfg(not(unix))]
    {
        eqasm::runtime::run_worker(listener, config).map_err(|e| e.to_string())
    }
}

/// Builds the serve backend pool: `workers` local slots plus every
/// advertised slot of each `--remote` worker, under the config's
/// remote I/O deadline. With `tolerate_down` (a supervisor is
/// running), a worker that is unreachable at startup is only a
/// warning — the supervisor attaches it when it appears.
fn build_backend_pool(
    workers: usize,
    remotes: &[String],
    connect_opts: &ConnectOptions,
    tolerate_down: bool,
) -> Result<Vec<Box<dyn ExecBackend>>, String> {
    let local = if workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        workers
    };
    let mut backends: Vec<Box<dyn ExecBackend>> = (0..local)
        .map(|i| Box::new(LocalBackend::new(i)) as Box<dyn ExecBackend>)
        .collect();
    for addr in remotes {
        match RemoteBackend::connect_pool_opts(addr.clone(), connect_opts.clone()) {
            Ok(pool) => {
                for backend in pool {
                    backends.push(Box::new(backend));
                }
            }
            Err(e) if tolerate_down => {
                eprintln!("warning: worker {addr} is down ({e}); the supervisor will keep probing")
            }
            Err(e) => return Err(format!("cannot attach remote worker {addr}: {e}")),
        }
    }
    Ok(backends)
}

/// Builds the serve queue (local workers, remote pool, optional
/// supervisor) shared by local `serve <spec>` runs and the
/// `serve --listen` network service.
#[allow(clippy::type_complexity)]
#[allow(clippy::too_many_arguments)]
fn build_serve_queue(
    workers: usize,
    remotes: &[String],
    rediscover: Option<f64>,
    registry: Option<&str>,
    psk: Option<Psk>,
    supervised: bool,
    journal: Option<JournalConfig>,
) -> Result<(std::sync::Arc<JobQueue>, Option<PoolSupervisor>), String> {
    let serve_config = ServeConfig::default();
    let connect_opts = {
        let mut opts = ConnectOptions::default().with_io_timeout(serve_config.remote_io_timeout);
        if let Some(psk) = psk.clone() {
            opts = opts.with_psk(psk);
        }
        opts
    };
    let queue = if let Some(jc) = journal {
        // Recovery needs the explicit-backend constructor, so build a
        // local pool by hand when no remotes are configured.
        let backends = if remotes.is_empty() && !supervised {
            let n = if workers == 0 {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            } else {
                workers
            };
            (0..n)
                .map(|i| Box::new(LocalBackend::new(i)) as Box<dyn ExecBackend>)
                .collect()
        } else {
            let backends = build_backend_pool(workers, remotes, &connect_opts, supervised)?;
            for backend in &backends {
                println!("backend: {}", backend.descriptor());
            }
            backends
        };
        let (queue, report) = JobQueue::recover(
            serve_config.clone().with_hold_when_empty(supervised),
            backends,
            &jc,
        )
        .map_err(|e| e.to_string())?;
        println!(
            "journal: {} ({} fsync), replayed {} record(s) across {} segment(s): \
             {} job(s) / {} range(s) recovered, {} completed job(s) dropped{}",
            jc.dir.display(),
            jc.fsync,
            report.records_replayed,
            report.segments_replayed,
            report.jobs_recovered,
            report.ranges_recovered,
            report.jobs_dropped,
            if report.torn_tail {
                "; torn tail truncated"
            } else {
                ""
            },
        );
        // When stdout is a pipe or file (the crash-recovery CI step
        // greps this line while the coordinator is still serving),
        // block buffering would hold the report back until exit.
        let _ = std::io::Write::flush(&mut std::io::stdout());
        queue
    } else if remotes.is_empty() && !supervised {
        JobQueue::new(serve_config.clone().with_workers(workers))
    } else {
        let backends = build_backend_pool(workers, remotes, &connect_opts, supervised)?;
        for backend in &backends {
            println!("backend: {}", backend.descriptor());
        }
        // Under a supervisor, an empty-pool window parks jobs (capacity
        // is expected back) instead of failing them.
        JobQueue::with_backends(
            serve_config.clone().with_hold_when_empty(supervised),
            backends,
        )
    };
    let queue = std::sync::Arc::new(queue);
    let supervisor = rediscover.map(|secs| {
        let mut config = SupervisorConfig::default()
            .with_probe_interval(std::time::Duration::from_secs_f64(secs))
            .with_io_timeout(serve_config.remote_io_timeout);
        if let Some(psk) = psk {
            config = config.with_psk(psk);
        }
        if let Some(path) = registry {
            config = config.with_registry(path);
        }
        println!(
            "pool supervisor: probing {} address(es) every {secs}s{}",
            remotes.len(),
            registry
                .map(|r| format!(" + registry {r}"))
                .unwrap_or_default()
        );
        PoolSupervisor::spawn(std::sync::Arc::clone(&queue), remotes.to_vec(), config)
    });
    Ok((queue, supervisor))
}

/// Runs the job queue as a pure network service: binds `addr`, serves
/// remote `eqasm-cli submit/status/watch --connect` clients over the
/// wire protocol, and drains cleanly on SIGINT/SIGTERM.
#[allow(clippy::too_many_arguments)]
fn cmd_serve_listen(
    addr: &str,
    workers: usize,
    remotes: &[String],
    rediscover: Option<f64>,
    registry: Option<String>,
    psk: Option<Psk>,
    max_frame: Option<u32>,
    rate_limit: Option<u32>,
    metrics_addr: Option<&str>,
    journal: Option<JournalConfig>,
) -> Result<(), String> {
    let supervised = rediscover.is_some();
    if supervised && remotes.is_empty() && registry.is_none() {
        return Err("--rediscover needs --remote addresses and/or a --registry file".to_owned());
    }
    if registry.is_some() && !supervised {
        return Err("--registry only takes effect with --rediscover <secs>".to_owned());
    }
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    let _metrics = spawn_metrics(metrics_addr)?;
    let (queue, supervisor) = build_serve_queue(
        workers,
        remotes,
        rediscover,
        registry.as_deref(),
        psk.clone(),
        supervised,
        journal,
    )?;
    let mut net_config = ServeNetConfig::default();
    let authed = psk.is_some();
    if let Some(psk) = psk {
        net_config = net_config.with_psk(psk);
    }
    if let Some(n) = max_frame {
        net_config = net_config.with_max_frame_len(n);
    }
    net_config = net_config.with_max_requests_per_sec(rate_limit);
    let bound = listener
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| addr.to_owned());
    println!(
        "eqasm serve listening on {bound} ({} execution slot(s), wire protocol v{}{})",
        queue.workers(),
        eqasm::runtime::wire::PROTOCOL_VERSION,
        if authed { ", PSK auth" } else { "" },
    );
    #[cfg(unix)]
    {
        signals::install();
        eqasm::runtime::run_serve_until(
            listener,
            std::sync::Arc::clone(&queue),
            net_config,
            &signals::SHUTDOWN,
        )
        .map_err(|e| e.to_string())?;
        drop(supervisor);
        queue.shutdown();
        println!("eqasm serve drained cleanly; exiting");
        Ok(())
    }
    #[cfg(not(unix))]
    {
        let never = std::sync::atomic::AtomicBool::new(false);
        eqasm::runtime::run_serve_until(
            listener,
            std::sync::Arc::clone(&queue),
            net_config,
            &never,
        )
        .map_err(|e| e.to_string())?;
        drop(supervisor);
        queue.shutdown();
        Ok(())
    }
}

/// Client-side connect options for `submit`/`status`/`watch`.
fn client_opts(psk: Option<Psk>) -> ConnectOptions {
    let mut opts = ConnectOptions::default();
    if let Some(psk) = psk {
        opts = opts.with_psk(psk);
    }
    opts
}

/// Drives a running coordinator from the open-loop load generator:
/// either a capacity sweep (step the target submission rate per rung
/// until a failure-rate or p50-latency ceiling is breached, printing
/// the per-rung table and optionally the `capacity` JSON object) or,
/// with `--churn`, a subscriber-churn sweep that cycles
/// connect/subscribe/resume/disconnect watchers and verifies resume
/// correctness.
fn cmd_loadgen(
    spec: &str,
    addr: &str,
    shots: u64,
    seed: u64,
    psk: Option<Psk>,
    lg: &LoadgenOpts,
) -> Result<(), String> {
    use eqasm::runtime::loadgen::RpsStep;
    use std::time::Duration;

    if lg.rps_step.is_some() && lg.rps_factor.is_some() {
        return Err("--rps-step and --rps-factor are mutually exclusive".into());
    }
    let mut target = SweepTarget::new(addr).with_options(client_opts(psk));
    if let Some(scrape) = &lg.scrape {
        target = target.with_metrics(scrape.clone());
    } else {
        println!(
            "note: no --scrape <addr> given; rung reports carry client-side figures only \
             (no queue depth, rejection or shots-completed truth from the coordinator)"
        );
    }

    if lg.churn {
        // Churn wants one long-running job to subscribe against; the
        // first class of the named mix provides its shape, the sweep
        // resubmits it whenever it completes.
        let template = built_in_specs(spec, shots, seed)?.swap_remove(0);
        let config = ChurnConfig {
            workers: lg.connections,
            duration: Duration::from_secs_f64(lg.churn_secs),
            ..ChurnConfig::default()
        };
        println!(
            "churn sweep against {addr}: {} workers for {:.1}s (job template `{}`)",
            config.workers, lg.churn_secs, template.name
        );
        let report = churn_sweep(&template, &target, &config).map_err(|e| e.to_string())?;
        println!(
            "cycles: {} ({:.1}/s), resumed: {}, snapshots: {}, jobs driven: {}",
            report.cycles,
            report.cycles_per_sec,
            report.resumed_cycles,
            report.snapshots,
            report.jobs_driven
        );
        if let Some(w) = report.reactor_wakeups_per_sec {
            println!("reactor wakeups/sec: {w:.0}");
        }
        if let Some(r) = report.server_resumes {
            println!("server-side subscription resumes: {r}");
        }
        if report.resume_violations > 0 {
            return Err(format!(
                "{} resume violation(s): a resumed subscription delivered a snapshot older \
                 than its resume point (or a stream went backwards)",
                report.resume_violations
            ));
        }
        println!("resume correctness: OK (0 violations)");
        return Ok(());
    }

    let classes: Vec<LoadClass> = built_in_specs(spec, shots, seed)?
        .into_iter()
        .map(|s| LoadClass {
            tenant: s.name.clone(),
            share: s.weight.max(1),
            spec: s,
        })
        .collect();
    let load = LoadSpec::new(classes)
        .with_connections(lg.connections)
        .with_watchers(lg.watchers)
        .with_subscribe_ratio(lg.subscribe_ratio)
        .with_seed(seed);
    let step = match (lg.rps_step, lg.rps_factor) {
        (Some(inc), None) => RpsStep::Add(inc),
        (None, Some(f)) => RpsStep::Mul(f),
        _ => RpsStep::Mul(2.0),
    };
    let config = SweepConfig {
        initial_rps: lg.initial_rps,
        step,
        max_rps: lg.max_rps,
        window: Duration::from_secs_f64(lg.rung_secs),
        drain_timeout: Duration::from_secs_f64(lg.drain_secs),
        stop: Ceilings {
            failure_rate: lg.stop_failure_rate,
            p50: Duration::from_secs_f64(lg.stop_p50_ms / 1e3),
        },
        ..SweepConfig::default()
    };
    println!(
        "capacity sweep of `{spec}` against {addr}: {:.1} rps, {} per rung, \
         {:.1}s rungs, stop at failure >= {:.0}% or p50 >= {:.0} ms",
        config.initial_rps,
        match step {
            RpsStep::Add(inc) => format!("+{inc:.1}"),
            RpsStep::Mul(f) => format!("x{f:.1}"),
        },
        lg.rung_secs,
        lg.stop_failure_rate * 100.0,
        lg.stop_p50_ms
    );
    let report = capacity_sweep(&load, &target, &config).map_err(|e| e.to_string())?;
    print!("{}", report.table());
    if lg.json {
        println!("{}", report.to_json(""));
    }
    Ok(())
}

/// Submits the named workload mix to a remote serve coordinator,
/// streams every job's partial results, prints the final table, and
/// (with `--verify-serial`) re-runs each job locally on a serial
/// engine requiring bit-identical aggregates — the end-to-end proof
/// that the networked service computes exactly what the library does.
fn cmd_submit(
    spec: &str,
    addr: &str,
    shots: u64,
    seed: u64,
    psk: Option<Psk>,
    verify_serial: bool,
) -> Result<(), String> {
    let specs = built_in_specs(spec, shots, seed)?;
    let client = Client::connect_opts(addr, client_opts(psk)).map_err(|e| e.to_string())?;
    println!(
        "connected to `{}` at {addr} (wire v{})",
        client.server_name(),
        client.protocol()
    );

    let started = std::time::Instant::now();
    let mut submitted: Vec<(WorkloadSpec, Vec<eqasm::runtime::RemoteJobHandle>)> = Vec::new();
    for s in &specs {
        let handles = client
            .submit(Submission::workload(s.name.as_str(), s.clone()))
            .map_err(|e| e.to_string())?;
        let ids: Vec<String> = handles.iter().map(|h| h.job_id().to_string()).collect();
        println!(
            "submitted `{}`: {} job(s), {} shots each (job ids {})",
            s.name,
            handles.len(),
            s.shots,
            ids.join(", ")
        );
        submitted.push((s.clone(), handles));
    }

    // Stream each job to completion. Submissions already run
    // concurrently server-side; watching them in order just decides
    // which stream prints first.
    let mut results: Vec<(WorkloadSpec, u32, eqasm::runtime::JobResult)> = Vec::new();
    for (s, handles) in &submitted {
        for (instance, handle) in handles.iter().enumerate() {
            let result = handle
                .watch(|snap| {
                    println!(
                        "[{:7.3}s] {:>16} {:>8}/{} shots ({:3.0}%)",
                        started.elapsed().as_secs_f64(),
                        snap.name,
                        snap.shots_done,
                        snap.shots_total,
                        snap.progress() * 100.0,
                    );
                })
                .map_err(|e| format!("job {} failed: {e}", handle.job_id()))?;
            results.push((s.clone(), instance as u32, result));
        }
    }

    println!(
        "{:>16} {:>8} {:>11} {:>10} {:>10}",
        "job", "shots", "shots/s", "p50 µs", "p99 µs"
    );
    for (_, _, r) in &results {
        println!(
            "{:>16} {:>8} {:>11.0} {:>10.1} {:>10.1}",
            r.name,
            r.shots,
            r.shots_per_sec,
            r.latency.p50_ns as f64 / 1e3,
            r.latency.p99_ns as f64 / 1e3,
        );
    }

    if verify_serial {
        // The acceptance check: rebuild every job locally (specs are
        // deterministic generators) and require the remote aggregate
        // to be bit-identical to a serial engine run.
        for (s, instance, remote) in &results {
            let job = s.build_instance(*instance).map_err(|e| e.to_string())?;
            let reference = ShotEngine::serial()
                .run_job(&job)
                .map_err(|e| e.to_string())?;
            if remote.histogram != reference.histogram
                || remote.stats != reference.stats
                || remote.mean_prob1 != reference.mean_prob1
            {
                return Err(format!(
                    "job `{}` (instance {instance}) diverged from the serial reference — \
                     the remote aggregate is NOT bit-identical",
                    remote.name
                ));
            }
        }
        println!(
            "verified: {} remote job(s) bit-identical to local serial runs",
            results.len()
        );
    }
    Ok(())
}

/// Prints one snapshot line per requested job id.
fn cmd_status(addr: &str, job_ids: &[u64], psk: Option<Psk>) -> Result<(), String> {
    if job_ids.is_empty() {
        return Err("status requires at least one --job <id>".to_owned());
    }
    let client = Client::connect_opts(addr, client_opts(psk)).map_err(|e| e.to_string())?;
    println!(
        "{:>6} {:>16} {:>12} {:>16} {:>6} {:>8}",
        "job", "name", "tenant", "shots", "done", "failed"
    );
    for &id in job_ids {
        let snap = client.poll_id(id).map_err(|e| e.to_string())?;
        println!(
            "{:>6} {:>16} {:>12} {:>9}/{:<6} {:>6} {:>8}",
            id,
            snap.name,
            snap.tenant,
            snap.shots_done,
            snap.shots_total,
            if snap.done { "yes" } else { "no" },
            snap.failed.as_deref().unwrap_or("-"),
        );
    }
    Ok(())
}

/// Streams the requested jobs to completion, printing every snapshot.
/// `--resume-after <batches>` seeds the stream with a prefix a
/// previous watcher process already folded: the reassembled pair of
/// logs covers every prefix exactly once, and the final line's
/// fingerprint (a stable hash of the encoded result) lets scripts
/// assert bit-identical results across broken and unbroken watches.
fn cmd_watch(
    addr: &str,
    job_ids: &[u64],
    resume_after: Option<u64>,
    psk: Option<Psk>,
) -> Result<(), String> {
    if job_ids.is_empty() {
        return Err("watch requires at least one --job <id>".to_owned());
    }
    let client = Client::connect_opts(addr, client_opts(psk)).map_err(|e| e.to_string())?;
    let started = std::time::Instant::now();
    for &id in job_ids {
        let result = client
            .watch_id_from(id, resume_after, |snap| {
                println!(
                    "[{:7.3}s] job {id} {:>16} {:>8}/{} shots ({:3.0}%) batches {}/{}",
                    started.elapsed().as_secs_f64(),
                    snap.name,
                    snap.shots_done,
                    snap.shots_total,
                    snap.progress() * 100.0,
                    snap.batches_done,
                    snap.batches_total,
                );
            })
            .map_err(|e| e.to_string())?;
        println!(
            "job {id} `{}` done: {} shots, {:.0} shots/s, fingerprint {:#018x}",
            result.name,
            result.shots,
            result.shots_per_sec,
            eqasm::runtime::wire::result_fingerprint(&result),
        );
    }
    Ok(())
}

/// Drives the named workload through the `eqasm-serve` job queue:
/// every spec becomes a tenant whose scheduling weight is its traffic
/// weight, progress lines stream while the pool runs, and the final
/// table reports queue wait vs active time per job. With `--remote`,
/// the pool mixes local slots and remote workers — results are
/// bit-identical to a pure-local run by the batch-fold argument.
#[allow(clippy::too_many_arguments)]
fn cmd_serve(
    spec: &str,
    shots: u64,
    workers: usize,
    seed: u64,
    remotes: &[String],
    rediscover: Option<f64>,
    registry: Option<String>,
    psk: Option<Psk>,
    metrics_addr: Option<&str>,
    journal: Option<JournalConfig>,
) -> Result<(), String> {
    let specs = built_in_specs(spec, shots, seed)?;
    let _metrics = spawn_metrics(metrics_addr)?;
    let supervised = rediscover.is_some();
    if supervised && remotes.is_empty() && registry.is_none() {
        return Err("--rediscover needs --remote addresses and/or a --registry file".to_owned());
    }
    if registry.is_some() && !supervised {
        // Silently ignoring the roster would leave the operator
        // believing the fleet file is in effect.
        return Err("--registry only takes effect with --rediscover <secs>".to_owned());
    }
    let (queue, supervisor) = build_serve_queue(
        workers,
        remotes,
        rediscover,
        registry.as_deref(),
        psk,
        supervised,
        journal,
    )?;

    let started = std::time::Instant::now();
    let mut handles: Vec<JobHandle> = Vec::new();
    for s in &specs {
        queue.register_tenant(s.name.as_str(), s.weight, u64::MAX);
        handles.extend(
            queue
                .submit(Submission::workload(s.name.as_str(), s.clone()))
                .map_err(|e| e.to_string())?,
        );
    }
    let total: u64 = handles.iter().map(|h| h.snapshot().shots_total).sum();
    println!(
        "serve `{spec}`: {} jobs, {total} shots on {} workers",
        handles.len(),
        queue.workers()
    );

    // Streaming progress: one line whenever the folded shot count
    // moves, with per-tenant completion fractions; pool membership
    // changes (supervisor attaches, drains, retirements) get a line of
    // their own.
    let mut last_done = u64::MAX;
    let mut last_pool = queue.workers();
    // Registry trouble used to be invisible unless the operator polled
    // `registry_warning()` programmatically; the progress stream now
    // carries it (and its all-clear) the moment it changes.
    let mut last_warning: Option<String> = None;
    loop {
        let pool = queue.workers();
        if pool != last_pool {
            println!(
                "[{:7.3}s] pool: {last_pool} -> {pool} live slot(s)",
                started.elapsed().as_secs_f64()
            );
            last_pool = pool;
        }
        if let Some(sup) = &supervisor {
            let warning = sup.registry_warning();
            if warning != last_warning {
                match &warning {
                    Some(w) => {
                        println!("[{:7.3}s] supervisor: {w}", started.elapsed().as_secs_f64())
                    }
                    None if last_warning.is_some() => println!(
                        "[{:7.3}s] supervisor: registry readable again",
                        started.elapsed().as_secs_f64()
                    ),
                    None => {}
                }
                last_warning = warning;
            }
        }
        let snaps: Vec<PartialResult> = handles.iter().map(|h| h.snapshot()).collect();
        let done: u64 = snaps.iter().map(|s| s.shots_done).sum();
        if done != last_done {
            last_done = done;
            let mut per_tenant: Vec<(String, u64, u64)> = Vec::new();
            for s in &snaps {
                match per_tenant
                    .iter_mut()
                    .find(|(t, _, _)| *t == s.tenant.as_str())
                {
                    Some((_, d, t)) => {
                        *d += s.shots_done;
                        *t += s.shots_total;
                    }
                    None => per_tenant.push((s.tenant.to_string(), s.shots_done, s.shots_total)),
                }
            }
            let fields: Vec<String> = per_tenant
                .iter()
                .map(|(t, d, tot)| format!("{t} {d}/{tot}"))
                .collect();
            println!(
                "[{:7.3}s] {done:>8}/{total} shots ({:3.0}%)  {}",
                started.elapsed().as_secs_f64(),
                done as f64 * 100.0 / total.max(1) as f64,
                fields.join("  ")
            );
        }
        if snaps.iter().all(|s| s.done) {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }

    println!(
        "{:>16} {:>12} {:>8} {:>11} {:>10} {:>10} {:>10}",
        "job", "tenant", "shots", "shots/s", "p50 µs", "wait ms", "active ms"
    );
    for handle in &handles {
        let snap = handle.snapshot();
        match handle.wait() {
            Ok(r) => println!(
                "{:>16} {:>12} {:>8} {:>11.0} {:>10.1} {:>10.1} {:>10.1}",
                r.name,
                snap.tenant,
                r.shots,
                r.shots_per_sec,
                r.latency.p50_ns as f64 / 1e3,
                snap.queue_wait.as_secs_f64() * 1e3,
                snap.active.as_secs_f64() * 1e3,
            ),
            Err(e) => println!("{:>16} {:>12} failed: {e}", snap.name, snap.tenant),
        }
    }
    let cache = queue.cache_stats();
    println!(
        "program cache: {} built, {} reused ({} distinct programs)",
        cache.misses, cache.hits, cache.entries
    );
    if !remotes.is_empty() || supervised {
        println!("pool slots (lifetime):");
        for slot in queue.pool_status() {
            println!(
                "  slot {:>3}  {:>8}  {:>6} batches  {}",
                slot.slot_id, slot.state, slot.batches_completed, slot.descriptor
            );
        }
    }
    Ok(())
}

fn cmd_lift(text: &str, inst: &Instantiation) -> Result<(), String> {
    let program = assemble(text, inst).map_err(|e| e.to_string())?;
    let circuit = lift_program(program.instructions(), inst).map_err(|e| e.to_string())?;
    println!("# timing-free circuit ({} gates):", circuit.len());
    for gate in circuit.gates() {
        match &gate.kind {
            eqasm::compiler::GateKind::Single { qubit } => {
                println!("{} q{}", gate.name, qubit.index())
            }
            eqasm::compiler::GateKind::Two { pair } => println!(
                "{} q{} q{}",
                gate.name,
                pair.source().index(),
                pair.target().index()
            ),
            eqasm::compiler::GateKind::Measure { qubit } => {
                println!("MEASZ q{}", qubit.index())
            }
        }
    }
    Ok(())
}
