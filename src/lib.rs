//! # eqasm — an executable quantum instruction set architecture
//!
//! A production-quality Rust reproduction of **"eQASM: An Executable
//! Quantum Instruction Set Architecture"** (Fu et al., HPCA 2019): the
//! full eQASM toolchain — ISA model, assembler/disassembler with the
//! paper's 32-bit binary instantiation, a cycle-accurate simulator of
//! the QuMA v2 control microarchitecture driving simulated
//! superconducting qubits, a compiler back end with the Fig. 7
//! design-space exploration, and the complete experiment suite of the
//! paper's evaluation.
//!
//! This facade re-exports the workspace crates:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `eqasm-core` | qubits, topologies, registers, instructions, operation configuration |
//! | [`quantum`] | `eqasm-quantum` | state-vector / density-matrix simulators, noise, Cliffords, tomography |
//! | [`asm`] | `eqasm-asm` | lexer, parser, assembler, 32-bit encoder, disassembler |
//! | [`microarch`] | `eqasm-microarch` | the QuMA v2 cycle-accurate machine |
//! | [`compiler`] | `eqasm-compiler` | circuit IR, ASAP scheduler, counting + emitting code generators |
//! | [`workloads`] | `eqasm-workloads` | RB, Ising, square-root, AllXY, Grover, Rabi generators |
//! | [`runtime`] | `eqasm-runtime` | parallel shot-execution engine and the `eqasm-serve` job queue: jobs, worker pool, histograms, mixed workloads, tenant-fair scheduling with streaming partial results |
//!
//! ## Quick start
//!
//! ```
//! use eqasm::prelude::*;
//!
//! // The paper's instantiation, retargeted at the two-qubit chip.
//! let inst = Instantiation::paper_two_qubit();
//!
//! // Fig. 4: active qubit reset via fast conditional execution.
//! let program = assemble(
//!     "SMIS S2, {2}\n\
//!      QWAIT 10000\n\
//!      X90 S2\n\
//!      MEASZ S2\n\
//!      QWAIT 50\n\
//!      C_X S2\n\
//!      MEASZ S2\n\
//!      QWAIT 50\n\
//!      STOP",
//!     &inst,
//! )?;
//!
//! let mut machine = QuMa::new(inst, SimConfig::default().with_seed(7));
//! machine.load(program.instructions())?;
//! assert!(machine.run().status.is_halted());
//! // The conditional X reset the qubit: the final measurement reads 0.
//! assert_eq!(machine.measurement_value(Qubit::new(2)), Some(false));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use eqasm_asm as asm;
pub use eqasm_compiler as compiler;
pub use eqasm_core as core;
pub use eqasm_microarch as microarch;
pub use eqasm_quantum as quantum;
pub use eqasm_runtime as runtime;
pub use eqasm_workloads as workloads;

/// The most common imports in one place.
pub mod prelude {
    pub use eqasm_asm::{assemble, disassemble, Assembler, Program};
    pub use eqasm_compiler::{
        count_instructions, emit, schedule_asap, Circuit, CodegenConfig, EmitOptions, GateDurations,
    };
    pub use eqasm_core::{
        ArchParams, Bundle, BundleOp, CmpFlag, ExecFlag, Gpr, Instantiation, Instruction, OpConfig,
        PulseKind, QOpcode, Qubit, QubitPair, SReg, TReg, Topology,
    };
    pub use eqasm_microarch::{
        LatencyModel, MeasurementSource, QuMa, RunStatus, SimConfig, TimingPolicy, TraceKind,
    };
    pub use eqasm_quantum::{
        Backend, Clifford, DensityBackend, NoiseModel, PureBackend, ReadoutModel, StateVector,
    };
    pub use eqasm_runtime::{
        Histogram, Job, JobQueue, JobResult, MixedWorkload, PartialResult, ServeConfig, ShotEngine,
        Submission, TenantId, WorkloadKind, WorkloadSpec,
    };
}
