//! Property-based tests: binary encode/decode round trips over randomly
//! generated valid instructions, assembler/disassembler round trips,
//! mask invariants and comparison-flag consistency.

use eqasm::asm::{disassemble_source, encoding};
use eqasm::prelude::*;
use proptest::prelude::*;

fn paper() -> Instantiation {
    Instantiation::paper()
}

/// Greedily drops edges that overlap an earlier-kept edge, producing a
/// valid two-qubit target-register value from an arbitrary bit pattern.
fn sanitize_pair_mask(mask: u32) -> u32 {
    let topo = Topology::surface7();
    let mut kept: Vec<QubitPair> = Vec::new();
    let mut out = 0u32;
    for (addr, pair) in topo.pairs() {
        if mask & (1 << addr.index()) != 0 && !kept.iter().any(|k| k.overlaps(pair)) {
            kept.push(pair);
            out |= 1 << addr.index();
        }
    }
    out
}

/// Strategy for a random valid executable instruction for the paper's
/// instantiation.
fn arb_instruction() -> impl Strategy<Value = Instruction> {
    let gpr = || (0u8..32).prop_map(Gpr::new);
    let sreg = || (0u8..32).prop_map(SReg::new);
    let treg = || (0u8..32).prop_map(TReg::new);
    let flag = || (0usize..12).prop_map(|i| CmpFlag::ALL[i]);
    // Opcode names present in the default configuration.
    let qop_single = prop_oneof![
        Just("I"),
        Just("X"),
        Just("Y"),
        Just("X90"),
        Just("Y90"),
        Just("XM90"),
        Just("YM90"),
        Just("H"),
        Just("MEASZ"),
        Just("C_X"),
    ];
    let qop_two = prop_oneof![Just("CZ"), Just("CNOT"), Just("SWAP")];

    prop_oneof![
        Just(Instruction::Nop),
        Just(Instruction::Stop),
        (gpr(), gpr()).prop_map(|(rs, rt)| Instruction::Cmp { rs, rt }),
        (flag(), -(1i32 << 20)..(1i32 << 20) - 1)
            .prop_map(|(flag, offset)| Instruction::Br { flag, offset }),
        (flag(), gpr()).prop_map(|(flag, rd)| Instruction::Fbr { flag, rd }),
        (gpr(), -(1i32 << 19)..(1i32 << 19) - 1).prop_map(|(rd, imm)| Instruction::Ldi { rd, imm }),
        (gpr(), 0u16..(1 << 15), gpr()).prop_map(|(rd, imm, rs)| Instruction::Ldui { rd, imm, rs }),
        (gpr(), gpr(), -(1i32 << 14)..(1i32 << 14) - 1).prop_map(|(rd, rt, imm)| Instruction::Ld {
            rd,
            rt,
            imm
        }),
        (gpr(), gpr(), -(1i32 << 14)..(1i32 << 14) - 1).prop_map(|(rs, rt, imm)| Instruction::St {
            rs,
            rt,
            imm
        }),
        (gpr(), 0u8..7).prop_map(|(rd, q)| Instruction::Fmr {
            rd,
            qubit: Qubit::new(q)
        }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, rs, rt)| Instruction::And { rd, rs, rt }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, rs, rt)| Instruction::Or { rd, rs, rt }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, rs, rt)| Instruction::Xor { rd, rs, rt }),
        (gpr(), gpr()).prop_map(|(rd, rt)| Instruction::Not { rd, rt }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, rs, rt)| Instruction::Add { rd, rs, rt }),
        (gpr(), gpr(), gpr()).prop_map(|(rd, rs, rt)| Instruction::Sub { rd, rs, rt }),
        (0u32..1 << 20).prop_map(|cycles| Instruction::QWait { cycles }),
        gpr().prop_map(|rs| Instruction::QWaitR { rs }),
        (sreg(), 0u32..1 << 7).prop_map(|(sd, mask)| Instruction::Smis { sd, mask }),
        (treg(), 0u32..1 << 16).prop_map(|(td, mask)| Instruction::Smit {
            td,
            // Keep only a conflict-free subset of the drawn edges so the
            // value is one the assembler itself could have produced
            // (§4.3 forbids overlapping pairs in one T register).
            mask: sanitize_pair_mask(mask),
        }),
        (
            0u8..8,
            qop_single.clone(),
            sreg(),
            prop::option::of((qop_two, treg()))
        )
            .prop_map(|(pi, name1, s1, second)| {
                let inst = paper();
                let op1 = BundleOp::single(inst.ops().by_name(name1).unwrap().opcode(), s1);
                let op2 = match second {
                    Some((name2, t2)) => {
                        BundleOp::two(inst.ops().by_name(name2).unwrap().opcode(), t2)
                    }
                    None => BundleOp::QNOP,
                };
                Instruction::Bundle(Bundle::with_pre_interval(pi.min(7), vec![op1, op2]))
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Every valid instruction encodes to 32 bits and decodes back to
    /// itself (Fig. 8 round trip).
    #[test]
    fn encode_decode_roundtrip(instr in arb_instruction()) {
        let inst = paper();
        let word = encoding::encode(&instr, &inst).expect("encodes");
        let back = encoding::decode(word, &inst).expect("decodes");
        prop_assert_eq!(back, instr);
    }

    /// Single-format instructions always have bit 31 clear; bundles set
    /// it (the format discriminator of Fig. 8).
    #[test]
    fn format_discriminator(instr in arb_instruction()) {
        let inst = paper();
        let word = encoding::encode(&instr, &inst).expect("encodes");
        let is_bundle = matches!(instr, Instruction::Bundle(_));
        prop_assert_eq!(word >> 31 == 1, is_bundle);
    }

    /// Disassembled binaries re-assemble to the identical binary.
    #[test]
    fn disassemble_reassemble(instrs in prop::collection::vec(arb_instruction(), 1..40)) {
        let inst = paper();
        // Branch offsets must stay inside the program for reassembly
        // equivalence (labels are not preserved, raw offsets are), so
        // this property uses the raw-offset form which the parser
        // accepts directly.
        let words = encoding::encode_program(&instrs, &inst).expect("encodes");
        let text = disassemble_source(&words, &inst).expect("disassembles");
        let program = assemble(&text, &inst).expect("re-assembles");
        let words2 = encoding::encode_program(program.instructions(), &inst).expect("re-encodes");
        prop_assert_eq!(words, words2);
    }

    /// Single-qubit masks round-trip through qubit lists.
    #[test]
    fn single_mask_roundtrip(mask in 0u32..(1 << 7)) {
        let topo = Topology::surface7();
        let qubits = topo.qubits_in_mask(mask);
        prop_assert_eq!(topo.single_mask(&qubits).unwrap(), mask);
    }

    /// Valid pair masks round-trip; invalid ones are rejected for
    /// exactly the overlap/out-of-range reasons.
    #[test]
    fn pair_mask_validation(mask in 0u32..(1 << 16)) {
        let topo = Topology::surface7();
        match topo.check_pair_mask(mask) {
            Ok(()) => {
                let pairs = topo.pairs_in_mask(mask);
                prop_assert_eq!(topo.pair_mask(&pairs).unwrap(), mask);
                // No two selected pairs share a qubit.
                for (i, a) in pairs.iter().enumerate() {
                    for b in &pairs[i + 1..] {
                        prop_assert!(!a.overlaps(*b));
                    }
                }
            }
            Err(_) => {
                // Some pair of selected edges must overlap (width is
                // always in range for 16-bit masks on surface7).
                let pairs = topo.pairs_in_mask(mask);
                let mut overlap = false;
                for (i, a) in pairs.iter().enumerate() {
                    for b in &pairs[i + 1..] {
                        overlap |= a.overlaps(*b);
                    }
                }
                prop_assert!(overlap, "rejected mask {mask:#x} without overlap");
            }
        }
    }

    /// CMP flags are internally consistent for any register values.
    #[test]
    fn cmp_flags_consistent(a in any::<u32>(), b in any::<u32>()) {
        use eqasm::core::CmpFlags;
        let flags = CmpFlags::compare(a, b);
        prop_assert!(flags.get(CmpFlag::Always));
        prop_assert!(!flags.get(CmpFlag::Never));
        prop_assert_eq!(flags.get(CmpFlag::Eq), !flags.get(CmpFlag::Ne));
        prop_assert_eq!(flags.get(CmpFlag::Ltu), !flags.get(CmpFlag::Geu));
        prop_assert_eq!(flags.get(CmpFlag::Lt), !flags.get(CmpFlag::Ge));
        prop_assert_eq!(flags.get(CmpFlag::Leu), flags.get(CmpFlag::Ltu) || flags.get(CmpFlag::Eq));
        prop_assert_eq!(flags.get(CmpFlag::Gt), flags.get(CmpFlag::Ge) && flags.get(CmpFlag::Ne));
    }
}
