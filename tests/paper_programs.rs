//! Integration tests running the paper's own program listings
//! (Figs. 3, 4, 5 and the §3.1.3 example) end-to-end through the
//! facade: assembler → binary → decoded program → QuMA v2 → simulated
//! qubits.

use eqasm::asm::encoding;
use eqasm::prelude::*;

fn run(inst: &Instantiation, source: &str, config: SimConfig) -> QuMa {
    // Assemble, encode to the 32-bit binary, decode back, and run the
    // *decoded* program: every test also exercises the binary format.
    let program = assemble(source, inst).expect("assembles");
    let words = encoding::encode_program(program.instructions(), inst).expect("encodes");
    let decoded = encoding::decode_program(&words, inst).expect("decodes");
    assert_eq!(decoded.as_slice(), program.instructions());
    let mut machine = QuMa::new(inst.clone(), config);
    machine.load(&decoded).expect("loads");
    let result = machine.run();
    assert!(result.status.is_halted(), "status {:?}", result.status);
    machine
}

fn zero_latency() -> SimConfig {
    SimConfig {
        latency: LatencyModel::zero(),
        ..SimConfig::default()
    }
}

/// Fig. 3 — the two-qubit AllXY routine, including the exact timing the
/// paper describes: "the Y gate happens immediately after the
/// initialization, followed by the X90 and X gates 20 ns later and the
/// measurement 40 ns later".
#[test]
fn fig3_two_qubit_allxy_timing() {
    let inst = Instantiation::paper();
    let machine = run(
        &inst,
        "SMIS S0, {0}\n\
         SMIS S2, {2}\n\
         SMIS S7, {0, 2}\n\
         QWAIT 10000\n\
         0, Y S7\n\
         1, X90 S0 | X S2\n\
         1, MEASZ S7\n\
         QWAIT 50\n\
         STOP",
        zero_latency(),
    );
    let ops = machine.trace().executed_ops();
    let time_of = |name: &str| {
        ops.iter()
            .find(|(_, _, n)| *n == name)
            .map(|(cc, _, _)| *cc)
            .unwrap_or_else(|| panic!("{name} not triggered"))
    };
    let t_y = time_of("Y");
    let t_x90 = time_of("X90");
    let t_meas = time_of("MEASZ");
    // 20 ns = 1 quantum cycle = 2 classical cycles.
    assert_eq!(t_x90 - t_y, 2, "X90/X follow Y by 20 ns");
    assert_eq!(t_meas - t_x90, 2, "MEASZ follows by another 20 ns");
    // Y triggered at the 200 us initialisation point.
    assert_eq!(t_y, 20_000);
    // SOMQ: Y and MEASZ hit both qubits.
    assert_eq!(ops.iter().filter(|(_, _, n)| *n == "Y").count(), 2);
    assert_eq!(ops.iter().filter(|(_, _, n)| *n == "MEASZ").count(), 2);
}

/// Fig. 4 — active qubit reset: with ideal readout the conditional X
/// always leaves the qubit in |0⟩.
#[test]
fn fig4_active_reset_is_deterministic_with_ideal_readout() {
    let inst = Instantiation::paper_two_qubit();
    for seed in 0..25u64 {
        let machine = run(
            &inst,
            "SMIS S2, {2}\n\
             QWAIT 10000\n\
             X90 S2\n\
             MEASZ S2\n\
             QWAIT 50\n\
             C_X S2\n\
             MEASZ S2\n\
             QWAIT 50\n\
             STOP",
            SimConfig::default().with_seed(seed),
        );
        assert_eq!(
            machine.measurement_value(Qubit::new(2)),
            Some(false),
            "seed {seed}: reset must end in |0⟩"
        );
        // The C_X fires exactly when the first measurement reported 1.
        let first = machine.trace().measurement_results()[0].3;
        let fired = machine
            .trace()
            .executed_ops()
            .iter()
            .any(|(_, _, n)| *n == "C_X");
        assert_eq!(fired, first, "seed {seed}");
    }
}

/// Fig. 5 — comprehensive feedback control: the measured result of
/// qubit 1 selects between X and Y on qubit 0 (verified under real
/// quantum measurements here; the mock-source validation lives in the
/// microarch tests and the `cfc_feedback` example).
#[test]
fn fig5_cfc_selects_path_from_real_measurement() {
    let inst = Instantiation::paper_two_qubit();
    // Prepare qubit 1 deterministically in |1⟩ first, then in |0⟩, and
    // check the chosen gate each time.
    for (prep, expected_gate) in [("X S1", "Y"), ("I S1", "X")] {
        let source = format!(
            "SMIS S0, {{0}}\n\
             SMIS S1, {{1}}\n\
             LDI R0, 1\n\
             QWAIT 10000\n\
             0, {prep}\n\
             1, MEASZ S1\n\
             QWAIT 30\n\
             FMR R1, Q1\n\
             CMP R1, R0\n\
             BR EQ, eq_path\n\
             ne_path:\n\
             X S0\n\
             BR ALWAYS, next\n\
             eq_path:\n\
             Y S0\n\
             next:\n\
             QWAIT 10\n\
             STOP"
        );
        let machine = run(&inst, &source, SimConfig::default());
        let chosen: Vec<&str> = machine
            .trace()
            .executed_ops()
            .iter()
            .filter(|(_, q, _)| *q == Qubit::new(0))
            .map(|(_, _, n)| *n)
            .collect();
        assert_eq!(chosen, vec![expected_gate], "prep {prep}");
    }
}

/// §3.1.3 — the timing example: four operations back-to-back through
/// default PI, register-valued waiting and `QWAIT 0`.
#[test]
fn section_3_1_3_timing_example() {
    let inst = Instantiation::paper();
    let machine = run(
        &inst,
        "SMIS S0, {0}\n\
         LDI r0, 1\n\
         QWAIT 1000\n\
         0, X S0\n\
         Y S0\n\
         QWAITR r0\n\
         0, X90 S0\n\
         QWAIT 0\n\
         1, Y90 S0\n\
         STOP",
        zero_latency(),
    );
    let times: Vec<u64> = machine
        .trace()
        .executed_ops()
        .iter()
        .map(|(cc, _, _)| *cc)
        .collect();
    assert_eq!(times.len(), 4);
    assert_eq!(times[1] - times[0], 2);
    assert_eq!(times[2] - times[1], 2);
    assert_eq!(times[3] - times[2], 2);
}

/// §3.3.3 — the SOMQ examples: `SMIS S7, {0, 1}` with a gate on both,
/// and `SMIT T3` with parallel CNOTs (adapted to allowed pairs of the
/// surface-7 chip).
#[test]
fn section_3_3_3_somq_examples() {
    let inst = Instantiation::paper();
    let mut machine = run(
        &inst,
        "SMIS S7, {0, 1}\n\
         QWAIT 100\n\
         0, Y S7\n\
         STOP",
        SimConfig::default(),
    );
    assert!((machine.prob1(Qubit::new(0)) - 1.0).abs() < 1e-9);
    assert!((machine.prob1(Qubit::new(1)) - 1.0).abs() < 1e-9);

    // Parallel two-qubit gates on disjoint allowed pairs (2,0) and (4,1).
    let mut machine = run(
        &inst,
        "SMIS S1, {2, 4}\n\
         SMIT T3, {(2, 0), (4, 1)}\n\
         QWAIT 100\n\
         0, X S1\n\
         1, CNOT T3\n\
         STOP",
        SimConfig::default(),
    );
    for q in [0u8, 1, 2, 4] {
        assert!(
            (machine.prob1(Qubit::new(q)) - 1.0).abs() < 1e-9,
            "qubit {q}"
        );
    }
}

/// Table 1 smoke test: every instruction class appears in one program
/// that must assemble, encode, decode and execute.
#[test]
fn table1_all_instructions_execute() {
    let inst = Instantiation::paper();
    let machine = run(
        &inst,
        "LDI r1, 10\n\
         LDUI r2, 2, r1\n\
         ADD r3, r1, r2\n\
         SUB r4, r2, r1\n\
         AND r5, r1, r2\n\
         OR r6, r1, r2\n\
         XOR r7, r1, r2\n\
         NOT r8, r1\n\
         ST r3, r0(1)\n\
         LD r9, r0(1)\n\
         CMP r1, r2\n\
         FBR LT, r10\n\
         BR GE, skip\n\
         NOP\n\
         skip:\n\
         SMIS S0, {0}\n\
         SMIT T0, {(2, 0)}\n\
         QWAIT 100\n\
         0, X S0\n\
         1, MEASZ S0\n\
         FMR r11, q0\n\
         QWAITR r1\n\
         STOP",
        SimConfig::default(),
    );
    assert_eq!(machine.gpr(Gpr::new(3)), 10 + ((2 << 17) | 10));
    assert_eq!(machine.gpr(Gpr::new(9)), machine.gpr(Gpr::new(3)));
    assert_eq!(machine.gpr(Gpr::new(10)), 1, "10 < LDUI result");
    assert_eq!(machine.gpr(Gpr::new(11)), 1, "measured |1⟩ after X");
}
