//! Cross-crate integration: gate-level circuits through the compiler,
//! assembler text, binary encoding and the machine, with the final
//! quantum state checked against direct simulation.

use eqasm::compiler::{emit, program_text, schedule_asap, Circuit, EmitOptions, GateDurations};
use eqasm::prelude::*;
use eqasm::quantum::gates;
use eqasm::workloads;

fn run_instructions(inst: &Instantiation, program: &[Instruction], seed: u64) -> QuMa {
    let mut machine = QuMa::new(inst.clone(), SimConfig::default().with_seed(seed));
    machine.load(program).expect("loads");
    let result = machine.run();
    assert!(result.status.is_halted(), "status {:?}", result.status);
    machine
}

#[test]
fn compiled_ghz_state_on_surface7() {
    // A 5-qubit GHZ on the star around the X ancilla (qubit 3): H on 3,
    // then CNOTs to 0, 1, 5, 6 (all allowed pairs of Fig. 6).
    let inst = Instantiation::paper();
    let mut c = Circuit::new(7);
    c.single("H", 3).unwrap();
    for t in [0u8, 1, 5, 6] {
        c.two("CNOT", 3, t).unwrap();
    }
    c.measure_all();
    let schedule = schedule_asap(&c, GateDurations::paper()).unwrap();
    let program = emit(&schedule, &inst, &EmitOptions::experiment()).unwrap();

    for seed in 0..30u64 {
        let machine = run_instructions(&inst, &program, seed);
        let ghz: Vec<bool> = [3u8, 0, 1, 5, 6]
            .iter()
            .map(|&q| machine.measurement_value(Qubit::new(q)).unwrap())
            .collect();
        assert!(
            ghz.iter().all(|&b| b == ghz[0]),
            "GHZ outcomes must agree: {ghz:?} (seed {seed})"
        );
        // Spectator qubits stay in |0⟩.
        for q in [2u8, 4] {
            assert_eq!(machine.measurement_value(Qubit::new(q)), Some(false));
        }
    }
}

#[test]
fn compiled_circuit_matches_direct_simulation() {
    // A runnable Ising trotter circuit (without measurements) through
    // the full stack must yield exactly the same state as applying the
    // scheduled gates directly to a state vector.
    let inst = Instantiation::paper().with_topology(Topology::linear(4));
    let full = workloads::ising_runnable(4, 3).unwrap();
    // Strip the measurements for state comparison.
    let mut c = Circuit::new(4);
    for g in full.gates() {
        match &g.kind {
            eqasm::compiler::GateKind::Single { qubit } => {
                c.single(g.name.clone(), qubit.raw()).unwrap();
            }
            eqasm::compiler::GateKind::Two { pair } => {
                c.two(g.name.clone(), pair.source().raw(), pair.target().raw())
                    .unwrap();
            }
            eqasm::compiler::GateKind::Measure { .. } => {}
        }
    }
    let schedule = schedule_asap(&c, GateDurations::paper()).unwrap();
    let program = emit(&schedule, &inst, &EmitOptions::bare()).unwrap();
    let mut machine = run_instructions(&inst, &program, 0);

    // Direct reference simulation in schedule order.
    let mut psi = StateVector::zero_state(4);
    for timed in schedule.ops() {
        match &timed.gate.kind {
            eqasm::compiler::GateKind::Single { qubit } => {
                let u = match timed.gate.name.as_str() {
                    "X90" => gates::rx(std::f64::consts::FRAC_PI_2),
                    "Z90" => gates::rz(std::f64::consts::FRAC_PI_2),
                    other => panic!("unexpected gate {other}"),
                };
                psi.apply_1q(qubit.index(), &u);
            }
            eqasm::compiler::GateKind::Two { pair } => {
                psi.apply_2q(pair.source().index(), pair.target().index(), &gates::cz());
            }
            eqasm::compiler::GateKind::Measure { .. } => {}
        }
    }
    for q in 0..4 {
        let machine_p1 = machine.prob1(Qubit::new(q as u8));
        let direct_p1 = psi.prob1(q);
        assert!(
            (machine_p1 - direct_p1).abs() < 1e-9,
            "qubit {q}: machine {machine_p1} vs direct {direct_p1}"
        );
    }
}

#[test]
fn emitted_text_round_trips_through_assembler_and_machine() {
    // compiler → text → assembler → binary → machine gives the same
    // trace as compiler → machine directly.
    let inst = Instantiation::paper();
    let mut c = Circuit::new(7);
    c.single("Y90", 0).unwrap();
    c.single("Y90", 2).unwrap();
    c.two("CZ", 2, 0).unwrap();
    c.single("YM90", 0).unwrap();
    c.measure(0).unwrap();
    c.measure(2).unwrap();
    let schedule = schedule_asap(&c, GateDurations::paper()).unwrap();
    let program = emit(&schedule, &inst, &EmitOptions::experiment()).unwrap();

    let text = program_text(&program, &inst);
    let reassembled = assemble(&text, &inst).unwrap();
    assert_eq!(reassembled.instructions(), program.as_slice());

    let direct = run_instructions(&inst, &program, 9);
    let via_text = run_instructions(&inst, reassembled.instructions(), 9);
    assert_eq!(
        direct.trace().executed_ops(),
        via_text.trace().executed_ops()
    );
    assert_eq!(
        direct.measurement_value(Qubit::new(0)),
        via_text.measurement_value(Qubit::new(0))
    );
}

#[test]
fn grover_finds_marked_state_on_machine_without_noise() {
    let inst = Instantiation::paper_two_qubit();
    for target in 0..4u8 {
        let programs =
            workloads::grover_tomography_programs(&inst, Qubit::new(0), Qubit::new(2), target)
                .unwrap();
        // ZZ setting (last): direct computational-basis readout.
        let (_, _, program) = &programs[8];
        let machine = run_instructions(&inst, program, u64::from(target));
        let results = machine.trace().measurement_results();
        let bit = |q: Qubit| {
            results
                .iter()
                .find(|(_, qq, _, _)| *qq == q)
                .map(|(_, _, _, r)| *r)
                .unwrap()
        };
        let found = ((bit(Qubit::new(0)) as u8) << 1) | bit(Qubit::new(2)) as u8;
        assert_eq!(found, target, "Grover must find |{target:02b}⟩ noiselessly");
    }
}

#[test]
fn rb_sequence_survives_noiselessly_on_machine() {
    let inst = Instantiation::paper().with_topology(Topology::linear(1));
    for seed in 0..5u64 {
        let (program, _) =
            workloads::rb_probe_program(&inst, Qubit::new(0), 50, 1, seed, 10).unwrap();
        let mut machine = run_instructions(&inst, &program, seed);
        assert!(
            machine.prob1(Qubit::new(0)) < 1e-9,
            "noiseless RB must return to |0⟩ (seed {seed})"
        );
    }
}

#[test]
fn sr_workload_emits_and_runs_on_linear8() {
    // The synthetic SR schedule uses chain-adjacent CNOTs: it must emit
    // for a linear 8-qubit instantiation and execute without faults.
    let inst = Instantiation::paper().with_topology(Topology::linear(8));
    let params = workloads::SquareRootParams {
        iterations: 1,
        cascade_len: 30,
        ..workloads::SquareRootParams::paper()
    };
    let schedule = workloads::square_root_schedule(&params, 3);
    // The default configuration lacks T/TDG; configure exactly the
    // operation set SR needs (compile-time configuration, §3.2).
    let mut builder = OpConfig::builder(9);
    builder.single("H", 1, PulseKind::Hadamard).unwrap();
    builder
        .single("T", 1, PulseKind::Rz(std::f64::consts::FRAC_PI_4))
        .unwrap();
    builder
        .single("TDG", 1, PulseKind::Rz(-std::f64::consts::FRAC_PI_4))
        .unwrap();
    builder
        .single("Z90", 1, PulseKind::Rz(std::f64::consts::FRAC_PI_2))
        .unwrap();
    builder
        .two("CNOT", 2, eqasm::core::TwoQubitGate::Cnot)
        .unwrap();
    builder.measurement("MEASZ", 15).unwrap();
    let inst = inst.with_ops(builder.build());

    let program = emit(&schedule, &inst, &EmitOptions::bare()).unwrap();
    let machine = run_instructions(&inst, &program, 0);
    assert!(machine.stats().two_qubit_gates > 0);
    assert_eq!(machine.stats().measurements, 8);
}

#[test]
fn seven_qubit_parallel_layer_via_compiler() {
    // All seven qubits get Y90 in one SOMQ slot; measurement confirms
    // superpositions everywhere.
    let inst = Instantiation::paper();
    let mut c = Circuit::new(7);
    for q in 0..7 {
        c.single("Y90", q).unwrap();
    }
    let schedule = schedule_asap(&c, GateDurations::paper()).unwrap();
    let program = emit(&schedule, &inst, &EmitOptions::bare()).unwrap();
    // One SMIS + one bundle (+ STOP): SOMQ packs the layer.
    assert_eq!(program.len(), 3, "{program:?}");
    let mut machine = run_instructions(&inst, &program, 0);
    for q in 0..7u8 {
        assert!(
            (machine.prob1(Qubit::new(q)) - 0.5).abs() < 1e-9,
            "qubit {q}"
        );
    }
}

#[test]
fn teleportation_via_cfc_corrections() {
    // The intro's motivating workload: teleport a state from qubit 2 to
    // qubit 3 through ancilla 0 on the surface-7 chip, with the X and Z
    // corrections applied through two dependent FMR/CMP/BR branches.
    let inst = Instantiation::paper();
    let program_src = |prep: &str, verify: &str| {
        format!(
            "SMIS S2, {{2}}\nSMIS S0, {{0}}\nSMIS S3, {{3}}\nSMIS S4, {{0, 2}}\n\
             SMIT T0, {{(0, 3)}}\nSMIT T1, {{(2, 0)}}\nLDI r0, 1\nQWAIT 100\n\
             0, {prep} S2\n1, H S0\n2, CNOT T0\n2, CNOT T1\n2, H S2\n1, MEASZ S4\nQWAIT 30\n\
             FMR r1, q0\nCMP r1, r0\nBR NE, skip_x\nX S3\nskip_x:\n\
             FMR r2, q2\nCMP r2, r0\nBR NE, skip_z\nZ S3\nskip_z:\nQWAIT 5\n{verify}QWAIT 5\nSTOP"
        )
    };
    for (prep, verify, expect) in [
        ("I", "", 0.0),
        ("X", "", 1.0),
        ("H", "1, H S3\n", 0.0),
        ("Y90", "1, YM90 S3\n", 0.0),
    ] {
        let program = assemble(&program_src(prep, verify), &inst).unwrap();
        let mut machine = QuMa::new(inst.clone(), SimConfig::default());
        machine.load(program.instructions()).unwrap();
        let mut seen = [false; 4];
        for shot in 0..40u64 {
            machine.reset_with_seed(shot * 31 + 7);
            assert!(machine.run().status.is_halted());
            let m_src = machine.measurement_value(Qubit::new(2)).unwrap() as usize;
            let m_anc = machine.measurement_value(Qubit::new(0)).unwrap() as usize;
            seen[(m_src << 1) | m_anc] = true;
            let p1 = machine.prob1(Qubit::new(3));
            assert!(
                (p1 - expect).abs() < 1e-9,
                "prep {prep}, outcome ({m_src},{m_anc}): target P(1) = {p1}"
            );
        }
        assert!(
            seen.iter().all(|&s| s),
            "all four Bell outcomes must occur for prep {prep}: {seen:?}"
        );
    }
}
